//! End-to-end quickstart: generate a synthetic workload, simulate it on the
//! baseline and on iCFP, and print the reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use icfp::sim::{CoreModel, SimConfig, Simulator, StepStatus};
use icfp::workloads;

fn main() {
    // 1. Generate a deterministic cache-thrashing workload: independent L2
    //    misses with exploitable memory-level parallelism — the scenario
    //    iCFP is built for (it overlaps the misses the in-order baseline
    //    serializes).
    let trace = workloads::dcache_thrash(30_000, 8 * 1024 * 1024, 42);
    println!(
        "workload: {} ({} insts, {:.0}% mem, {:.0}% branches)\n",
        trace.name(),
        trace.len(),
        trace.stats().mem_fraction() * 100.0,
        trace.stats().branch_fraction() * 100.0,
    );

    // 2. Run it on the in-order baseline and on iCFP.
    let base = Simulator::new(SimConfig::new(CoreModel::InOrder)).run(&trace);
    let icfp = Simulator::new(SimConfig::new(CoreModel::Icfp)).run(&trace);

    for r in [&base, &icfp] {
        println!("{}", r.summary());
        println!(
            "    branch mispredicts {:>8}   store forwards {:>6}   slice peak {:>4}   episodes {:>5}   rallies {:>5}",
            r.branch_mispredicts, r.store_forwards, r.slice_peak, r.advance_episodes, r.rally_passes
        );
    }
    println!(
        "\niCFP speedup over in-order: {:.2}x (cycles {} -> {})",
        base.cycles as f64 / icfp.cycles as f64,
        base.cycles,
        icfp.cycles
    );
    assert_eq!(
        base.state_digest, icfp.state_digest,
        "timing models must agree on final architectural state"
    );

    // 3. The same run through the batched stepping API (cycle budgets let a
    //    driver interleave many configurations or report progress).
    let mut sim = Simulator::new(SimConfig::new(CoreModel::Icfp));
    sim.load(trace);
    let mut batches = 0u32;
    let stepped = loop {
        match sim.step_n(50_000) {
            StepStatus::Running { cycle, processed } => {
                batches += 1;
                println!("  ... batch {batches}: cycle {cycle}, {processed} insts processed");
            }
            StepStatus::Done(report) => break report,
            StepStatus::NotLoaded => unreachable!("trace was just loaded"),
        }
    };
    println!(
        "stepped run: {} cycles in {} batches (digest {:#x})",
        stepped.cycles, batches + 1, stepped.state_digest
    );
    assert_eq!(stepped.state_digest, icfp.state_digest);
}
