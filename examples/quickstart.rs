fn main() { println!("placeholder"); }
