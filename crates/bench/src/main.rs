//! `icfp-bench` — measures simulation throughput (simulated MIPS) over the
//! standard synthetic workloads and writes `BENCH_sim.json`; with `--sweep`
//! it runs a multi-configuration grid through `icfp-sweep` on a thread pool
//! and writes `BENCH_sweep.json` plus an aligned IPC matrix.
//!
//! ```text
//! icfp-bench [--smoke] [--insts N] [--reps N] [--seed N]
//!            [--core NAME[,NAME...]] [--workload NAME[,NAME...]]
//!            [--trace-file PATH[,PATH...]] [--fast-forward N]
//!            [--out PATH] [--baseline PATH] [--max-regress-pct P]
//!            [--sweep] [--warm-fork] [--sweep-slice N[,N...]]
//!            [--sweep-mshr N[,N...]] [--sweep-l2 N[,N...]] [--threads N]
//!            [--cache-dir DIR] [--ckpt-smoke] [--figures PATH]
//! icfp-bench sweep submit (--server ADDR | --workers A,B[,..]) [--shards N]
//!            [--stream-columns] [--retries N] [--retry-base-ms MS]
//!            [--io-timeout-ms MS] [sweep flags as above]
//! icfp-bench sweep plan [--shards N] [--workers A,B] [sweep flags as above]
//! icfp-bench trace convert <in.bbp|in.trace> <out.trace>
//!            [--block-size N] [--name S] [--format v1|v2]
//! icfp-bench trace info <file.trace>
//! ```
//!
//! `--trace-file` benches an on-disk `icfp-trace/v1` or `/v2` container
//! alongside (or instead of, with `--workload none`) the synthetic workloads,
//! streaming it block by block — trace length is bounded by disk, not RAM.
//! `trace convert` imports the `icfp-bbp/v1` basic-block-profile text format
//! into a container, or re-containers an existing trace file (the input is
//! sniffed); `--format` picks the block encoding, so `convert a.trace b.trace
//! --format v2` rewrites a v1 container as compressed v2 and back.  `trace
//! info` prints and verifies one.  `--figures` renders a
//! `BENCH_sweep.json` into the paper's Figure 6/7-style speedup-over-baseline
//! tables (per-workload-class geomeans over the in-order model).
//!
//! `--fast-forward N` functionally executes the first N instructions of
//! every benched trace (architectural registers + memory only, no timing
//! model) and times the remainder from a cold microarchitectural state —
//! the standard warmup-skipping methodology.  Final architectural state and
//! state digests equal the cold full run's; cycle counts cover only the
//! timed region.  With `--sweep` the same flag applies per cell and is part
//! of each cell's warm-fork and result-cache identity.
//!
//! `--smoke` selects a small instruction budget (CI-friendly, a few seconds);
//! the default "full" mode uses a larger budget for stable MIPS numbers.
//! Every cell reports the *median* host time over `--reps` repetitions
//! (default 3) after one untimed warmup.
//!
//! `--baseline` gates against a checked-in `BENCH_baseline.json`:
//! deterministic figures (per-cell instruction counts, cycle counts, state
//! digests) must match *exactly* and always fail the run on any difference;
//! the >`--max-regress-pct` aggregate-MIPS check is enforced only when the
//! host's machine class matches the one recorded in the baseline, and is
//! demoted to an advisory note otherwise (a slow runner is not a code
//! regression).
//!
//! `--warm-fork` makes `--sweep` fork each column's equivalent cells from a
//! shared mid-trace checkpoint; `--ckpt-smoke` runs a save→restore→compare
//! round-trip over every (model × workload) pair and exits non-zero on any
//! divergence.
//!
//! `--cache-dir DIR` gives `--sweep` a persistent `icfp-cache/v1` result
//! store: repeated or overlapping grids are served from disk, with reports
//! byte-identical to cold runs.  `sweep submit --server ADDR` sends the same
//! grid to a running `icfp-sweepd` over `icfp-wire/v2` instead of executing
//! locally, reassembling the streamed cells into the identical report.
//!
//! `sweep submit --workers A,B[,..]` distributes the grid instead: the
//! shard planner splits it by workload column, each shard (a spec slice
//! plus per-column trace *digests*, never trace bytes) goes to one
//! `icfp-sweepd --worker`, and the streamed cells merge deterministically —
//! the report is digest-identical to a serial local run, even when a worker
//! dies mid-shard and its shard is reassigned.  `--shards N` overrides the
//! one-shard-per-worker default; `--stream-columns` backs every workload
//! column with a resumable streamed source instead of a materialized arena
//! (columns past the executor's budget threshold stream automatically).
//! `sweep plan` prints the shard assignment — cells per shard, per-column
//! trace digests, inert-axis cache sharing — without executing anything,
//! and exits 2 on an invalid spec.

use icfp_bench::{
    bench_source_ff, bench_trace_ff, gate_against_baseline, machine_class, parse_baseline,
    render_figures, sweep_det_cells, BenchSession, DetCell,
};
use icfp_isa::{TraceFile, TraceFileWriter, DEFAULT_BLOCK_INSTS};
use icfp_sim::{CoreModel, SimCheckpoint, SimConfig, Simulator};
use icfp_sweep::{
    plan_shards, CacheStats, ExecBackend, LocalBackend, RemoteBackend, RetryPolicy, SweepReport,
    SweepSpec, WireError,
};
use icfp_workloads::TraceSink;

struct Args {
    smoke: bool,
    insts: usize,
    reps: u32,
    seed: u64,
    cores: Vec<CoreModel>,
    workloads: Vec<String>,
    trace_files: Vec<String>,
    out: Option<String>,
    baseline: Option<String>,
    max_regress_pct: f64,
    sweep: bool,
    warm_fork: bool,
    fast_forward: usize,
    ckpt_smoke: bool,
    figures: Option<String>,
    sweep_slice: Vec<usize>,
    sweep_mshr: Vec<usize>,
    sweep_l2: Vec<u64>,
    threads: usize,
    cache_dir: Option<String>,
    server: Option<String>,
    workers: Vec<String>,
    shards: usize,
    stream_columns: bool,
    retries: u32,
    retry_base_ms: u64,
    io_timeout_ms: u64,
}

fn parse_list<T: std::str::FromStr>(name: &str, v: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    v.split(',')
        .map(|s| s.trim().parse::<T>().map_err(|e| format!("{name}: {e}")))
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut a = Args {
        smoke: false,
        insts: 0,
        reps: 0,
        seed: 0xC0DE,
        cores: vec![CoreModel::Icfp, CoreModel::InOrder],
        workloads: icfp_workloads::STANDARD_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
        trace_files: Vec::new(),
        out: None,
        baseline: None,
        max_regress_pct: 20.0,
        sweep: false,
        warm_fork: false,
        fast_forward: 0,
        ckpt_smoke: false,
        figures: None,
        sweep_slice: vec![64, 128],
        sweep_mshr: vec![64],
        sweep_l2: vec![20],
        threads: 0,
        cache_dir: None,
        server: None,
        workers: Vec::new(),
        shards: 0,
        stream_columns: false,
        retries: RetryPolicy::default().retries,
        retry_base_ms: RetryPolicy::default().base_delay_ms,
        io_timeout_ms: RetryPolicy::default().io_timeout_ms,
    };
    let mut it = argv.iter().cloned();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--smoke" => a.smoke = true,
            "--sweep" => a.sweep = true,
            "--warm-fork" => a.warm_fork = true,
            "--fast-forward" => {
                a.fast_forward = val("--fast-forward")?
                    .parse()
                    .map_err(|e| format!("--fast-forward: {e}"))?
            }
            "--ckpt-smoke" => a.ckpt_smoke = true,
            "--insts" => {
                a.insts = val("--insts")?
                    .parse()
                    .map_err(|e| format!("--insts: {e}"))?
            }
            "--reps" => {
                a.reps = val("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--seed" => {
                a.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--core" => {
                a.cores = val("--core")?
                    .split(',')
                    .map(|s| {
                        CoreModel::parse(s.trim()).ok_or_else(|| {
                            format!(
                                "unknown core model {s:?}; valid models: {}",
                                CoreModel::valid_names()
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--workload" => {
                let w = val("--workload")?;
                // `--workload none` benches only --trace-file containers.
                a.workloads = if w == "none" {
                    Vec::new()
                } else {
                    w.split(',').map(str::to_string).collect()
                };
            }
            "--trace-file" => {
                a.trace_files
                    .extend(val("--trace-file")?.split(',').map(str::to_string));
            }
            "--figures" => a.figures = Some(val("--figures")?),
            "--out" => a.out = Some(val("--out")?),
            "--baseline" => a.baseline = Some(val("--baseline")?),
            "--max-regress-pct" => {
                a.max_regress_pct = val("--max-regress-pct")?
                    .parse()
                    .map_err(|e| format!("--max-regress-pct: {e}"))?
            }
            "--sweep-slice" => a.sweep_slice = parse_list("--sweep-slice", &val("--sweep-slice")?)?,
            "--sweep-mshr" => a.sweep_mshr = parse_list("--sweep-mshr", &val("--sweep-mshr")?)?,
            "--sweep-l2" => a.sweep_l2 = parse_list("--sweep-l2", &val("--sweep-l2")?)?,
            "--threads" => {
                a.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--cache-dir" => a.cache_dir = Some(val("--cache-dir")?),
            "--server" => a.server = Some(val("--server")?),
            "--workers" => {
                a.workers = val("--workers")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--shards" => {
                a.shards = val("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--stream-columns" => a.stream_columns = true,
            "--retries" => {
                a.retries = val("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--retry-base-ms" => {
                a.retry_base_ms = val("--retry-base-ms")?
                    .parse()
                    .map_err(|e| format!("--retry-base-ms: {e}"))?
            }
            "--io-timeout-ms" => {
                a.io_timeout_ms = val("--io-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--io-timeout-ms: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: icfp-bench [--smoke] [--insts N] [--reps N] [--seed N] \
                     [--core NAMES] [--workload NAMES|none] [--trace-file PATHS] \
                     [--fast-forward N] \
                     [--out PATH] [--baseline PATH] [--max-regress-pct P] \
                     [--sweep] [--warm-fork] [--sweep-slice NS] [--sweep-mshr NS] \
                     [--sweep-l2 NS] [--threads N] [--cache-dir DIR] \
                     [--ckpt-smoke] [--figures PATH]\n\
                     \u{20}      icfp-bench sweep submit (--server ADDR | --workers A,B) \
                     [--shards N] [--stream-columns] [--retries N] \
                     [--retry-base-ms MS] [--io-timeout-ms MS] [sweep flags as above]\n\
                     \u{20}      icfp-bench sweep plan [--shards N] [--workers A,B] \
                     [sweep flags as above]\n\
                     \u{20}      sweep submit exit codes: 2 invalid spec/usage, \
                     3 connect/transport failed, 4 protocol/version/digest mismatch, \
                     5 server-reported error\n\
                     \u{20}      icfp-bench trace convert <in.bbp|in.trace> <out.trace> \
                     [--block-size N] [--name S] [--format v1|v2]\n\
                     \u{20}      icfp-bench trace info <file.trace>\n\
                     core models: {}\n\
                     workloads:   {}",
                    CoreModel::valid_names(),
                    icfp_workloads::STANDARD_NAMES.join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if a.insts == 0 {
        a.insts = if a.smoke { 20_000 } else { 200_000 };
    }
    if a.reps == 0 {
        a.reps = 3;
    }
    if a.threads == 0 {
        a.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    }
    Ok(a)
}

/// Applies the `--baseline` gate: exact deterministic figures (always
/// enforced) plus the aggregate-MIPS check (enforced only on the baseline's
/// machine class).
fn gate_on_baseline(args: &Args, cells: &[DetCell], current_mips: f64) {
    let Some(path) = &args.baseline else { return };
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("icfp-bench: reading baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline = match parse_baseline(&doc) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("icfp-bench: baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let machine = machine_class();
    let report = gate_against_baseline(cells, current_mips, &machine, &baseline, args.max_regress_pct);
    for note in &report.advisory {
        println!("baseline gate (advisory): {note}");
    }
    if report.is_ok() {
        println!(
            "baseline gate: ok — {} deterministic cells exact; MIPS {} ({current_mips:.3} vs {}, -{:.0}% allowed)",
            baseline.cells.len(),
            if report.mips_enforced { "enforced" } else { "advisory (machine class differs)" },
            baseline
                .aggregate_mips
                .map_or("n/a".to_string(), |m| format!("{m:.3}")),
            args.max_regress_pct
        );
    } else {
        for e in &report.hard_errors {
            eprintln!("icfp-bench: baseline gate: {e}");
        }
        std::process::exit(1);
    }
}

fn write_out(path: &str, doc: &str) {
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("icfp-bench: writing {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

/// The sweep spec described by the command line — shared by the local
/// `--sweep` runner and the `sweep submit` client, so both describe the
/// identical grid (and produce digest-identical reports).
fn sweep_spec_of(args: &Args) -> SweepSpec {
    let mut spec = SweepSpec::new(
        args.cores.clone(),
        args.workloads.clone(),
        args.insts,
        args.seed,
    );
    spec.slice_buffer_entries = args.sweep_slice.clone();
    spec.mshr_counts = args.sweep_mshr.clone();
    spec.l2_hit_latencies = args.sweep_l2.clone();
    spec.reps = args.reps;
    spec.warm_fork = args.warm_fork;
    spec.fast_forward = args.fast_forward;
    spec.streamed = args.stream_columns;
    spec
}

/// Prints the matrix, the aggregate line, writes `BENCH_sweep.json` and
/// applies the baseline gate — everything after a sweep report exists,
/// whether it was computed locally or reassembled from a server stream.
fn finish_sweep(args: &Args, report: &SweepReport) {
    match report.render_matrix() {
        Ok(m) => print!("{m}"),
        Err(e) => {
            eprintln!("icfp-bench: {e}");
            std::process::exit(2);
        }
    }
    println!(
        "aggregate: {:.2} MIPS over {} cells  (report digest {:#018x})",
        report.aggregate_mips(),
        report.cells.len(),
        report.digest()
    );
    let out = args.out.as_deref().unwrap_or("BENCH_sweep.json");
    write_out(out, &report.to_json());
    gate_on_baseline(args, &sweep_det_cells(report), report.aggregate_mips());
}

fn run_sweep_mode(args: &Args) {
    let spec = sweep_spec_of(args);
    println!(
        "sweep: {} cells ({} models x {} configs x {} workloads) on {} threads{}",
        spec.cell_count(),
        spec.models.len(),
        spec.slice_buffer_entries.len() * spec.mshr_counts.len() * spec.l2_hit_latencies.len(),
        spec.workloads.len(),
        args.threads,
        if args.warm_fork { ", warm-fork" } else { "" }
    );
    let backend = LocalBackend {
        threads: args.threads,
        cache_dir: args.cache_dir.as_deref().map(Into::into),
        ..LocalBackend::default()
    };
    let outcome = match backend.run(&spec) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("icfp-bench: {e}");
            std::process::exit(2);
        }
    };
    if args.cache_dir.is_some() {
        println!("cache: {}", outcome.cache.summary());
    }
    finish_sweep(args, &outcome.report);
}

/// Exit codes for `sweep submit` failures, one per failure class so scripts
/// can branch without parsing stderr:
///
/// * `2` — the spec (or usage) is invalid; nothing was sent.
/// * `3` — connect or transport failed after every retry (refused,
///   timed out, torn frames, server vanished mid-stream).
/// * `4` — the conversation itself went wrong: protocol violation,
///   undecodable payload, an incompatible peer (version skew refused at the
///   handshake), or a reassembled-report digest mismatch.
/// * `5` — the server answered with a typed error (e.g. it rejected the
///   spec, or was draining for shutdown).
fn wire_exit_code(e: &WireError) -> i32 {
    match e {
        WireError::Spec(_) => 2,
        WireError::Io(_) | WireError::Frame(_) | WireError::Disconnected => 3,
        WireError::Protocol(_) | WireError::Decode(_) | WireError::UnsupportedVersion { .. } => 4,
        WireError::Server(_) => 5,
    }
}

/// `icfp-bench sweep submit --server ADDR`: submit the spec to a running
/// `icfp-sweepd`, reassemble the streamed cells, and finish exactly like a
/// local sweep — same matrix, same `BENCH_sweep.json`, same gate.  Retriable
/// transport failures reconnect with deterministic exponential backoff
/// (`--retries`, `--retry-base-ms`); failures exit with [`wire_exit_code`]'s
/// documented codes.
fn run_sweep_submit(args: &Args) {
    if !args.workers.is_empty() {
        run_sweep_distributed(args);
        return;
    }
    let Some(server) = args.server.as_deref() else {
        eprintln!("icfp-bench: sweep submit requires --server ADDR or --workers A,B[,..]");
        std::process::exit(2);
    };
    let spec = sweep_spec_of(args);
    println!(
        "sweep submit: {} cells ({} models x {} configs x {} workloads) -> {server}",
        spec.cell_count(),
        spec.models.len(),
        spec.slice_buffer_entries.len() * spec.mshr_counts.len() * spec.l2_hit_latencies.len(),
        spec.workloads.len(),
    );
    let policy = RetryPolicy {
        retries: args.retries,
        base_delay_ms: args.retry_base_ms,
        io_timeout_ms: args.io_timeout_ms,
        ..RetryPolicy::default()
    };
    let mut streamed = 0u64;
    let outcome = match icfp_sweep::submit_with(server, &spec, args.threads, &policy, |_, _, _| {
        streamed += 1;
    }) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("icfp-bench: sweep submit: {e}");
            std::process::exit(wire_exit_code(&e));
        }
    };
    let stats = CacheStats {
        hits: outcome.hits,
        misses: outcome.misses,
        ..CacheStats::default()
    };
    println!("streamed {streamed} cells; server cache: {}", stats.summary());
    finish_sweep(args, &outcome.report);
}

/// `icfp-bench sweep submit --workers A,B[,..]`: distribute the grid across
/// a pool of `icfp-sweepd --worker` processes through [`RemoteBackend`] —
/// shard per workload-column slice, digests instead of trace bytes on the
/// wire, deterministic merge, reassignment when a worker dies.  The final
/// report is digest-identical to a serial local run of the same spec.
/// Exit codes: `2` invalid spec (nothing was sent), `3` the distributed run
/// failed (a shard exhausted every reassignment attempt, or a worker broke
/// protocol).
fn run_sweep_distributed(args: &Args) {
    let spec = sweep_spec_of(args);
    if let Err(e) = spec.validate() {
        eprintln!("icfp-bench: sweep submit: {e}");
        std::process::exit(2);
    }
    let backend = RemoteBackend {
        workers: args.workers.clone(),
        shards: args.shards,
        threads: args.threads,
        policy: RetryPolicy {
            retries: args.retries,
            base_delay_ms: args.retry_base_ms,
            io_timeout_ms: args.io_timeout_ms,
            ..RetryPolicy::default()
        },
    };
    println!(
        "sweep submit: {} cells ({} models x {} configs x {} workloads) -> {}",
        spec.cell_count(),
        spec.models.len(),
        spec.slice_buffer_entries.len() * spec.mshr_counts.len() * spec.l2_hit_latencies.len(),
        spec.workloads.len(),
        backend.label(),
    );
    let mut streamed = 0u64;
    let outcome = match backend.run_streamed(&spec, &mut |_| streamed += 1) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("icfp-bench: sweep submit: {e}");
            std::process::exit(3);
        }
    };
    println!(
        "streamed {streamed} cells; worker caches: {}",
        outcome.cache.summary()
    );
    finish_sweep(args, &outcome.report);
}

/// `icfp-bench sweep plan`: dry-run the shard planner and print the
/// assignment — cells per shard, each column's workload and trace digest,
/// and how far inert-axis canonicalization shrinks the shard's distinct
/// cache entries — without executing a single cell.  Exits 2 on an invalid
/// spec, exactly as `sweep submit` would before sending anything.
fn run_sweep_plan(args: &Args) {
    let spec = sweep_spec_of(args);
    let shard_count = match (args.shards, args.workers.len()) {
        (0, 0) => 1,
        (0, w) => w,
        (s, _) => s,
    };
    let plan = match plan_shards(&spec, shard_count) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("icfp-bench: sweep plan: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "plan: {} cells ({} models x {} configs x {} workloads) -> {} shard{}{}",
        spec.cell_count(),
        spec.models.len(),
        spec.slice_buffer_entries.len() * spec.mshr_counts.len() * spec.l2_hit_latencies.len(),
        spec.workloads.len(),
        plan.len(),
        if plan.len() == 1 { "" } else { "s" },
        if spec.streams_columns() {
            " (streamed columns)"
        } else {
            ""
        },
    );
    for shard in &plan {
        // Distinct cache keys per shard: cells whose configurations differ
        // only along axes their model never reads canonicalize to one entry.
        let mut keys: Vec<u64> = shard
            .spec
            .expand()
            .iter()
            .map(|job| {
                let digest = shard
                    .columns
                    .iter()
                    .find(|c| c.workload == job.workload)
                    .map(|c| c.trace_digest)
                    .unwrap_or(0);
                job.cache_key(digest)
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let worker = if args.workers.is_empty() {
            String::new()
        } else {
            format!(
                "  -> {}",
                args.workers[shard.shard_index as usize % args.workers.len()]
            )
        };
        println!(
            "shard {}: {} cells, {} distinct cache entries (inert-axis sharing){}",
            shard.shard_index,
            shard.cell_count(),
            keys.len(),
            worker,
        );
        for col in &shard.columns {
            println!(
                "  column {:<14} trace digest {:#018x}  {}",
                col.workload,
                col.trace_digest,
                match &col.local_path {
                    Some(p) => format!("local container {p}"),
                    None => "regenerated from registry".to_string(),
                },
            );
        }
    }
}

/// `--ckpt-smoke`: for every (model × standard workload) pair, run the front
/// half, checkpoint through the full `icfp-ckpt/v1` byte encoding, resume,
/// and require cycles and state digest to match an uninterrupted run.  With
/// `--fast-forward N` both runs skip the first N instructions functionally
/// first, so the round-trip covers checkpoints minted after a warmup skip.
fn run_ckpt_smoke(args: &Args) {
    let ff = args.fast_forward;
    // Bound the *timed* region for CI time; fast-forwarded instructions are
    // cheap and deliberately uncapped (the CI step skips a million of them).
    let insts = ff + args.insts.saturating_sub(ff).min(5_000);
    let mut failures = 0u32;
    println!(
        "ckpt-smoke: insts={insts} seed={:#x}{}",
        args.seed,
        if ff > 0 {
            format!(" fast-forward={ff}")
        } else {
            String::new()
        }
    );
    for model in CoreModel::ALL {
        for wl in icfp_workloads::STANDARD_NAMES {
            let trace = match icfp_workloads::by_name_or_err(wl, insts, args.seed) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("icfp-bench: {e}");
                    std::process::exit(2);
                }
            };
            let config = SimConfig::new(model);
            let reference = Simulator::new(config.clone()).run_ff(&trace, ff);

            let mut sim = Simulator::new(config);
            sim.load(trace.clone());
            if ff > 0 {
                sim.fast_forward(ff).expect("fresh loaded engine seeds");
            }
            // Checkpoint from the middle of the timed region so the resume
            // carries both the seeded architectural state and live timing.
            sim.advance_to_inst(ff + (trace.len() - ff) / 2)
                .expect("trace was just loaded");
            let ckpt = sim.checkpoint().expect("mid-run checkpoint");
            let bytes = ckpt.to_bytes();
            let ckpt = SimCheckpoint::from_bytes(&bytes).expect("container round-trip");
            let mut resumed = Simulator::resume(&ckpt, trace).expect("resume");
            let report = resumed.finish_loaded();

            let ok = report.cycles == reference.cycles
                && report.state_digest == reference.state_digest;
            println!(
                "  {:<10} {:<14} {:>8} bytes  cycles {:>9}  digest {:#018x}  {}",
                model.name(),
                wl,
                bytes.len(),
                report.cycles,
                report.state_digest,
                if ok { "ok" } else { "DIVERGED" }
            );
            if !ok {
                eprintln!(
                    "icfp-bench: ckpt-smoke: {model}/{wl} diverged \
                     (cycles {} vs {}, digest {:#018x} vs {:#018x})",
                    report.cycles, reference.cycles, report.state_digest, reference.state_digest
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("ckpt-smoke: all save->restore->run round-trips bit-identical");
}

/// Prints the functional fast-forward rate over one cursor: how fast the
/// execute-only warmup chews through the leading `ff` instructions.
fn report_ff_rate(label: &str, cursor: &icfp_isa::TraceCursor<'_>, ff: usize) {
    let t0 = std::time::Instant::now();
    let warm = icfp_sim::functional_warmup(cursor, ff);
    let secs = t0.elapsed().as_secs_f64();
    let mips = if secs > 0.0 {
        warm.instructions as f64 / secs / 1.0e6
    } else {
        0.0
    };
    println!(
        "  [fast-forward] {label}: {} insts functionally in {secs:.3}s ({mips:.1} MIPS)",
        warm.instructions
    );
}

fn run_standard_mode(args: &Args) {
    let mode = if args.smoke { "smoke" } else { "full" };
    println!(
        "icfp-bench: mode={mode} insts={} reps={} seed={:#x}{}",
        args.insts,
        args.reps,
        args.seed,
        if args.fast_forward > 0 {
            format!(" fast-forward={}", args.fast_forward)
        } else {
            String::new()
        }
    );

    let mut session = BenchSession {
        mode: mode.to_string(),
        runs: Vec::new(),
    };
    for wl in &args.workloads {
        let trace = match icfp_workloads::by_name_or_err(wl, args.insts, args.seed) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("icfp-bench: {e}");
                std::process::exit(2);
            }
        };
        if args.fast_forward > 0 {
            report_ff_rate(wl, &icfp_isa::TraceCursor::from_trace(&trace), args.fast_forward);
        }
        for &core in &args.cores {
            let run = bench_trace_ff(core, &trace, args.fast_forward, args.reps);
            println!("  {}", run.report.summary());
            session.runs.push(run);
        }
    }
    for path in &args.trace_files {
        // Containers stream block by block: peak trace memory is the
        // reader's bounded cache, regardless of trace length.
        let file = match TraceFile::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("icfp-bench: {path}: {e}");
                std::process::exit(2);
            }
        };
        println!("  [trace-file] {}", file.summary());
        if args.fast_forward > 0 {
            report_ff_rate(path, &icfp_isa::TraceCursor::new(&file), args.fast_forward);
        }
        for &core in &args.cores {
            let run = bench_source_ff(core, &file, args.fast_forward, args.reps);
            println!("  {}", run.report.summary());
            session.runs.push(run);
        }
        // The streamed-trace memory story in one line: how many decoded
        // blocks (and bytes) were ever simultaneously resident across every
        // run above — the bound that holds however long the trace is.
        if let Some(r) = icfp_isa::TraceSource::residency(&file) {
            println!(
                "  [residency] {path}: peak {} resident blocks, {:.1} KiB decoded high-water",
                r.peak(),
                r.peak_bytes() as f64 / 1024.0
            );
        }
    }

    let aggregate = session.aggregate_mips();
    println!("aggregate: {aggregate:.2} MIPS over {} runs", session.runs.len());
    let out = args.out.as_deref().unwrap_or("BENCH_sim.json");
    write_out(out, &session.to_json());
    gate_on_baseline(args, &session.det_cells(), aggregate);
}

/// Adapter: the converter's [`TraceSink`] over the streaming
/// `icfp-trace/v1` writer (records the first write error; checked at the
/// end so the converter body stays infallible).
struct FileSink {
    writer: TraceFileWriter,
    error: Option<icfp_isa::TraceSourceError>,
}

impl TraceSink for FileSink {
    fn push(&mut self, inst: icfp_isa::DynInst) {
        if self.error.is_none() {
            if let Err(e) = self.writer.push(inst) {
                self.error = Some(e);
            }
        }
    }

    fn set_next_pc(&mut self, pc: u64) {
        self.writer.set_next_pc(pc);
    }

    fn emitted(&self) -> usize {
        self.writer.len()
    }
}

/// `icfp-bench trace convert <in.bbp> <out.trace>` / `trace info <file>`.
fn run_trace_subcommand(argv: &[String]) {
    let fail = |msg: &str| -> ! {
        eprintln!("icfp-bench: trace: {msg}");
        std::process::exit(2);
    };
    match argv.first().map(String::as_str) {
        Some("convert") => {
            let mut block_size = DEFAULT_BLOCK_INSTS;
            let mut name: Option<String> = None;
            let mut format = icfp_isa::TraceFormat::V1;
            let mut pos: Vec<&String> = Vec::new();
            let mut it = argv[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--block-size" => match it.next().map(|v| v.parse::<usize>()) {
                        Some(Ok(n)) if n > 0 => block_size = n,
                        _ => fail("--block-size takes a positive integer"),
                    },
                    "--name" => match it.next() {
                        Some(v) => name = Some(v.clone()),
                        None => fail("--name takes a value"),
                    },
                    "--format" => match it.next().map(|v| icfp_isa::TraceFormat::parse(v)) {
                        Some(Some(f)) => format = f,
                        _ => fail("--format takes v1 or v2"),
                    },
                    _ => pos.push(a),
                }
            }
            let [input, output] = pos[..] else {
                fail("convert takes <in.bbp|in.trace> <out.trace>");
            };
            // An existing container re-containers directly (v1 <-> v2 or a
            // re-block); anything else is parsed as icfp-bbp/v1 text.
            if let Ok(src) = TraceFile::open(input) {
                let from = src.format();
                match TraceFileWriter::write_source_as(output, &src, block_size, format) {
                    Ok(s) => println!(
                        "converted {input} [{from}] -> {output} [{format}]: {} insts in {} \
                         blocks of {block_size}, digest {:#018x} ({} bytes)",
                        s.instructions, s.blocks, s.digest, s.bytes
                    ),
                    Err(e) => fail(&format!("{output}: {e}")),
                }
                return;
            }
            let text = match std::fs::read_to_string(input) {
                Ok(t) => t,
                Err(e) => fail(&format!("{input}: {e}")),
            };
            let program = match icfp_workloads::bbp::parse(&text) {
                Ok(p) => p,
                Err(e) => fail(&format!("{input}: {e}")),
            };
            // Announce the expansion before streaming it out: block×count
            // profiles can legitimately expand to billions of instructions,
            // but a *saturated* count means hostile/typo'd loop nesting.
            let expect = program.dynamic_len();
            if expect == u64::MAX {
                fail(&format!(
                    "{input}: loop counts multiply out past u64::MAX; refusing to expand"
                ));
            }
            println!(
                "expanding {expect} dynamic instructions ({} per block)",
                block_size
            );
            let stem = std::path::Path::new(input)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "converted".into());
            let trace_name = name
                .or_else(|| program.name.clone())
                .unwrap_or(stem);
            let writer =
                match TraceFileWriter::create_as(output, &trace_name, block_size, format) {
                    Ok(w) => w,
                    Err(e) => fail(&format!("{output}: {e}")),
                };
            let mut sink = FileSink {
                writer,
                error: None,
            };
            program.emit(&mut sink);
            if let Some(e) = sink.error {
                fail(&format!("{output}: {e}"));
            }
            match sink.writer.finish() {
                Ok(s) => println!(
                    "converted {input} -> {output} [{format}]: {} insts in {} blocks of \
                     {block_size}, digest {:#018x} ({} bytes)",
                    s.instructions, s.blocks, s.digest, s.bytes
                ),
                Err(e) => fail(&format!("{output}: {e}")),
            }
        }
        Some("info") => {
            let [path] = &argv[1..] else {
                fail("info takes exactly one <file.trace>");
            };
            match TraceFile::open(path) {
                Ok(f) => {
                    println!("{}", f.summary());
                    match f.verify() {
                        Ok(()) => println!("verify: every block digest and the whole-trace digest check out"),
                        Err(e) => {
                            eprintln!("icfp-bench: {path}: verify failed: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                Err(e) => fail(&format!("{path}: {e}")),
            }
        }
        _ => fail("usage: icfp-bench trace convert <in.bbp|in.trace> <out.trace> [--block-size N] [--name S] [--format v1|v2] | trace info <file>"),
    }
}

/// `--figures PATH`: render a sweep document into speedup tables.
fn run_figures(path: &str) {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("icfp-bench: reading {path}: {e}");
            std::process::exit(1);
        }
    };
    match parse_baseline(&doc).and_then(|d| render_figures(&d)) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("icfp-bench: --figures {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    // Subcommand forms: `icfp-bench trace ...` (converter / inspector) and
    // `icfp-bench sweep submit --server ADDR ...` (the icfp-sweepd client).
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("trace") {
        run_trace_subcommand(&argv[1..]);
        return;
    }
    if argv.first().map(String::as_str) == Some("sweep") {
        let verb = argv.get(1).map(String::as_str);
        if verb != Some("submit") && verb != Some("plan") {
            eprintln!(
                "icfp-bench: usage: icfp-bench sweep submit (--server ADDR | --workers A,B) \
                 [sweep flags] | sweep plan [--shards N] [sweep flags]"
            );
            std::process::exit(2);
        }
        match parse_args(&argv[2..]) {
            Ok(a) if verb == Some("plan") => run_sweep_plan(&a),
            Ok(a) => run_sweep_submit(&a),
            Err(e) => {
                eprintln!("icfp-bench: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("icfp-bench: {e}");
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.figures {
        run_figures(path);
    } else if args.ckpt_smoke {
        run_ckpt_smoke(&args);
    } else if args.sweep {
        run_sweep_mode(&args);
    } else {
        run_standard_mode(&args);
    }
}
