//! `icfp-bench` — measures simulation throughput (simulated MIPS) over the
//! standard synthetic workloads and writes `BENCH_sim.json`; with `--sweep`
//! it runs a multi-configuration grid through `icfp-sweep` on a thread pool
//! and writes `BENCH_sweep.json` plus an aligned IPC matrix.
//!
//! ```text
//! icfp-bench [--smoke] [--insts N] [--reps N] [--seed N]
//!            [--core NAME[,NAME...]] [--workload NAME[,NAME...]]
//!            [--out PATH] [--baseline PATH] [--max-regress-pct P]
//!            [--sweep] [--sweep-slice N[,N...]] [--sweep-mshr N[,N...]]
//!            [--sweep-l2 N[,N...]] [--threads N]
//! ```
//!
//! `--smoke` selects a small instruction budget (CI-friendly, a few seconds);
//! the default "full" mode uses a larger budget for stable MIPS numbers.
//! Every cell reports the *median* host time over `--reps` repetitions
//! (default 3) after one untimed warmup.  `--baseline` compares the run's
//! aggregate MIPS against a checked-in `BENCH_baseline.json` and exits
//! non-zero past `--max-regress-pct` (default 20).

use icfp_bench::{bench_trace, check_against_baseline, parse_aggregate_mips, BenchSession};
use icfp_sim::CoreModel;
use icfp_sweep::{run_sweep, SweepSpec};

struct Args {
    smoke: bool,
    insts: usize,
    reps: u32,
    seed: u64,
    cores: Vec<CoreModel>,
    workloads: Vec<String>,
    out: Option<String>,
    baseline: Option<String>,
    max_regress_pct: f64,
    sweep: bool,
    sweep_slice: Vec<usize>,
    sweep_mshr: Vec<usize>,
    sweep_l2: Vec<u64>,
    threads: usize,
}

fn parse_list<T: std::str::FromStr>(name: &str, v: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    v.split(',')
        .map(|s| s.trim().parse::<T>().map_err(|e| format!("{name}: {e}")))
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        smoke: false,
        insts: 0,
        reps: 0,
        seed: 0xC0DE,
        cores: vec![CoreModel::Icfp, CoreModel::InOrder],
        workloads: icfp_workloads::STANDARD_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
        out: None,
        baseline: None,
        max_regress_pct: 20.0,
        sweep: false,
        sweep_slice: vec![64, 128],
        sweep_mshr: vec![64],
        sweep_l2: vec![20],
        threads: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--smoke" => a.smoke = true,
            "--sweep" => a.sweep = true,
            "--insts" => {
                a.insts = val("--insts")?
                    .parse()
                    .map_err(|e| format!("--insts: {e}"))?
            }
            "--reps" => {
                a.reps = val("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--seed" => {
                a.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--core" => {
                a.cores = val("--core")?
                    .split(',')
                    .map(|s| {
                        CoreModel::parse(s.trim()).ok_or_else(|| {
                            format!(
                                "unknown core model {s:?}; valid models: {}",
                                CoreModel::valid_names()
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--workload" => {
                a.workloads = val("--workload")?.split(',').map(str::to_string).collect();
            }
            "--out" => a.out = Some(val("--out")?),
            "--baseline" => a.baseline = Some(val("--baseline")?),
            "--max-regress-pct" => {
                a.max_regress_pct = val("--max-regress-pct")?
                    .parse()
                    .map_err(|e| format!("--max-regress-pct: {e}"))?
            }
            "--sweep-slice" => a.sweep_slice = parse_list("--sweep-slice", &val("--sweep-slice")?)?,
            "--sweep-mshr" => a.sweep_mshr = parse_list("--sweep-mshr", &val("--sweep-mshr")?)?,
            "--sweep-l2" => a.sweep_l2 = parse_list("--sweep-l2", &val("--sweep-l2")?)?,
            "--threads" => {
                a.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: icfp-bench [--smoke] [--insts N] [--reps N] [--seed N] \
                     [--core NAMES] [--workload NAMES] [--out PATH] \
                     [--baseline PATH] [--max-regress-pct P] \
                     [--sweep] [--sweep-slice NS] [--sweep-mshr NS] [--sweep-l2 NS] \
                     [--threads N]\n\
                     core models: {}\n\
                     workloads:   {}",
                    CoreModel::valid_names(),
                    icfp_workloads::STANDARD_NAMES.join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if a.insts == 0 {
        a.insts = if a.smoke { 20_000 } else { 200_000 };
    }
    if a.reps == 0 {
        a.reps = 3;
    }
    if a.threads == 0 {
        a.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    }
    Ok(a)
}

/// Applies the `--baseline` gate to a freshly produced aggregate figure.
fn gate_on_baseline(args: &Args, current: f64) {
    let Some(path) = &args.baseline else { return };
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("icfp-bench: reading baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let Some(baseline) = parse_aggregate_mips(&doc) else {
        eprintln!("icfp-bench: baseline {path} has no aggregate_mips figure");
        std::process::exit(1);
    };
    match check_against_baseline(current, baseline, args.max_regress_pct) {
        Ok(()) => println!(
            "baseline gate: ok ({current:.3} vs {baseline:.3} MIPS, \
             -{:.0}% allowed)",
            args.max_regress_pct
        ),
        Err(e) => {
            eprintln!("icfp-bench: {e}");
            std::process::exit(1);
        }
    }
}

fn write_out(path: &str, doc: &str) {
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("icfp-bench: writing {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

fn run_sweep_mode(args: &Args) {
    let mut spec = SweepSpec::new(
        args.cores.clone(),
        args.workloads.clone(),
        args.insts,
        args.seed,
    );
    spec.slice_buffer_entries = args.sweep_slice.clone();
    spec.mshr_counts = args.sweep_mshr.clone();
    spec.l2_hit_latencies = args.sweep_l2.clone();
    spec.reps = args.reps;
    println!(
        "sweep: {} cells ({} models x {} configs x {} workloads) on {} threads",
        spec.cell_count(),
        spec.models.len(),
        spec.slice_buffer_entries.len() * spec.mshr_counts.len() * spec.l2_hit_latencies.len(),
        spec.workloads.len(),
        args.threads
    );
    let report = match run_sweep(&spec, args.threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("icfp-bench: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", report.render_matrix());
    println!(
        "aggregate: {:.2} MIPS over {} cells  (report digest {:#018x})",
        report.aggregate_mips(),
        report.cells.len(),
        report.digest()
    );
    let out = args.out.as_deref().unwrap_or("BENCH_sweep.json");
    write_out(out, &report.to_json());
    gate_on_baseline(args, report.aggregate_mips());
}

fn run_standard_mode(args: &Args) {
    let mode = if args.smoke { "smoke" } else { "full" };
    println!(
        "icfp-bench: mode={mode} insts={} reps={} seed={:#x}",
        args.insts, args.reps, args.seed
    );

    let mut session = BenchSession {
        mode: mode.to_string(),
        runs: Vec::new(),
    };
    for wl in &args.workloads {
        let Some(trace) = icfp_workloads::by_name(wl, args.insts, args.seed) else {
            eprintln!(
                "icfp-bench: unknown workload {wl:?}; valid workloads: {}",
                icfp_workloads::STANDARD_NAMES.join(", ")
            );
            std::process::exit(2);
        };
        for &core in &args.cores {
            let run = bench_trace(core, &trace, args.reps);
            println!("  {}", run.report.summary());
            session.runs.push(run);
        }
    }

    let aggregate = session.aggregate_mips();
    println!("aggregate: {aggregate:.2} MIPS over {} runs", session.runs.len());
    let out = args.out.as_deref().unwrap_or("BENCH_sim.json");
    write_out(out, &session.to_json());
    gate_on_baseline(args, aggregate);
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("icfp-bench: {e}");
            std::process::exit(2);
        }
    };
    if args.sweep {
        run_sweep_mode(&args);
    } else {
        run_standard_mode(&args);
    }
}
