//! `icfp-bench` — measures simulation throughput (simulated MIPS) over the
//! standard synthetic workloads and writes `BENCH_sim.json`.
//!
//! ```text
//! icfp-bench [--smoke] [--insts N] [--reps N] [--seed N]
//!            [--core NAME[,NAME...]] [--workload NAME[,NAME...]]
//!            [--out PATH]
//! ```
//!
//! `--smoke` selects a small instruction budget (CI-friendly, a few seconds);
//! the default "full" mode uses a larger budget for stable MIPS numbers.

use icfp_bench::{bench_trace, BenchSession};
use icfp_sim::CoreModel;

struct Args {
    smoke: bool,
    insts: usize,
    reps: u32,
    seed: u64,
    cores: Vec<CoreModel>,
    workloads: Vec<String>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        smoke: false,
        insts: 0,
        reps: 0,
        seed: 0xC0DE,
        cores: vec![CoreModel::Icfp, CoreModel::InOrder],
        workloads: icfp_workloads::STANDARD_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
        out: "BENCH_sim.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--smoke" => a.smoke = true,
            "--insts" => {
                a.insts = val("--insts")?
                    .parse()
                    .map_err(|e| format!("--insts: {e}"))?
            }
            "--reps" => {
                a.reps = val("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--seed" => {
                a.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--core" => {
                a.cores = val("--core")?
                    .split(',')
                    .map(|s| {
                        CoreModel::parse(s).ok_or_else(|| format!("unknown core model {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--workload" => {
                a.workloads = val("--workload")?.split(',').map(str::to_string).collect();
            }
            "--out" => a.out = val("--out")?,
            "--help" | "-h" => {
                println!(
                    "usage: icfp-bench [--smoke] [--insts N] [--reps N] [--seed N] \
                     [--core NAMES] [--workload NAMES] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if a.insts == 0 {
        a.insts = if a.smoke { 20_000 } else { 200_000 };
    }
    if a.reps == 0 {
        a.reps = if a.smoke { 1 } else { 3 };
    }
    Ok(a)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("icfp-bench: {e}");
            std::process::exit(2);
        }
    };

    let mode = if args.smoke { "smoke" } else { "full" };
    println!(
        "icfp-bench: mode={mode} insts={} reps={} seed={:#x}",
        args.insts, args.reps, args.seed
    );

    let mut session = BenchSession {
        mode: mode.to_string(),
        runs: Vec::new(),
    };
    for wl in &args.workloads {
        let Some(trace) = icfp_workloads::by_name(wl, args.insts, args.seed) else {
            eprintln!("icfp-bench: unknown workload {wl:?}");
            std::process::exit(2);
        };
        for &core in &args.cores {
            let run = bench_trace(core, &trace, args.reps);
            println!("  {}", run.report.summary());
            session.runs.push(run);
        }
    }

    println!("aggregate: {:.2} MIPS over {} runs", session.aggregate_mips(), session.runs.len());
    if let Err(e) = std::fs::write(&args.out, session.to_json()) {
        eprintln!("icfp-bench: writing {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
}
