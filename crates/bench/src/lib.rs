//! # icfp-bench — simulation-throughput benchmark harness
//!
//! Measures how fast the simulator itself runs (simulated instructions per
//! host second, "MIPS") across the standard synthetic workloads, and writes
//! the results to `BENCH_sim.json` so CI can track regressions.  The
//! companion `benches/hot_paths.rs` micro-benchmarks the individual hot-path
//! structures (store-buffer drain, slice-buffer rally selection, MSHR
//! request/retire).
//!
//! The harness is self-contained (no criterion): this build environment is
//! offline, so the crate ships a small measure-repeat-report loop — one
//! untimed warmup then the *median* of N timed repetitions — instead.  The
//! JSON writer is hand-rolled for the same reason; the schema is flat and
//! stable:
//!
//! ```json
//! {
//!   "schema": "icfp-bench/v1",
//!   "mode": "smoke",
//!   "runs": [ { "workload": "...", "core": "...", "instructions": 0,
//!               "cycles": 0, "ipc": 0.0, "host_seconds": 0.0, "mips": 0.0,
//!               "state_digest": "0x..." } ],
//!   "aggregate_mips": 0.0
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icfp_sim::{CoreModel, SimConfig, SimReport};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured benchmark run.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// The simulator's report (includes host seconds and MIPS).
    pub report: SimReport,
    /// Number of timed repetitions taken (the report is the one with the
    /// median host time; a warmup rep runs untimed beforehand).
    pub reps: u32,
}

/// Results of a full benchmark session.
#[derive(Debug, Clone)]
pub struct BenchSession {
    /// Mode label (`"smoke"` or `"full"`).
    pub mode: String,
    /// Individual runs.
    pub runs: Vec<BenchRun>,
}

impl BenchSession {
    /// Aggregate throughput: total simulated instructions over total host
    /// seconds, in millions per second.
    pub fn aggregate_mips(&self) -> f64 {
        let inst: u64 = self.runs.iter().map(|r| r.report.instructions).sum();
        let secs: f64 = self.runs.iter().map(|r| r.report.host_seconds).sum();
        if secs > 0.0 {
            inst as f64 / secs / 1.0e6
        } else {
            0.0
        }
    }

    /// Renders the session as the `BENCH_sim.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"icfp-bench/v1\",");
        let _ = writeln!(s, "  \"mode\": {:?},", self.mode);
        s.push_str("  \"runs\": [\n");
        for (k, r) in self.runs.iter().enumerate() {
            let p = &r.report;
            let _ = write!(
                s,
                "    {{\"workload\": {:?}, \"core\": {:?}, \"instructions\": {}, \
                 \"cycles\": {}, \"ipc\": {:.4}, \"l1d_mpki\": {:.3}, \"l2_mpki\": {:.3}, \
                 \"host_seconds\": {:.6}, \"mips\": {:.3}, \"reps\": {}, \
                 \"state_digest\": \"{:#018x}\"}}",
                p.workload,
                p.core,
                p.instructions,
                p.cycles,
                p.ipc,
                p.l1d_mpki,
                p.l2_mpki,
                p.host_seconds,
                p.mips,
                r.reps,
                p.state_digest
            );
            s.push_str(if k + 1 == self.runs.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ],\n");
        let _ = writeln!(s, "  \"aggregate_mips\": {:.3}", self.aggregate_mips());
        s.push_str("}\n");
        s
    }
}

/// Runs `trace` on `core` through the shared warmup + median-of-N timing
/// protocol ([`icfp_sim::median_run`]).
pub fn bench_trace(core: CoreModel, trace: &icfp_isa::Trace, reps: u32) -> BenchRun {
    BenchRun {
        report: icfp_sim::median_run(&SimConfig::new(core), trace, reps),
        reps: reps.max(1),
    }
}

/// Extracts the `aggregate_mips` figure from a `BENCH_sim.json` /
/// `BENCH_sweep.json` document (hand-rolled scan: the build environment has
/// no JSON parser dependency, and the schema is flat and stable).
pub fn parse_aggregate_mips(json: &str) -> Option<f64> {
    let key = "\"aggregate_mips\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The perf-regression gate: fails if `current` MIPS has regressed more than
/// `max_regress_pct` percent below `baseline` MIPS.
///
/// # Errors
///
/// Returns a human-readable description of the regression.
pub fn check_against_baseline(
    current: f64,
    baseline: f64,
    max_regress_pct: f64,
) -> Result<(), String> {
    if baseline <= 0.0 {
        return Err(format!("baseline aggregate MIPS is not positive: {baseline}"));
    }
    let floor = baseline * (1.0 - max_regress_pct / 100.0);
    if current < floor {
        return Err(format!(
            "aggregate MIPS regressed {:.1}% (current {current:.3} vs baseline {baseline:.3}, \
             allowed floor {floor:.3})",
            (1.0 - current / baseline) * 100.0
        ));
    }
    Ok(())
}

/// A tiny best-of-N timing loop for micro-benchmarks (`benches/hot_paths.rs`).
/// Returns the best nanoseconds-per-iteration over `reps` timed batches of
/// `iters` calls.
pub fn time_ns_per_iter<F: FnMut()>(mut f: F, iters: u32, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters.max(1) {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfp_sim::Simulator;

    #[test]
    fn bench_session_json_is_well_formed() {
        let trace = icfp_workloads::branchy(300, 1);
        let run = bench_trace(CoreModel::InOrder, &trace, 2);
        let session = BenchSession {
            mode: "smoke".into(),
            runs: vec![run],
        };
        let json = session.to_json();
        assert!(json.contains("\"schema\": \"icfp-bench/v1\""));
        assert!(json.contains("\"workload\": \"branchy\""));
        assert!(json.contains("\"mips\":"));
        assert!(session.aggregate_mips() >= 0.0);
        // Structural sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn same_trace_and_seed_give_identical_reports() {
        // End-to-end determinism: generating the same workload from the same
        // seed and simulating it twice must produce bit-identical timing and
        // architectural results (host_seconds/mips are the only wall-clock
        // fields and are excluded).
        let run = || {
            let trace = icfp_workloads::by_name("dcache-thrash", 2_000, 0xC0DE).unwrap();
            let mut sim = Simulator::new(SimConfig::new(CoreModel::Icfp));
            sim.run(&trace)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.state_digest, b.state_digest);
        assert_eq!(a.l1d_mpki, b.l1d_mpki);
        assert_eq!(a.l2_mpki, b.l2_mpki);
        assert_eq!(a.rally_passes, b.rally_passes);
        assert_eq!(a.slice_peak, b.slice_peak);
        assert_eq!(a.result.final_regs, b.result.final_regs);
        assert_eq!(a.result.final_mem, b.result.final_mem);
    }

    #[test]
    fn aggregate_mips_parses_from_json() {
        let trace = icfp_workloads::branchy(300, 1);
        let session = BenchSession {
            mode: "smoke".into(),
            runs: vec![bench_trace(CoreModel::InOrder, &trace, 1)],
        };
        let json = session.to_json();
        let parsed = parse_aggregate_mips(&json).expect("figure present");
        assert!((parsed - session.aggregate_mips()).abs() < 0.002, "{parsed}");
        assert_eq!(parse_aggregate_mips("{}"), None);
        assert_eq!(parse_aggregate_mips("\"aggregate_mips\": 12.5"), Some(12.5));
    }

    #[test]
    fn baseline_gate_trips_only_past_the_threshold() {
        assert!(check_against_baseline(1.0, 1.0, 20.0).is_ok());
        assert!(check_against_baseline(0.81, 1.0, 20.0).is_ok());
        assert!(check_against_baseline(2.0, 1.0, 20.0).is_ok(), "speedups pass");
        let err = check_against_baseline(0.79, 1.0, 20.0).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        assert!(check_against_baseline(1.0, 0.0, 20.0).is_err());
    }

    #[test]
    fn bench_trace_reports_requested_reps() {
        let trace = icfp_workloads::branchy(300, 1);
        let run = bench_trace(CoreModel::InOrder, &trace, 3);
        assert_eq!(run.reps, 3);
        assert!(run.report.host_seconds >= 0.0);
    }

    #[test]
    fn timer_returns_finite_positive() {
        let mut x = 0u64;
        let ns = time_ns_per_iter(
            || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            },
            1000,
            3,
        );
        assert!(ns.is_finite() && ns >= 0.0);
        assert!(x != 0);
    }
}
