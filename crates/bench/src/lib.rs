//! # icfp-bench — simulation-throughput benchmark harness
//!
//! Measures how fast the simulator itself runs (simulated instructions per
//! host second, "MIPS") across the standard synthetic workloads, and writes
//! the results to `BENCH_sim.json` so CI can track regressions.  The
//! companion `benches/hot_paths.rs` micro-benchmarks the individual hot-path
//! structures (store-buffer drain, slice-buffer rally selection, MSHR
//! request/retire).
//!
//! The harness is self-contained (no criterion): this build environment is
//! offline, so the crate ships a small measure-repeat-report loop — one
//! untimed warmup then the *median* of N timed repetitions — instead.  The
//! JSON writer is hand-rolled for the same reason; the schema is flat and
//! stable:
//!
//! ```json
//! {
//!   "schema": "icfp-bench/v1",
//!   "mode": "smoke",
//!   "machine": "linux-x86_64-8cpu",
//!   "runs": [ { "workload": "...", "core": "...", "instructions": 0,
//!               "cycles": 0, "ipc": 0.0, "host_seconds": 0.0, "mips": 0.0,
//!               "state_digest": "0x..." } ],
//!   "aggregate_mips": 0.0
//! }
//! ```
//!
//! ## The regression gate
//!
//! `--baseline` separates *machine-independent* figures from *host-coupled*
//! ones, in the spirit of benchmark-methodology work that reports cycles and
//! digests apart from wall-clock throughput:
//!
//! * **deterministic gate (always enforced)** — every baseline cell's
//!   instruction count, cycle count and state digest must match the current
//!   run exactly; any difference is a timing-model change and fails CI;
//! * **throughput gate (host-coupled)** — the >N% aggregate-MIPS check is
//!   enforced only when the current host's machine class (`os-arch-Ncpu`,
//!   see [`machine_class`]) equals the class recorded in the baseline; on
//!   any other machine it is *advisory* — printed, never fatal — because
//!   comparing wall-clock MIPS across different machines says nothing about
//!   the code.  To (re-)arm throughput enforcement for a given runner
//!   class, record the baseline on that class of machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icfp_sim::{CoreModel, SimConfig, SimReport};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured benchmark run.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// The simulator's report (includes host seconds and MIPS).
    pub report: SimReport,
    /// Number of timed repetitions taken (the report is the one with the
    /// median host time; a warmup rep runs untimed beforehand).
    pub reps: u32,
}

/// Results of a full benchmark session.
#[derive(Debug, Clone)]
pub struct BenchSession {
    /// Mode label (`"smoke"` or `"full"`).
    pub mode: String,
    /// Individual runs.
    pub runs: Vec<BenchRun>,
}

impl BenchSession {
    /// Aggregate throughput: total simulated instructions over total host
    /// seconds, in millions per second.
    pub fn aggregate_mips(&self) -> f64 {
        let inst: u64 = self.runs.iter().map(|r| r.report.instructions).sum();
        let secs: f64 = self.runs.iter().map(|r| r.report.host_seconds).sum();
        if secs > 0.0 {
            inst as f64 / secs / 1.0e6
        } else {
            0.0
        }
    }

    /// The session's rows as [`DetCell`]s for the deterministic gate.
    pub fn det_cells(&self) -> Vec<DetCell> {
        self.runs
            .iter()
            .map(|r| DetCell {
                workload: r.report.workload.clone(),
                core: r.report.core.clone(),
                config: String::new(),
                instructions: r.report.instructions,
                cycles: r.report.cycles,
                state_digest: r.report.state_digest,
            })
            .collect()
    }

    /// Renders the session as the `BENCH_sim.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"icfp-bench/v1\",");
        let _ = writeln!(s, "  \"mode\": {:?},", self.mode);
        let _ = writeln!(s, "  \"machine\": {:?},", machine_class());
        s.push_str("  \"runs\": [\n");
        for (k, r) in self.runs.iter().enumerate() {
            let p = &r.report;
            let _ = write!(
                s,
                "    {{\"workload\": {:?}, \"core\": {:?}, \"instructions\": {}, \
                 \"cycles\": {}, \"ipc\": {:.4}, \"l1d_mpki\": {:.3}, \"l2_mpki\": {:.3}, \
                 \"host_seconds\": {:.6}, \"mips\": {:.3}, \"reps\": {}, \
                 \"state_digest\": \"{:#018x}\"}}",
                p.workload,
                p.core,
                p.instructions,
                p.cycles,
                p.ipc,
                p.l1d_mpki,
                p.l2_mpki,
                p.host_seconds,
                p.mips,
                r.reps,
                p.state_digest
            );
            s.push_str(if k + 1 == self.runs.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ],\n");
        let _ = writeln!(s, "  \"aggregate_mips\": {:.3}", self.aggregate_mips());
        s.push_str("}\n");
        s
    }
}

/// Runs `trace` on `core` through the shared warmup + median-of-N timing
/// protocol ([`icfp_sim::median_run`]).
pub fn bench_trace(core: CoreModel, trace: &icfp_isa::Trace, reps: u32) -> BenchRun {
    BenchRun {
        report: icfp_sim::median_run(&SimConfig::new(core), trace, reps),
        reps: reps.max(1),
    }
}

/// [`bench_trace`] over any block-based [`icfp_isa::TraceSource`] — how
/// `--trace-file` containers and streamed generator workloads run through
/// the harness with peak trace memory bounded by the source's resident
/// blocks, not the trace length.
pub fn bench_source(core: CoreModel, source: &dyn icfp_isa::TraceSource, reps: u32) -> BenchRun {
    BenchRun {
        report: icfp_sim::median_run_source(&SimConfig::new(core), source, reps),
        reps: reps.max(1),
    }
}

/// [`bench_trace`] with a functional fast-forward prefix: each repetition
/// architecturally executes the first `ff` instructions without the timing
/// model and times the rest from a cold microarchitectural state (0 = fully
/// cold; see [`icfp_sim::Simulator::run_source_ff`]).
pub fn bench_trace_ff(core: CoreModel, trace: &icfp_isa::Trace, ff: usize, reps: u32) -> BenchRun {
    BenchRun {
        report: icfp_sim::median_run_ff(&SimConfig::new(core), trace, ff, reps),
        reps: reps.max(1),
    }
}

/// [`bench_source_ff`]: [`bench_source`] with a functional fast-forward
/// prefix (see [`bench_trace_ff`]).
pub fn bench_source_ff(
    core: CoreModel,
    source: &dyn icfp_isa::TraceSource,
    ff: usize,
    reps: u32,
) -> BenchRun {
    BenchRun {
        report: icfp_sim::median_run_source_ff(&SimConfig::new(core), source, ff, reps),
        reps: reps.max(1),
    }
}

/// Geometric mean (`exp` of the mean of `ln`); 0 for an empty set.
fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Renders a parsed `BENCH_sweep.json` into the paper's Figure 6/7-style
/// speedup-over-baseline tables: one row per (model, configuration) point,
/// one column per workload plus geomean columns per workload class (see
/// `icfp_workloads::class_of`) and overall.  Speedup is
/// `cycles(in-order) / cycles(model)` at the *same* workload and
/// configuration — derived from the deterministic cycle counts, not from
/// host-coupled figures.
///
/// # Errors
///
/// The document must contain `in-order` cells for every (workload, config)
/// being normalised; says so otherwise.
pub fn render_figures(doc: &BaselineDoc) -> Result<String, String> {
    if doc.cells.is_empty() {
        return Err("document carries no per-cell figures (is this a BENCH_sweep.json?)".into());
    }
    // Baseline cycles per (workload, config).
    let mut base: Vec<(&DetCell, f64)> = Vec::new();
    for c in doc.cells.iter().filter(|c| c.core == "in-order") {
        base.push((c, c.cycles as f64));
    }
    if base.is_empty() {
        return Err(
            "no in-order cells to normalise against; run the sweep with --core in-order,..."
                .into(),
        );
    }
    let baseline_of = |workload: &str, config: &str| -> Option<f64> {
        base.iter()
            .find(|(b, _)| b.workload == workload && b.config == config)
            .map(|(_, cyc)| *cyc)
    };

    // Workloads in first-seen order, and their classes.
    let mut workloads: Vec<&str> = Vec::new();
    for c in &doc.cells {
        if !workloads.contains(&c.workload.as_str()) {
            workloads.push(&c.workload);
        }
    }
    let class_of = |w: &str| icfp_workloads::class_of(w).unwrap_or("other");
    let mut classes: Vec<&str> = Vec::new();
    for w in &workloads {
        let cl = class_of(w);
        if !classes.contains(&cl) {
            classes.push(cl);
        }
    }

    // One row per non-baseline (model, config), in cell order.
    struct Row<'a> {
        label: String,
        speedups: Vec<Option<f64>>,
        cells: Vec<(&'a str, f64)>, // (workload, speedup)
    }
    let mut rows: Vec<Row> = Vec::new();
    for c in doc.cells.iter().filter(|c| c.core != "in-order") {
        let Some(base_cycles) = baseline_of(&c.workload, &c.config) else {
            return Err(format!(
                "no in-order baseline cell for {}/[{}]; sweep must include the in-order model",
                c.workload, c.config
            ));
        };
        if c.cycles == 0 {
            return Err(format!("{}/{} reports zero cycles", c.workload, c.core));
        }
        let speedup = base_cycles / c.cycles as f64;
        let label = if c.config.is_empty() {
            c.core.clone()
        } else {
            format!("{:<10} {}", c.core, c.config)
        };
        // Group by label wherever the cell sits in the document: sweep
        // documents are contiguous per (model, config), but bench documents
        // (BENCH_sim.json) interleave models within each workload.
        let at = match rows.iter().position(|r| r.label == label) {
            Some(at) => at,
            None => {
                rows.push(Row {
                    label,
                    speedups: vec![None; workloads.len()],
                    cells: Vec::new(),
                });
                rows.len() - 1
            }
        };
        let row = &mut rows[at];
        let wl = workloads
            .iter()
            .position(|w| *w == c.workload)
            .expect("workload collected above");
        row.speedups[wl] = Some(speedup);
        row.cells.push((workloads[wl], speedup));
    }

    // Render: workloads, then per-class geomeans, then the overall geomean.
    let wcol = workloads.iter().map(|w| w.len()).max().unwrap_or(0).max(8);
    let ccol = classes
        .iter()
        .map(|c| format!("gm({c})").len())
        .max()
        .unwrap_or(0)
        .max(8);
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(24);
    let mut s = String::new();
    let _ = write!(s, "{:<label_w$}", "speedup over in-order");
    for w in &workloads {
        let _ = write!(s, "  {w:>wcol$}");
    }
    for cl in &classes {
        let _ = write!(s, "  {:>ccol$}", format!("gm({cl})"));
    }
    let _ = writeln!(s, "  {:>8}", "gm(all)");
    for r in &rows {
        let _ = write!(s, "{:<label_w$}", r.label);
        for v in &r.speedups {
            match v {
                Some(x) => {
                    let _ = write!(s, "  {x:>wcol$.3}");
                }
                None => {
                    let _ = write!(s, "  {:>wcol$}", "-");
                }
            }
        }
        for cl in &classes {
            let xs: Vec<f64> = r
                .cells
                .iter()
                .filter(|(w, _)| class_of(w) == *cl)
                .map(|(_, x)| *x)
                .collect();
            if xs.is_empty() {
                let _ = write!(s, "  {:>ccol$}", "-");
            } else {
                let _ = write!(s, "  {:>ccol$.3}", geomean(&xs));
            }
        }
        let all: Vec<f64> = r.cells.iter().map(|(_, x)| *x).collect();
        let _ = writeln!(s, "  {:>8.3}", geomean(&all));
    }
    Ok(s)
}

/// Extracts the `aggregate_mips` figure from a `BENCH_sim.json` /
/// `BENCH_sweep.json` document (hand-rolled scan: the build environment has
/// no JSON parser dependency, and the schema is flat and stable).
pub fn parse_aggregate_mips(json: &str) -> Option<f64> {
    let key = "\"aggregate_mips\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The host's machine class: operating system, CPU architecture and logical
/// CPU count.  MIPS baselines are only *enforced* between identical classes;
/// everything else is advisory (a slower runner is not a code regression).
/// The class is deliberately narrow — os-arch alone would equate a developer
/// laptop with a CI runner of the same platform, re-coupling the gate to
/// host speed; when in doubt the gate must err toward advisory.
pub fn machine_class() -> String {
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    format!(
        "{}-{}-{cpus}cpu",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

/// One row of machine-independent figures, from a live session or parsed out
/// of a baseline document.  `config` disambiguates sweep cells (several per
/// workload × model); plain bench rows leave it empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetCell {
    /// Workload name.
    pub workload: String,
    /// Core model name.
    pub core: String,
    /// Configuration label (`"sb=..,mshr=..,l2=.."` for sweep cells).
    pub config: String,
    /// Committed instructions.
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Digest of the final architectural state.
    pub state_digest: u64,
}

impl DetCell {
    fn key(&self) -> (&str, &str, &str) {
        (&self.workload, &self.core, &self.config)
    }
}

/// A parsed baseline document (`BENCH_baseline.json`, or any `BENCH_sim` /
/// `BENCH_sweep` output).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineDoc {
    /// Machine class recorded at baseline time (absent in pre-gate-fix
    /// baselines — treated as a mismatch, i.e. MIPS stays advisory).
    pub machine: Option<String>,
    /// Aggregate throughput recorded at baseline time.
    pub aggregate_mips: Option<f64>,
    /// Per-cell deterministic figures.
    pub cells: Vec<DetCell>,
}

/// Extracts the string value of `"key": "value"` from a flat JSON object.
fn json_str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts the numeric value of `"key": 123` from a flat JSON object.
fn json_u64_field(obj: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a `"key": "0x..."` hex figure from a flat JSON object.
fn json_hex_field(obj: &str, key: &str) -> Option<u64> {
    let s = json_str_field(obj, key)?;
    u64::from_str_radix(s.trim_start_matches("0x"), 16).ok()
}

/// The deterministic figures of a sweep report's cells, as [`DetCell`]s for
/// the baseline gate — one shared conversion so the local sweep CLI, the
/// `sweep submit` client and the gate all label configurations identically.
pub fn sweep_det_cells(report: &icfp_sweep::SweepReport) -> Vec<DetCell> {
    report
        .cells
        .iter()
        .map(|c| DetCell {
            workload: c.workload.clone(),
            core: c.model.clone(),
            config: format!(
                "sb={},mshr={},l2={}",
                c.slice_buffer_entries, c.mshr_count, c.l2_hit_latency
            ),
            instructions: c.instructions,
            cycles: c.cycles,
            state_digest: c.state_digest,
        })
        .collect()
}

/// Parses the baseline figures out of a `BENCH_sim.json` / `BENCH_sweep.json`
/// document.  Sweep documents go through the one shared parser
/// ([`icfp_sweep::schema::parse`]), which also verifies the recorded report
/// digest; bench documents keep the legacy line scan (the environment has no
/// JSON parser dependency, and the writer emits one cell object per line).
///
/// # Errors
///
/// A sweep document that fails the schema parser — wrong version, missing
/// fields, or cells edited after the digest was recorded — is rejected with
/// the parser's description rather than silently yielding partial figures.
pub fn parse_baseline(doc: &str) -> Result<BaselineDoc, String> {
    if doc.contains("\"schema\": \"icfp-sweep/") {
        let report = icfp_sweep::schema::parse(doc).map_err(|e| e.to_string())?;
        return Ok(BaselineDoc {
            machine: None,
            aggregate_mips: parse_aggregate_mips(doc),
            cells: sweep_det_cells(&report),
        });
    }
    let mut out = BaselineDoc {
        aggregate_mips: parse_aggregate_mips(doc),
        ..BaselineDoc::default()
    };
    for line in doc.lines() {
        let t = line.trim();
        if t.starts_with("\"machine\"") {
            out.machine = json_str_field(t, "machine");
        }
        if !t.contains("\"workload\"") || !t.starts_with('{') {
            continue;
        }
        // Bench rows name the model "core"; sweep cells name it "model" and
        // carry their configuration axes.
        let Some(workload) = json_str_field(t, "workload") else {
            continue;
        };
        let Some(core) = json_str_field(t, "core").or_else(|| json_str_field(t, "model")) else {
            continue;
        };
        let config = match (
            json_u64_field(t, "slice_buffer"),
            json_u64_field(t, "mshrs"),
            json_u64_field(t, "l2_hit_latency"),
        ) {
            (Some(sb), Some(mshrs), Some(l2)) => format!("sb={sb},mshr={mshrs},l2={l2}"),
            _ => String::new(),
        };
        let (Some(instructions), Some(cycles), Some(state_digest)) = (
            json_u64_field(t, "instructions"),
            json_u64_field(t, "cycles"),
            json_hex_field(t, "state_digest"),
        ) else {
            continue;
        };
        out.cells.push(DetCell {
            workload,
            core,
            config,
            instructions,
            cycles,
            state_digest,
        });
    }
    Ok(out)
}

/// Outcome of the two-part baseline gate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Deterministic-figure mismatches and (same-machine) MIPS regressions:
    /// any entry here must fail CI.
    pub hard_errors: Vec<String>,
    /// Host-coupled observations that must *not* fail CI (MIPS deltas on a
    /// different machine class, cells absent from the baseline).
    pub advisory: Vec<String>,
    /// Whether the MIPS check was enforced (machine classes matched).
    pub mips_enforced: bool,
}

impl GateReport {
    /// True if CI may pass.
    pub fn is_ok(&self) -> bool {
        self.hard_errors.is_empty()
    }
}

/// The baseline gate: deterministic figures are compared exactly and always
/// enforced; the aggregate-MIPS regression check is enforced only when
/// `current_machine` equals the class recorded in the baseline, and demoted
/// to advisory otherwise.
pub fn gate_against_baseline(
    current: &[DetCell],
    current_mips: f64,
    current_machine: &str,
    baseline: &BaselineDoc,
    max_regress_pct: f64,
) -> GateReport {
    let mut report = GateReport::default();

    if baseline.cells.is_empty() {
        report
            .hard_errors
            .push("baseline document carries no per-cell deterministic figures".into());
    }
    for b in &baseline.cells {
        let label = if b.config.is_empty() {
            format!("{}/{}", b.workload, b.core)
        } else {
            format!("{}/{} [{}]", b.workload, b.core, b.config)
        };
        match current.iter().find(|c| c.key() == b.key()) {
            None => report
                .hard_errors
                .push(format!("baseline cell {label} is missing from the current run")),
            Some(c) => {
                if c.instructions != b.instructions {
                    report.hard_errors.push(format!(
                        "{label}: instruction count changed {} -> {}",
                        b.instructions, c.instructions
                    ));
                }
                if c.cycles != b.cycles {
                    report.hard_errors.push(format!(
                        "{label}: cycle count changed {} -> {}",
                        b.cycles, c.cycles
                    ));
                }
                if c.state_digest != b.state_digest {
                    report.hard_errors.push(format!(
                        "{label}: state digest changed {:#018x} -> {:#018x}",
                        b.state_digest, c.state_digest
                    ));
                }
            }
        }
    }
    for c in current {
        if !baseline.cells.iter().any(|b| b.key() == c.key()) {
            report.advisory.push(format!(
                "cell {}/{} has no baseline figure (new cell, not gated)",
                c.workload, c.core
            ));
        }
    }

    let Some(base_mips) = baseline.aggregate_mips else {
        report
            .advisory
            .push("baseline has no aggregate_mips figure; throughput not checked".into());
        return report;
    };
    report.mips_enforced = baseline.machine.as_deref() == Some(current_machine);
    match check_against_baseline(current_mips, base_mips, max_regress_pct) {
        Ok(()) => {}
        Err(e) if report.mips_enforced => report.hard_errors.push(e),
        Err(e) => report.advisory.push(format!(
            "{e} — advisory only: baseline machine class {:?} differs from this host ({current_machine})",
            baseline.machine.as_deref().unwrap_or("unrecorded")
        )),
    }
    report
}

/// The aggregate-MIPS comparison: fails if `current` MIPS has regressed more
/// than `max_regress_pct` percent below `baseline` MIPS.  Whether a failure
/// is fatal or advisory is decided by [`gate_against_baseline`].
///
/// # Errors
///
/// Returns a human-readable description of the regression.
pub fn check_against_baseline(
    current: f64,
    baseline: f64,
    max_regress_pct: f64,
) -> Result<(), String> {
    if baseline <= 0.0 {
        return Err(format!("baseline aggregate MIPS is not positive: {baseline}"));
    }
    let floor = baseline * (1.0 - max_regress_pct / 100.0);
    if current < floor {
        return Err(format!(
            "aggregate MIPS regressed {:.1}% (current {current:.3} vs baseline {baseline:.3}, \
             allowed floor {floor:.3})",
            (1.0 - current / baseline) * 100.0
        ));
    }
    Ok(())
}

/// A tiny best-of-N timing loop for micro-benchmarks (`benches/hot_paths.rs`).
/// Returns the best nanoseconds-per-iteration over `reps` timed batches of
/// `iters` calls.
pub fn time_ns_per_iter<F: FnMut()>(mut f: F, iters: u32, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters.max(1) {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfp_sim::Simulator;

    #[test]
    fn bench_session_json_is_well_formed() {
        let trace = icfp_workloads::branchy(300, 1);
        let run = bench_trace(CoreModel::InOrder, &trace, 2);
        let session = BenchSession {
            mode: "smoke".into(),
            runs: vec![run],
        };
        let json = session.to_json();
        assert!(json.contains("\"schema\": \"icfp-bench/v1\""));
        assert!(json.contains("\"workload\": \"branchy\""));
        assert!(json.contains("\"mips\":"));
        assert!(session.aggregate_mips() >= 0.0);
        // Structural sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn same_trace_and_seed_give_identical_reports() {
        // End-to-end determinism: generating the same workload from the same
        // seed and simulating it twice must produce bit-identical timing and
        // architectural results (host_seconds/mips are the only wall-clock
        // fields and are excluded).
        let run = || {
            let trace = icfp_workloads::by_name_or_err("dcache-thrash", 2_000, 0xC0DE)
                .unwrap_or_else(|e| panic!("{e}"));
            let mut sim = Simulator::new(SimConfig::new(CoreModel::Icfp));
            sim.run(&trace)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.state_digest, b.state_digest);
        assert_eq!(a.l1d_mpki, b.l1d_mpki);
        assert_eq!(a.l2_mpki, b.l2_mpki);
        assert_eq!(a.rally_passes, b.rally_passes);
        assert_eq!(a.slice_peak, b.slice_peak);
        assert_eq!(a.result.final_regs, b.result.final_regs);
        assert_eq!(a.result.final_mem, b.result.final_mem);
    }

    #[test]
    fn aggregate_mips_parses_from_json() {
        let trace = icfp_workloads::branchy(300, 1);
        let session = BenchSession {
            mode: "smoke".into(),
            runs: vec![bench_trace(CoreModel::InOrder, &trace, 1)],
        };
        let json = session.to_json();
        let parsed = parse_aggregate_mips(&json).expect("figure present");
        assert!((parsed - session.aggregate_mips()).abs() < 0.002, "{parsed}");
        assert_eq!(parse_aggregate_mips("{}"), None);
        assert_eq!(parse_aggregate_mips("\"aggregate_mips\": 12.5"), Some(12.5));
    }

    /// A small real session plus its own JSON as the baseline document.
    fn session_and_baseline() -> (Vec<DetCell>, f64, String) {
        let trace = icfp_workloads::branchy(400, 7);
        let session = BenchSession {
            mode: "smoke".into(),
            runs: vec![
                bench_trace(CoreModel::InOrder, &trace, 1),
                bench_trace(CoreModel::Icfp, &trace, 1),
            ],
        };
        (session.det_cells(), session.aggregate_mips(), session.to_json())
    }

    #[test]
    fn baseline_json_parses_machine_and_cells() {
        let (cells, _, json) = session_and_baseline();
        let doc = parse_baseline(&json).unwrap();
        assert_eq!(doc.machine.as_deref(), Some(machine_class().as_str()));
        assert!(doc.aggregate_mips.is_some());
        assert_eq!(doc.cells, cells);
    }

    #[test]
    fn inflated_host_time_baseline_is_advisory_on_another_machine_class() {
        // The acceptance case: a baseline recorded on a (faster) different
        // machine claims 100x the throughput.  On a mismatched machine class
        // the MIPS check must demote to advisory — the gate passes.
        let (cells, mips, json) = session_and_baseline();
        let mut doc = parse_baseline(&json).unwrap();
        doc.aggregate_mips = Some(mips * 100.0);
        doc.machine = Some("mars-quantum99".into());
        let report = gate_against_baseline(&cells, mips, &machine_class(), &doc, 20.0);
        assert!(report.is_ok(), "hard errors: {:?}", report.hard_errors);
        assert!(!report.mips_enforced);
        assert!(
            report.advisory.iter().any(|a| a.contains("advisory")),
            "{:?}",
            report.advisory
        );

        // Same inflated figure recorded on *this* machine class: enforced.
        doc.machine = Some(machine_class());
        let report = gate_against_baseline(&cells, mips, &machine_class(), &doc, 20.0);
        assert!(!report.is_ok());
        assert!(report.mips_enforced);

        // Legacy baseline with no machine field: advisory too.
        doc.machine = None;
        let report = gate_against_baseline(&cells, mips, &machine_class(), &doc, 20.0);
        assert!(report.is_ok(), "{:?}", report.hard_errors);
    }

    #[test]
    fn single_cell_cycle_change_fails_regardless_of_machine_class() {
        let (cells, mips, json) = session_and_baseline();
        let mut doc = parse_baseline(&json).unwrap();
        doc.machine = Some("mars-quantum99".into()); // MIPS advisory...
        doc.cells[1].cycles += 1; // ...but determinism is not.
        let report = gate_against_baseline(&cells, mips, &machine_class(), &doc, 20.0);
        assert!(!report.is_ok());
        assert!(
            report.hard_errors.iter().any(|e| e.contains("cycle count changed")),
            "{:?}",
            report.hard_errors
        );

        // A digest change is equally fatal.
        let mut doc = parse_baseline(&json).unwrap();
        doc.cells[0].state_digest ^= 1;
        let report = gate_against_baseline(&cells, mips, &machine_class(), &doc, 20.0);
        assert!(report
            .hard_errors
            .iter()
            .any(|e| e.contains("state digest changed")));

        // A baseline cell the current run no longer produces is fatal too.
        let mut doc = parse_baseline(&json).unwrap();
        doc.cells.push(DetCell {
            workload: "pointer-chase".into(),
            core: "sltp".into(),
            config: String::new(),
            instructions: 1,
            cycles: 1,
            state_digest: 1,
        });
        let report = gate_against_baseline(&cells, mips, &machine_class(), &doc, 20.0);
        assert!(report.hard_errors.iter().any(|e| e.contains("missing")));
    }

    #[test]
    fn baseline_without_cells_is_rejected() {
        // A pre-fix baseline with only an aggregate figure cannot gate
        // determinism; the gate must say so rather than silently pass.
        let (cells, mips, _) = session_and_baseline();
        let doc = BaselineDoc {
            machine: None,
            aggregate_mips: Some(mips),
            cells: Vec::new(),
        };
        let report = gate_against_baseline(&cells, mips, &machine_class(), &doc, 20.0);
        assert!(!report.is_ok());
    }

    #[test]
    fn sweep_cells_parse_with_config_labels() {
        let mut spec = icfp_sweep::SweepSpec::new(
            vec![CoreModel::InOrder],
            vec!["branchy".into()],
            300,
            1,
        );
        spec.slice_buffer_entries = vec![64, 128];
        let report = icfp_sweep::run_sweep(&spec, 1).unwrap();
        let json = report.to_json();
        let doc = parse_baseline(&json).unwrap();
        assert_eq!(doc.cells.len(), 2);
        assert!(doc.cells[0].config.starts_with("sb=64,"));
        assert!(doc.cells[1].config.starts_with("sb=128,"));
        assert_eq!(doc.cells[0].core, "in-order");
        assert_eq!(doc.cells, sweep_det_cells(&report));

        // Sweep documents go through the shared schema parser, so a baseline
        // whose cells were edited after the digest was recorded is rejected
        // rather than silently gating against tampered figures.
        let cycles = report.cells[0].cycles;
        let edited = json.replace(
            &format!("\"cycles\": {cycles}"),
            &format!("\"cycles\": {}", cycles + 1),
        );
        let err = parse_baseline(&edited).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn baseline_gate_trips_only_past_the_threshold() {
        assert!(check_against_baseline(1.0, 1.0, 20.0).is_ok());
        assert!(check_against_baseline(0.81, 1.0, 20.0).is_ok());
        assert!(check_against_baseline(2.0, 1.0, 20.0).is_ok(), "speedups pass");
        let err = check_against_baseline(0.79, 1.0, 20.0).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        assert!(check_against_baseline(1.0, 0.0, 20.0).is_err());
    }

    #[test]
    fn bench_trace_reports_requested_reps() {
        let trace = icfp_workloads::branchy(300, 1);
        let run = bench_trace(CoreModel::InOrder, &trace, 3);
        assert_eq!(run.reps, 3);
        assert!(run.report.host_seconds >= 0.0);
    }

    #[test]
    fn timer_returns_finite_positive() {
        let mut x = 0u64;
        let ns = time_ns_per_iter(
            || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            },
            1000,
            3,
        );
        assert!(ns.is_finite() && ns >= 0.0);
        assert!(x != 0);
    }
}
