//! Micro-benchmarks for the per-cycle hot-path structures (`cargo bench -p
//! icfp-bench`).  Uses the crate's own best-of-N timer instead of criterion
//! because the build environment is offline; the output format is one line
//! per benchmark: `name  ns/iter`.

use icfp_bench::time_ns_per_iter;
use icfp_core::{ChainedStoreBuffer, SliceBuffer, SliceEntry, StoreBufferKind};
use icfp_isa::Reg;
use icfp_mem::{MemConfig, MemoryHierarchy, MshrFile, MshrRequest};
use icfp_pipeline::{PoisonMask, TimedRegFile};

fn report(name: &str, ns: f64) {
    println!("{name:<44} {ns:>10.1} ns/iter");
}

fn bench_storebuf_drain() {
    let mut sb = ChainedStoreBuffer::new(StoreBufferKind::Chained, 128, 512);
    let mut scratch: Vec<(u64, u64)> = Vec::with_capacity(128);
    let mut seq = 0u64;
    let ns = time_ns_per_iter(
        || {
            for k in 0..32u64 {
                let _ = sb.push(seq, 0x4000 + (k % 16) * 8, k, PoisonMask::CLEAN);
                seq += 1;
            }
            scratch.clear();
            sb.drain_completed_into(seq, &mut scratch);
            assert_eq!(scratch.len(), 32);
        },
        2_000,
        5,
    );
    report("storebuf/push32+drain_completed_into", ns);
}

fn bench_storebuf_forward() {
    let mut sb = ChainedStoreBuffer::new(StoreBufferKind::Chained, 128, 512);
    for k in 0..64u64 {
        let _ = sb.push(k, 0x4000 + k * 8, k, PoisonMask::CLEAN);
    }
    let color = sb.ssn_tail();
    let mut k = 0u64;
    let ns = time_ns_per_iter(
        || {
            let f = sb.forward(0x4000 + (k % 64) * 8, color);
            assert!(f.store.is_some());
            k += 1;
        },
        20_000,
        5,
    );
    report("storebuf/forward_hit", ns);
}

fn filled_slicebuf(bit_of: impl Fn(usize) -> u8) -> SliceBuffer {
    let mut sb = SliceBuffer::new(128);
    for k in 0..128usize {
        sb.push(SliceEntry {
            trace_idx: k,
            seq_from_ckpt: k as u64,
            src1_value: Some(1),
            src2_value: None,
            store_color: 0,
            poison: PoisonMask::bit(bit_of(k)),
            active: true,
        })
        .unwrap();
    }
    sb
}

fn bench_slicebuf_rally_selection() {
    // Two poison layouts: interleaved (worst case for the word scan — every
    // other packed word holds a matching lane) and clustered (the common
    // case — a miss's forward slice is a contiguous run of entries, so most
    // packed words are skipped with a single compare).  Each is measured
    // against the per-entry bit-loop reference (`rally_iter`) back-to-back,
    // so the word-level speedup is read off the same process and host state.
    for (label, sb) in [
        ("interleaved", filled_slicebuf(|k| (k % 8) as u8)),
        ("clustered", filled_slicebuf(|k| (k / 16) as u8)),
    ] {
        let mut scratch = Vec::with_capacity(128);
        let words = time_ns_per_iter(
            || {
                sb.entries_for_rally_into(PoisonMask::bit(3), &mut scratch);
                assert_eq!(scratch.len(), 16);
            },
            20_000,
            5,
        );
        let bitloop = time_ns_per_iter(
            || {
                scratch.clear();
                scratch.extend(sb.rally_iter(PoisonMask::bit(3)));
                assert_eq!(scratch.len(), 16);
            },
            20_000,
            5,
        );
        report(&format!("slicebuf/rally_select_words({label})"), words);
        report(&format!("slicebuf/rally_select_bitloop({label})"), bitloop);
    }
}

fn bench_regfile_poison_plane() {
    // The register file's poison plane: word-level "clear this returning
    // miss's bits everywhere" + "anything still poisoned?" over 64 registers
    // (the per-cycle pattern of the single-bit clearing schemes).
    let mut rf = TimedRegFile::new();
    for k in 0..16usize {
        rf.poison_write(Reg::int(2 * k), PoisonMask::bit((k % 8) as u8), k as u64);
    }
    let mut bit = 0u8;
    let ns = time_ns_per_iter(
        || {
            rf.clear_poison_bits(PoisonMask::bit(bit % 8).union(PoisonMask::bit(8 + bit % 8)));
            assert!(rf.any_poisoned() || rf.poisoned_count() == 0);
            // Re-poison so the plane never drains over the benchmark.
            rf.poison_write(Reg::int((bit % 30) as usize), PoisonMask::bit(bit % 8), bit as u64);
            bit = bit.wrapping_add(1);
        },
        20_000,
        5,
    );
    report("regfile/clear_bits+any_poisoned(64regs)", ns);

    // Whole-file poison union: the packed word reduce vs the per-register
    // bit loop it replaced, back-to-back for a host-noise-immune comparison.
    let words = time_ns_per_iter(
        || {
            assert!(rf.poison_union().is_poisoned());
        },
        50_000,
        5,
    );
    let bitloop = time_ns_per_iter(
        || {
            let union = Reg::all()
                .map(|r| rf.poison(r))
                .fold(PoisonMask::CLEAN, PoisonMask::union);
            assert!(union.is_poisoned());
        },
        50_000,
        5,
    );
    report("regfile/poison_union_words(64regs)", words);
    report("regfile/poison_union_bitloop(64regs)", bitloop);
}

fn bench_mshr_request_retire() {
    let mut f = MshrFile::new(64);
    let mut now = 0u64;
    let ns = time_ns_per_iter(
        || {
            for k in 0..32u64 {
                match f.request(0x10000 + k * 0x40, now, false) {
                    MshrRequest::Allocated(id) => f.set_completion(id, now + 10),
                    other => panic!("unexpected {other:?}"),
                }
            }
            now += 100;
            f.retire_completed(now);
            assert!(f.is_empty());
        },
        5_000,
        5,
    );
    report("mshr/request32+retire", ns);
}

fn bench_hierarchy_hit_loop() {
    let mut m = MemoryHierarchy::new(MemConfig::paper_default().with_prefetch(false));
    // Warm one line.
    let warm = m.load(0x4000, 0).unwrap();
    let mut now = warm.completes_at + 1;
    let ns = time_ns_per_iter(
        || {
            let r = m.load(0x4000, now).unwrap();
            now = r.completes_at;
        },
        50_000,
        5,
    );
    report("hierarchy/l1_hit_load", ns);
}

fn bench_end_to_end_icfp() {
    let trace = icfp_workloads::dcache_thrash(5_000, 256 * 1024, 1);
    let ns = time_ns_per_iter(
        || {
            let mut sim = icfp_sim::Simulator::new(icfp_sim::SimConfig::default());
            let r = sim.run(&trace);
            assert!(r.cycles > 0);
        },
        3,
        3,
    );
    report("sim/icfp_dcache_thrash_5k_insts", ns);
}

fn main() {
    println!("icfp hot-path micro-benchmarks (best-of-N, self-timed)");
    bench_storebuf_drain();
    bench_storebuf_forward();
    bench_slicebuf_rally_selection();
    bench_regfile_poison_plane();
    bench_mshr_request_retire();
    bench_hierarchy_hit_loop();
    bench_end_to_end_icfp();
}
