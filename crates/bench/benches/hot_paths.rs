//! Micro-benchmarks for the per-cycle hot-path structures (`cargo bench -p
//! icfp-bench`).  Uses the crate's own best-of-N timer instead of criterion
//! because the build environment is offline; the output format is one line
//! per benchmark: `name  ns/iter`.

use icfp_bench::time_ns_per_iter;
use icfp_core::{ChainedStoreBuffer, SliceBuffer, SliceEntry, StoreBufferKind};
use icfp_isa::Reg;
use icfp_mem::{MemConfig, MemoryHierarchy, MshrFile, MshrRequest};
use icfp_pipeline::{PoisonMask, TimedRegFile};

fn report(name: &str, ns: f64) {
    println!("{name:<44} {ns:>10.1} ns/iter");
}

fn bench_storebuf_drain() {
    let mut sb = ChainedStoreBuffer::new(StoreBufferKind::Chained, 128, 512);
    let mut scratch: Vec<(u64, u64)> = Vec::with_capacity(128);
    let mut seq = 0u64;
    let ns = time_ns_per_iter(
        || {
            for k in 0..32u64 {
                let _ = sb.push(seq, 0x4000 + (k % 16) * 8, k, PoisonMask::CLEAN);
                seq += 1;
            }
            scratch.clear();
            sb.drain_completed_into(seq, &mut scratch);
            assert_eq!(scratch.len(), 32);
        },
        2_000,
        5,
    );
    report("storebuf/push32+drain_completed_into", ns);
}

fn bench_storebuf_forward() {
    let mut sb = ChainedStoreBuffer::new(StoreBufferKind::Chained, 128, 512);
    for k in 0..64u64 {
        let _ = sb.push(k, 0x4000 + k * 8, k, PoisonMask::CLEAN);
    }
    let color = sb.ssn_tail();
    let mut k = 0u64;
    let ns = time_ns_per_iter(
        || {
            let f = sb.forward(0x4000 + (k % 64) * 8, color);
            assert!(f.store.is_some());
            k += 1;
        },
        20_000,
        5,
    );
    report("storebuf/forward_hit", ns);
}

fn filled_slicebuf(bit_of: impl Fn(usize) -> u8) -> SliceBuffer {
    let mut sb = SliceBuffer::new(128);
    for k in 0..128usize {
        sb.push(SliceEntry {
            trace_idx: k,
            seq_from_ckpt: k as u64,
            src1_value: Some(1),
            src2_value: None,
            src1_producer: usize::MAX,
            src2_producer: usize::MAX,
            store_color: 0,
            poison: PoisonMask::bit(bit_of(k)),
            active: true,
        })
        .unwrap();
    }
    sb
}

fn bench_slicebuf_rally_selection() {
    // Two poison layouts: interleaved (worst case for the word scan — every
    // other packed word holds a matching lane) and clustered (the common
    // case — a miss's forward slice is a contiguous run of entries, so most
    // packed words are skipped with a single compare).  Each is measured
    // against the per-entry bit-loop reference (`rally_iter`) back-to-back,
    // so the word-level speedup is read off the same process and host state.
    for (label, sb) in [
        ("interleaved", filled_slicebuf(|k| (k % 8) as u8)),
        ("clustered", filled_slicebuf(|k| (k / 16) as u8)),
    ] {
        let mut scratch = Vec::with_capacity(128);
        let words = time_ns_per_iter(
            || {
                sb.entries_for_rally_into(PoisonMask::bit(3), &mut scratch);
                assert_eq!(scratch.len(), 16);
            },
            20_000,
            5,
        );
        let bitloop = time_ns_per_iter(
            || {
                scratch.clear();
                scratch.extend(sb.rally_iter(PoisonMask::bit(3)));
                assert_eq!(scratch.len(), 16);
            },
            20_000,
            5,
        );
        report(&format!("slicebuf/rally_select_words({label})"), words);
        report(&format!("slicebuf/rally_select_bitloop({label})"), bitloop);
    }
}

fn bench_regfile_poison_plane() {
    // The register file's poison plane: word-level "clear this returning
    // miss's bits everywhere" + "anything still poisoned?" over 64 registers
    // (the per-cycle pattern of the single-bit clearing schemes).
    let mut rf = TimedRegFile::new();
    for k in 0..16usize {
        rf.poison_write(Reg::int(2 * k), PoisonMask::bit((k % 8) as u8), k as u64);
    }
    let mut bit = 0u8;
    let ns = time_ns_per_iter(
        || {
            rf.clear_poison_bits(PoisonMask::bit(bit % 8).union(PoisonMask::bit(8 + bit % 8)));
            assert!(rf.any_poisoned() || rf.poisoned_count() == 0);
            // Re-poison so the plane never drains over the benchmark.
            rf.poison_write(Reg::int((bit % 30) as usize), PoisonMask::bit(bit % 8), bit as u64);
            bit = bit.wrapping_add(1);
        },
        20_000,
        5,
    );
    report("regfile/clear_bits+any_poisoned(64regs)", ns);

    // Whole-file poison union: the packed word reduce vs the per-register
    // bit loop it replaced, back-to-back for a host-noise-immune comparison.
    let words = time_ns_per_iter(
        || {
            assert!(rf.poison_union().is_poisoned());
        },
        50_000,
        5,
    );
    let bitloop = time_ns_per_iter(
        || {
            let union = Reg::all()
                .map(|r| rf.poison(r))
                .fold(PoisonMask::CLEAN, PoisonMask::union);
            assert!(union.is_poisoned());
        },
        50_000,
        5,
    );
    report("regfile/poison_union_words(64regs)", words);
    report("regfile/poison_union_bitloop(64regs)", bitloop);
}

fn bench_mshr_request_retire() {
    let mut f = MshrFile::new(64);
    let mut now = 0u64;
    let ns = time_ns_per_iter(
        || {
            for k in 0..32u64 {
                match f.request(0x10000 + k * 0x40, now, false) {
                    MshrRequest::Allocated(id) => f.set_completion(id, now + 10),
                    other => panic!("unexpected {other:?}"),
                }
            }
            now += 100;
            f.retire_completed(now);
            assert!(f.is_empty());
        },
        5_000,
        5,
    );
    report("mshr/request32+retire", ns);
}

fn bench_hierarchy_hit_loop() {
    let mut m = MemoryHierarchy::new(MemConfig::paper_default().with_prefetch(false));
    // Warm one line.
    let warm = m.load(0x4000, 0).unwrap();
    let mut now = warm.completes_at + 1;
    let ns = time_ns_per_iter(
        || {
            let r = m.load(0x4000, now).unwrap();
            now = r.completes_at;
        },
        50_000,
        5,
    );
    report("hierarchy/l1_hit_load", ns);
}

fn bench_batched_vs_per_step_engine() {
    // Rung 2 of the raw-speed ladder: one `step_block` call over the whole
    // arena versus one virtual `step` call per instruction, back-to-back on
    // the same trace and model so the dispatch overhead is read directly.
    use icfp_core::CoreModel;
    let trace = icfp_workloads::dcache_thrash(5_000, 256 * 1024, 1);
    let cur = icfp_isa::TraceCursor::from_trace(&trace);
    let cfg = CoreModel::Icfp.default_config();
    let batched = time_ns_per_iter(
        || {
            let mut e = CoreModel::Icfp.engine(&cfg);
            let s = cur.arena_slice().expect("arena");
            while e.step_block(&cur, s, 0, u64::MAX) {}
            assert!(e.drain(&cur).stats.cycles > 0);
        },
        20,
        3,
    );
    let per_step = time_ns_per_iter(
        || {
            let mut e = CoreModel::Icfp.engine(&cfg);
            while e.step(&cur) {}
            assert!(e.drain(&cur).stats.cycles > 0);
        },
        20,
        3,
    );
    report("engine/icfp_5k_step_block(whole-arena)", batched);
    report("engine/icfp_5k_step(per-inst)", per_step);
}

fn bench_trace_decode_v1_vs_v2() {
    // Rung 4 of the raw-speed ladder: full sequential decode of the same
    // 50k-instruction container in both block encodings (fresh reader per
    // iteration so every block is a cache miss and the codec dominates).
    use icfp_isa::{TraceCursor, TraceFile, TraceFileWriter, TraceFormat};
    let trace = icfp_workloads::dcache_thrash(50_000, 256 * 1024, 1);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    for (label, format) in [("v1", TraceFormat::V1), ("v2", TraceFormat::V2)] {
        let path = dir.join(format!("icfp-hotpath-decode-{pid}-{label}.trace"));
        let s = TraceFileWriter::write_trace_as(&path, &trace, 4096, format).expect("write");
        let ns = time_ns_per_iter(
            || {
                let f = TraceFile::open(&path).expect("open");
                let cur = TraceCursor::new(&f);
                let mut loads = 0usize;
                cur.for_each_block_from(0, |_, insts| {
                    loads += insts.iter().filter(|i| i.is_load()).count();
                    true
                });
                assert!(loads > 0);
            },
            20,
            3,
        );
        report(&format!("trace/decode_50k_{label}({}B)", s.bytes), ns);
        let _ = std::fs::remove_file(&path);
    }
}

fn bench_async_vs_sync_prefetch() {
    // Rung 3 of the raw-speed ladder: a full streamed simulation over the
    // same on-disk container with the background decode thread (block k+1
    // decodes while block k simulates) versus fully-inline decoding.
    use icfp_isa::{TraceFile, TraceFileWriter, TraceFormat};
    let trace = icfp_workloads::dcache_thrash(50_000, 256 * 1024, 1);
    let path = std::env::temp_dir().join(format!(
        "icfp-hotpath-prefetch-{}.trace",
        std::process::id()
    ));
    TraceFileWriter::write_trace_as(&path, &trace, 4096, TraceFormat::V2).expect("write");
    for (label, sync) in [("async", false), ("sync", true)] {
        let ns = time_ns_per_iter(
            || {
                let f = if sync {
                    TraceFile::open_sync(&path).expect("open")
                } else {
                    TraceFile::open(&path).expect("open")
                };
                let mut sim =
                    icfp_sim::Simulator::new(icfp_sim::SimConfig::new(icfp_sim::CoreModel::InOrder));
                let r = sim.run_source(&f);
                assert!(r.cycles > 0);
            },
            5,
            3,
        );
        report(&format!("trace/stream_sim_50k_{label}_prefetch"), ns);
    }
    let _ = std::fs::remove_file(&path);
}

fn bench_functional_ff_vs_timed() {
    // Rung 1 of the raw-speed ladder: chewing through the same instructions
    // with the execute-only functional model versus the full timing model.
    // The ratio is the warmup speedup `--fast-forward` buys per skipped
    // instruction.
    let trace = icfp_workloads::by_name("pointer-chase", 200_000, 1).expect("workload");
    let cur = icfp_isa::TraceCursor::from_trace(&trace);
    let n = trace.len();
    let ff = time_ns_per_iter(
        || {
            let warm = icfp_sim::functional_warmup(&cur, n);
            assert_eq!(warm.instructions, n as u64);
        },
        5,
        3,
    );
    let timed = time_ns_per_iter(
        || {
            let mut sim = icfp_sim::Simulator::new(icfp_sim::SimConfig::new(
                icfp_sim::CoreModel::Icfp,
            ));
            assert!(sim.run(&trace).cycles > 0);
        },
        2,
        3,
    );
    report(
        &format!("ff/functional_200k({:.0} MIPS)", n as f64 * 1e3 / ff),
        ff,
    );
    report(
        &format!("ff/timed_icfp_200k({:.1} MIPS)", n as f64 * 1e3 / timed),
        timed,
    );
}

fn bench_end_to_end_icfp() {
    let trace = icfp_workloads::dcache_thrash(5_000, 256 * 1024, 1);
    let ns = time_ns_per_iter(
        || {
            let mut sim = icfp_sim::Simulator::new(icfp_sim::SimConfig::default());
            let r = sim.run(&trace);
            assert!(r.cycles > 0);
        },
        3,
        3,
    );
    report("sim/icfp_dcache_thrash_5k_insts", ns);
}

fn main() {
    println!("icfp hot-path micro-benchmarks (best-of-N, self-timed)");
    bench_storebuf_drain();
    bench_storebuf_forward();
    bench_slicebuf_rally_selection();
    bench_regfile_poison_plane();
    bench_mshr_request_retire();
    bench_hierarchy_hit_loop();
    bench_batched_vs_per_step_engine();
    bench_trace_decode_v1_vs_v2();
    bench_async_vs_sync_prefetch();
    bench_functional_ff_vs_timed();
    bench_end_to_end_icfp();
}
