//! Micro-benchmarks for the per-cycle hot-path structures (`cargo bench -p
//! icfp-bench`).  Uses the crate's own best-of-N timer instead of criterion
//! because the build environment is offline; the output format is one line
//! per benchmark: `name  ns/iter`.

use icfp_bench::time_ns_per_iter;
use icfp_core::{ChainedStoreBuffer, SliceBuffer, SliceEntry, StoreBufferKind};
use icfp_mem::{MemConfig, MemoryHierarchy, MshrFile, MshrRequest};
use icfp_pipeline::PoisonMask;

fn report(name: &str, ns: f64) {
    println!("{name:<44} {ns:>10.1} ns/iter");
}

fn bench_storebuf_drain() {
    let mut sb = ChainedStoreBuffer::new(StoreBufferKind::Chained, 128, 512);
    let mut scratch: Vec<(u64, u64)> = Vec::with_capacity(128);
    let mut seq = 0u64;
    let ns = time_ns_per_iter(
        || {
            for k in 0..32u64 {
                let _ = sb.push(seq, 0x4000 + (k % 16) * 8, k, PoisonMask::CLEAN);
                seq += 1;
            }
            scratch.clear();
            sb.drain_completed_into(seq, &mut scratch);
            assert_eq!(scratch.len(), 32);
        },
        2_000,
        5,
    );
    report("storebuf/push32+drain_completed_into", ns);
}

fn bench_storebuf_forward() {
    let mut sb = ChainedStoreBuffer::new(StoreBufferKind::Chained, 128, 512);
    for k in 0..64u64 {
        let _ = sb.push(k, 0x4000 + k * 8, k, PoisonMask::CLEAN);
    }
    let color = sb.ssn_tail();
    let mut k = 0u64;
    let ns = time_ns_per_iter(
        || {
            let f = sb.forward(0x4000 + (k % 64) * 8, color);
            assert!(f.store.is_some());
            k += 1;
        },
        20_000,
        5,
    );
    report("storebuf/forward_hit", ns);
}

fn bench_slicebuf_rally_selection() {
    let mut sb = SliceBuffer::new(128);
    for k in 0..128usize {
        sb.push(SliceEntry {
            trace_idx: k,
            seq_from_ckpt: k as u64,
            src1_value: Some(1),
            src2_value: None,
            store_color: 0,
            poison: PoisonMask::bit((k % 8) as u8),
            active: true,
        })
        .unwrap();
    }
    let mut scratch = Vec::with_capacity(128);
    let ns = time_ns_per_iter(
        || {
            sb.entries_for_rally_into(PoisonMask::bit(3), &mut scratch);
            assert_eq!(scratch.len(), 16);
        },
        20_000,
        5,
    );
    report("slicebuf/entries_for_rally_into(128)", ns);
}

fn bench_mshr_request_retire() {
    let mut f = MshrFile::new(64);
    let mut now = 0u64;
    let ns = time_ns_per_iter(
        || {
            for k in 0..32u64 {
                match f.request(0x10000 + k * 0x40, now, false) {
                    MshrRequest::Allocated(id) => f.set_completion(id, now + 10),
                    other => panic!("unexpected {other:?}"),
                }
            }
            now += 100;
            f.retire_completed(now);
            assert!(f.is_empty());
        },
        5_000,
        5,
    );
    report("mshr/request32+retire", ns);
}

fn bench_hierarchy_hit_loop() {
    let mut m = MemoryHierarchy::new(MemConfig::paper_default().with_prefetch(false));
    // Warm one line.
    let warm = m.load(0x4000, 0).unwrap();
    let mut now = warm.completes_at + 1;
    let ns = time_ns_per_iter(
        || {
            let r = m.load(0x4000, now).unwrap();
            now = r.completes_at;
        },
        50_000,
        5,
    );
    report("hierarchy/l1_hit_load", ns);
}

fn bench_end_to_end_icfp() {
    let trace = icfp_workloads::dcache_thrash(5_000, 256 * 1024, 1);
    let ns = time_ns_per_iter(
        || {
            let mut sim = icfp_sim::Simulator::new(icfp_sim::SimConfig::default());
            let r = sim.run(&trace);
            assert!(r.cycles > 0);
        },
        3,
        3,
    );
    report("sim/icfp_dcache_thrash_5k_insts", ns);
}

fn main() {
    println!("icfp hot-path micro-benchmarks (best-of-N, self-timed)");
    bench_storebuf_drain();
    bench_storebuf_forward();
    bench_slicebuf_rally_selection();
    bench_mshr_request_retire();
    bench_hierarchy_hit_loop();
    bench_end_to_end_icfp();
}
