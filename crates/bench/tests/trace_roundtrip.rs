//! Convert → simulate round-trip: an `icfp-bbp/v1` fixture converts into an
//! `icfp-trace/v1` container, the container streams through the simulator,
//! and the results are bit-identical to simulating the same program
//! materialized in memory — the real-workload frontend end to end.

use icfp_isa::{TraceFile, TraceFileWriter, TraceSource};
use icfp_sim::{CoreModel, SimConfig, Simulator};
use icfp_workloads::bbp;

/// A miss-heavy pointer walk with a predictable inner branch and a store
/// phase — enough structure to exercise loads, stores, branches and the
/// stride patterns of the converter.
const FIXTURE: &str = "\
name fixture-walk
loop 300
  pc 0x2000
  ld r1, r1, 0x100000+4096*i
  add r2, r1, #1
  xor r3, r2, r3
  br r2, t, 0x2000 0.9
end
loop 64
  st r3, r4, 0x400000+8*i
  ld r5, r4, 0x400000+8*i
end
nop
";

#[test]
fn convert_then_simulate_matches_in_memory_expansion() {
    let program = bbp::parse(FIXTURE).expect("fixture parses");
    let arena = program.to_trace("unused-fallback");
    assert_eq!(arena.name(), "fixture-walk");
    assert_eq!(arena.len() as u64, program.dynamic_len());

    // Convert through the streaming writer (tiny blocks: many boundaries).
    let path = std::env::temp_dir().join(format!(
        "icfp-bbp-roundtrip-{}.trace",
        std::process::id()
    ));
    let mut writer = TraceFileWriter::create(&path, "fixture-walk", 128).expect("create");
    struct Sink(TraceFileWriter);
    impl icfp_workloads::TraceSink for Sink {
        fn push(&mut self, inst: icfp_isa::DynInst) {
            self.0.push(inst).expect("write");
        }
        fn set_next_pc(&mut self, pc: u64) {
            self.0.set_next_pc(pc);
        }
        fn emitted(&self) -> usize {
            self.0.len()
        }
    }
    let mut sink = Sink(writer);
    program.emit(&mut sink);
    writer = sink.0;
    let summary = writer.finish().expect("finish");
    assert_eq!(summary.instructions, arena.len() as u64);
    assert_eq!(summary.digest, arena.digest(), "converted content differs");

    let file = TraceFile::open(&path).expect("open");
    file.verify().expect("container verifies");
    assert_eq!(file.digest(), arena.digest());

    for model in CoreModel::ALL {
        let config = SimConfig::new(model);
        let from_arena = Simulator::new(config.clone()).run(&arena);
        let from_file = Simulator::new(config).run_source(&file);
        assert_eq!(from_arena.cycles, from_file.cycles, "{model}");
        assert_eq!(from_arena.state_digest, from_file.state_digest, "{model}");
        assert_eq!(from_arena.instructions, from_file.instructions, "{model}");
    }
    // The MRU cache (4), at most one decode in flight (demand and prefetch
    // decodes serialize under the cache lock), and the one block the driver
    // pins while the cache churns past it.
    let peak = file.residency().expect("file source counts").peak();
    assert!(peak <= 6, "peak resident blocks {peak}");
    let _ = std::fs::remove_file(&path);
}
