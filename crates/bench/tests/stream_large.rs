//! The streaming acceptance criterion: a workload of ≥ 10M instructions
//! streams through the `icfp-bench` harness with peak trace memory bounded
//! by a constant number of blocks — asserted via the source's block
//! residency counter — while producing a real, non-degenerate simulation.
//!
//! 10M instructions as a materialized arena would be ~10M × 96 B ≈ 1 GiB of
//! decoded `DynInst`s; the streamed source keeps at most a handful of
//! 16Ki-instruction blocks (plus the per-block resume snapshots) resident.

use icfp_bench::bench_source;
use icfp_sim::CoreModel;
use icfp_isa::TraceSource;

const TEN_MILLION: usize = 10_000_000;
const BLOCK: usize = 16 * 1024;

#[test]
fn ten_million_instructions_stream_with_bounded_block_residency() {
    // dcache-thrash is the cheapest generator per instruction and, on the
    // in-order model, the cheapest to simulate — this is a memory-bound
    // acceptance test, not a timing study.
    let source = icfp_workloads::STANDARD[1].source(TEN_MILLION, 0xB16, BLOCK);
    assert!(source.len() >= TEN_MILLION, "budget not met: {}", source.len());
    let blocks = source.block_count();
    assert!(blocks >= TEN_MILLION / BLOCK, "{blocks} blocks");

    let run = bench_source(CoreModel::InOrder, &source, 1);
    assert_eq!(run.report.instructions, source.len() as u64);
    assert!(run.report.cycles > run.report.instructions / 2, "degenerate run");

    let residency = source.residency().expect("streamed source is counted");
    assert!(
        residency.peak() <= 4,
        "peak resident blocks {} of {blocks} — streaming is not bounded",
        residency.peak()
    );
    // After the run only the source's own bounded MRU cache still pins
    // blocks (they drop with the source); nothing leaked beyond it.
    assert!(
        residency.live() <= residency.peak().min(3),
        "{} blocks still alive",
        residency.live()
    );
}
