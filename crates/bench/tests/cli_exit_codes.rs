//! `icfp-bench sweep submit` exit codes, end to end through the real binary:
//! each documented failure class (invalid spec, connect/transport failure,
//! protocol violation, server-reported error) must map to its own distinct
//! exit code so scripts can tell "fix the spec" from "retry later" from
//! "incompatible peer".

use icfp_sweep::wire::{base_features, Request, Response, WIRE_VERSION};
use serde::frame::{read_frame, write_frame};
use serde::{from_bytes, to_bytes, MAX_FRAME_LEN};
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_icfp-bench");

fn submit_status(extra: &[&str]) -> i32 {
    let out = Command::new(BIN)
        .args(["sweep", "submit"])
        .args(extra)
        .args(["--retries", "0", "--insts", "200"])
        .output()
        .expect("spawn icfp-bench");
    out.status.code().expect("exit code, not a signal")
}

fn recv_req(r: &mut BufReader<TcpStream>) -> Request {
    let bytes = read_frame(r, MAX_FRAME_LEN)
        .expect("read frame")
        .expect("peer sent a frame");
    from_bytes(&bytes).expect("decode request")
}

fn send_resp(w: &mut BufWriter<TcpStream>, resp: &Response) {
    use std::io::Write;
    write_frame(w, &to_bytes(resp)).expect("write frame");
    w.flush().expect("flush frame");
}

/// A one-connection scripted server: accepts, consumes the client's
/// `Hello2`, then hands the streams to `script` for the rest of the
/// conversation (starting with the handshake reply).
fn scripted_server(
    script: impl FnOnce(&mut BufReader<TcpStream>, &mut BufWriter<TcpStream>) + Send + 'static,
) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut r = BufReader::new(stream.try_clone().expect("clone"));
        let mut w = BufWriter::new(stream);
        match recv_req(&mut r) {
            Request::Hello2 { version, .. } => assert_eq!(version, WIRE_VERSION),
            other => panic!("expected Hello2, got {other:?}"),
        }
        script(&mut r, &mut w);
    });
    (addr, handle)
}

/// The scripted server's side of a successful v2 handshake.
fn send_hello2(w: &mut BufWriter<TcpStream>) {
    send_resp(
        w,
        &Response::Hello2 {
            version: WIRE_VERSION.to_string(),
            features: base_features(),
        },
    );
}

#[test]
fn an_invalid_spec_exits_2_without_connecting() {
    // Port 1 would refuse the connection — but validation fails first, so
    // the distinct spec code (2) must win over the transport code (3).
    let code = submit_status(&[
        "--server",
        "127.0.0.1:1",
        "--workload",
        "no-such-workload",
    ]);
    assert_eq!(code, 2);
}

#[test]
fn a_refused_connection_exits_3_after_retries() {
    let code = submit_status(&["--server", "127.0.0.1:1"]);
    assert_eq!(code, 3);
}

#[test]
fn a_protocol_violation_exits_4() {
    // The server "accepts" a cell count that cannot match the submitted
    // spec; the client must refuse the conversation, not stream forever.
    let (addr, server) = scripted_server(|r, w| {
        send_hello2(w);
        match recv_req(r) {
            Request::Submit { .. } => {}
            other => panic!("expected Submit, got {other:?}"),
        }
        send_resp(
            w,
            &Response::Accepted {
                cells: 999_999,
                threads: 1,
            },
        );
    });
    let code = submit_status(&["--server", &addr]);
    server.join().expect("server thread");
    assert_eq!(code, 4);
}

#[test]
fn a_pre_v2_server_exits_4_as_an_incompatible_peer() {
    // A v1 server answers the handshake with the legacy `Hello` — the
    // client must classify that as version skew (protocol family, exit 4),
    // not as a transport failure worth retrying.
    let (addr, server) = scripted_server(|_r, w| {
        send_resp(
            w,
            &Response::Hello {
                version: "icfp-wire/v1".to_string(),
            },
        );
    });
    let code = submit_status(&["--server", &addr]);
    server.join().expect("server thread");
    assert_eq!(code, 4);
}

#[test]
fn a_server_reported_error_exits_5() {
    // The error arrives *after* a completed handshake: a refusal during the
    // handshake itself is classified as an incompatible peer (exit 4).
    let (addr, server) = scripted_server(|r, w| {
        send_hello2(w);
        match recv_req(r) {
            Request::Submit { .. } => {}
            other => panic!("expected Submit, got {other:?}"),
        }
        send_resp(
            w,
            &Response::Error {
                message: "draining for shutdown".to_string(),
            },
        );
    });
    let code = submit_status(&["--server", &addr]);
    server.join().expect("server thread");
    assert_eq!(code, 5);
}
