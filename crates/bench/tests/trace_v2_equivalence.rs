//! Acceptance tests for the `icfp-trace/v2` container: the same workload
//! written as v1 and as v2 must produce byte-identical simulation results
//! under every core model, v2 files must be at most half the v1 size on the
//! standard workloads, and checkpoints must resume across versions (block
//! digests are over decoded instructions, not the encoding).

use icfp_isa::{TraceFile, TraceFileWriter, TraceFormat, TraceSource};
use icfp_sim::{CoreModel, SimConfig, Simulator};
use std::path::PathBuf;
use std::sync::Arc;

const INSTS: usize = 1200;
const SEED: u64 = 0x7E57;
const BLOCK: usize = 128;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("icfp-v2-equiv-{}-{name}", std::process::id()))
}

#[test]
fn v1_and_v2_containers_simulate_byte_identically_for_all_models() {
    for spec in &icfp_workloads::STANDARD {
        let trace = spec.trace(INSTS, SEED);
        let p1 = tmp(&format!("{}-v1", spec.name));
        let p2 = tmp(&format!("{}-v2", spec.name));
        let s1 = TraceFileWriter::write_trace_as(&p1, &trace, BLOCK, TraceFormat::V1)
            .expect("write v1");
        let s2 = TraceFileWriter::write_trace_as(&p2, &trace, BLOCK, TraceFormat::V2)
            .expect("write v2");
        assert_eq!(s1.digest, s2.digest, "{}: content identity differs", spec.name);

        let f1: Arc<dyn TraceSource> = TraceFile::open(&p1).expect("open v1").into();
        let f2: Arc<dyn TraceSource> = TraceFile::open(&p2).expect("open v2").into();
        for model in CoreModel::ALL {
            let a = Simulator::new(SimConfig::new(model)).run_source(f1.as_ref());
            let b = Simulator::new(SimConfig::new(model)).run_source(f2.as_ref());
            assert_eq!(a.cycles, b.cycles, "{model} {}: cycles", spec.name);
            assert_eq!(
                a.state_digest, b.state_digest,
                "{model} {}: state digest",
                spec.name
            );
            assert_eq!(a.result.stats, b.result.stats, "{model} {}", spec.name);
            assert_eq!(a.result.final_regs, b.result.final_regs);
            assert_eq!(a.result.final_mem, b.result.final_mem);
        }
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }
}

#[test]
fn v2_is_at_most_half_the_v1_size_on_every_standard_workload() {
    for spec in &icfp_workloads::STANDARD {
        let trace = spec.trace(4000, SEED);
        let p1 = tmp(&format!("{}-size-v1", spec.name));
        let p2 = tmp(&format!("{}-size-v2", spec.name));
        let s1 =
            TraceFileWriter::write_trace_as(&p1, &trace, BLOCK, TraceFormat::V1).expect("v1");
        let s2 =
            TraceFileWriter::write_trace_as(&p2, &trace, BLOCK, TraceFormat::V2).expect("v2");
        assert!(
            s2.bytes * 2 <= s1.bytes,
            "{}: v2 {} bytes vs v1 {} bytes — not ≤ 50%",
            spec.name,
            s2.bytes,
            s1.bytes
        );
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }
}

#[test]
fn checkpoint_taken_on_v1_resumes_against_v2() {
    let spec = &icfp_workloads::STANDARD[0];
    let trace = spec.trace(INSTS, SEED);
    let reference = Simulator::new(SimConfig::new(CoreModel::Icfp)).run(&trace);
    let p1 = tmp("ckpt-v1");
    let p2 = tmp("ckpt-v2");
    TraceFileWriter::write_trace_as(&p1, &trace, BLOCK, TraceFormat::V1).expect("v1");
    TraceFileWriter::write_trace_as(&p2, &trace, BLOCK, TraceFormat::V2).expect("v2");

    let v1: Arc<dyn TraceSource> = TraceFile::open(&p1).expect("open v1").into();
    let mut sim = Simulator::new(SimConfig::new(CoreModel::Icfp));
    sim.load(v1);
    sim.advance_to_inst(BLOCK + BLOCK / 2).expect("loaded");
    let ckpt = sim.checkpoint().expect("mid-block checkpoint");

    let v2: Arc<dyn TraceSource> = TraceFile::open(&p2).expect("open v2").into();
    let mut resumed = Simulator::resume(&ckpt, v2).expect("identity is content, not encoding");
    let report = resumed.finish_loaded();
    assert_eq!(report.cycles, reference.cycles);
    assert_eq!(report.state_digest, reference.state_digest);
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
}
