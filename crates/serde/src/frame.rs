//! Length-prefixed framing over byte streams.
//!
//! The sweep wire protocol (`icfp-wire/v1`) exchanges vendored-serde
//! payloads over a TCP stream; this module is the transport layer beneath
//! it: each frame is a `u32` little-endian payload length followed by the
//! payload bytes.  The reader is defensive — a hostile length field is a
//! typed [`FrameError`], never an allocation bomb or a panic — and
//! distinguishes a clean end-of-stream (no bytes of a next frame,
//! `Ok(None)`) from a stream that died mid-frame ([`FrameError::Truncated`]).
//!
//! ## Deadlines
//!
//! Frame operations honour whatever read/write deadline the underlying
//! stream enforces (`TcpStream::set_read_timeout` / `set_write_timeout`): a
//! stream operation that times out surfaces as the typed
//! [`FrameError::TimedOut`], not a bare I/O error, so callers can reap a
//! stalled peer (slow-loris resistance) without string-matching error
//! messages.

use std::fmt;
use std::io::{self, Read, Write};

/// Default ceiling on a single frame's payload (16 MiB) — far above any
/// legitimate sweep spec or cell, far below an allocation bomb.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Errors from reading or writing a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream ended in the middle of a frame (inside the length prefix
    /// after at least one byte, or inside the payload).
    Truncated {
        /// Payload bytes expected, if the length prefix was complete.
        expected: Option<usize>,
        /// Bytes actually read of the truncated part.
        got: usize,
    },
    /// The length prefix exceeds the reader's ceiling — a hostile or
    /// corrupted frame.
    TooLarge {
        /// The length the prefix claimed.
        len: usize,
        /// The ceiling it exceeded.
        max: usize,
    },
    /// The stream's read/write deadline expired mid-operation — a stalled
    /// peer, distinguished from other I/O failures so it can be reaped
    /// deliberately.
    TimedOut,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Truncated { expected, got } => match expected {
                Some(n) => write!(f, "stream ended mid-frame ({got} of {n} payload bytes)"),
                None => write!(f, "stream ended inside a frame length prefix ({got} of 4 bytes)"),
            },
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            FrameError::TimedOut => write!(f, "frame i/o deadline expired (stalled peer)"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        // `set_read_timeout`/`set_write_timeout` expirations surface as
        // WouldBlock (unix) or TimedOut (windows); both mean "deadline".
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            FrameError::TimedOut
        } else {
            FrameError::Io(e)
        }
    }
}

/// Writes one frame: `u32` LE payload length, then the payload.
///
/// # Errors
///
/// [`FrameError::TooLarge`] if the payload exceeds [`MAX_FRAME_LEN`] (the
/// writer enforces the same ceiling readers do, so a compliant peer never
/// produces an unreadable frame), or [`FrameError::Io`] on stream failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge {
            len: payload.len(),
            max: MAX_FRAME_LEN,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame's payload, bounded by `max_len`.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF before any byte of the
/// length prefix) — how a peer signals it is done.
///
/// # Errors
///
/// [`FrameError::Truncated`] if the stream ends inside the prefix or the
/// payload, [`FrameError::TooLarge`] if the prefix claims more than
/// `max_len` bytes, or [`FrameError::Io`] on any other stream failure.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated {
                        expected: None,
                        got: filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: Some(len),
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(payloads: &[&[u8]]) {
        let mut buf = Vec::new();
        for p in payloads {
            write_frame(&mut buf, p).expect("write");
        }
        let mut r = &buf[..];
        for p in payloads {
            let back = read_frame(&mut r, MAX_FRAME_LEN).expect("read").expect("frame");
            assert_eq!(&back[..], *p);
        }
        assert!(read_frame(&mut r, MAX_FRAME_LEN).expect("eof").is_none());
    }

    #[test]
    fn frames_round_trip_including_empty() {
        round_trip(&[b"hello"]);
        round_trip(&[b"", b"a", b"bc", &[0xA5; 1000]]);
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        let mut r: &[u8] = &[];
        assert!(read_frame(&mut r, 64).expect("clean eof").is_none());
    }

    #[test]
    fn truncation_inside_prefix_and_payload_are_typed_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").expect("write");
        // Inside the 4-byte prefix.
        for cut in 1..4 {
            let mut r = &buf[..cut];
            match read_frame(&mut r, 64) {
                Err(FrameError::Truncated { expected: None, got }) => assert_eq!(got, cut),
                other => panic!("cut {cut}: expected prefix truncation, got {other:?}"),
            }
        }
        // Inside the payload.
        for cut in 4..buf.len() {
            let mut r = &buf[..cut];
            match read_frame(&mut r, 64) {
                Err(FrameError::Truncated {
                    expected: Some(7),
                    got,
                }) => assert_eq!(got, cut - 4),
                other => panic!("cut {cut}: expected payload truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_length_is_rejected_without_allocating() {
        let mut bytes = (u32::MAX).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        let mut r = &bytes[..];
        match read_frame(&mut r, 1 << 20) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1 << 20);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn expired_stream_deadlines_are_typed_timeouts() {
        /// Yields `limit` bytes of a framed payload, then times out — the
        /// shape of a peer that stalls mid-frame under a read deadline.
        struct Stalling {
            bytes: Vec<u8>,
            at: usize,
            limit: usize,
        }
        impl Read for Stalling {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.at >= self.limit {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "deadline"));
                }
                let n = buf.len().min(self.limit - self.at).min(1);
                buf[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
                self.at += n;
                Ok(n)
            }
        }
        let mut framed = Vec::new();
        write_frame(&mut framed, b"payload").expect("write");
        // Stall inside the prefix, at the prefix/payload boundary, and
        // inside the payload: all typed TimedOut, never Io.
        for limit in [0, 2, 4, 7] {
            let mut r = Stalling {
                bytes: framed.clone(),
                at: 0,
                limit,
            };
            match read_frame(&mut r, MAX_FRAME_LEN) {
                Err(FrameError::TimedOut) => {}
                other => panic!("limit {limit}: expected TimedOut, got {other:?}"),
            }
        }
    }

    #[test]
    fn writer_refuses_oversized_payloads() {
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &huge),
            Err(FrameError::TooLarge { .. })
        ));
        assert!(sink.is_empty(), "nothing written for a refused frame");
    }
}
