//! Offline stand-in for `serde`.
//!
//! This build environment has no access to crates.io, and the workspace uses
//! serde only as `#[derive(Serialize, Deserialize)]` annotations on plain
//! data types — nothing calls `serde_json` or any serializer.  This crate
//! satisfies those imports with no-op derive macros so the workspace builds
//! hermetically.  If the real `serde` becomes available, delete `crates/serde`
//! and `crates/serde_derive` and add the registry dependency instead; no
//! source changes are required.

pub use serde_derive::{Deserialize, Serialize};
