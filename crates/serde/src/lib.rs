//! Minimal vendored `serde`: a compact little-endian binary codec.
//!
//! This build environment has no access to crates.io, and the checkpoint
//! subsystem (`icfp-ckpt/v1`) needs real serialization, so this crate is a
//! self-contained stand-in: [`Serialize`] / [`Deserialize`] traits over a
//! flat binary format, with derive macros (`crates/serde_derive`) generating
//! field-by-field impls in declaration order.  If the real `serde` becomes
//! available, the annotations are compatible — swap the dependency and port
//! the few manual impls.
//!
//! ## Format
//!
//! * fixed-width little-endian integers (`usize` travels as `u64`),
//! * `bool` as one byte (`0`/`1`), floats as their IEEE-754 bit patterns,
//! * `Option<T>` as a presence byte followed by the value,
//! * sequences (`Vec`, `VecDeque`, `String`, maps) as a `u64` length followed
//!   by the elements; `HashMap` entries are sorted by key so the encoding of
//!   equal maps is byte-identical regardless of hasher state,
//! * structs/enums as their fields in declaration order, enums prefixed with
//!   a `u32` variant tag (see `serde_derive`).
//!
//! The format is not self-describing: readers must know the type, which is
//! exactly the checkpoint use case (the `icfp-ckpt/v1` container carries the
//! versioning and digest validation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub mod frame;

pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use serde_derive::{Deserialize, Serialize};

/// A value encodable to the vendored binary format.
pub trait Serialize {
    /// Appends this value's encoding to `out`.
    fn serialize(&self, out: &mut Vec<u8>);
}

/// A value decodable from the vendored binary format.
pub trait Deserialize: Sized {
    /// Decodes one value from the reader, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on truncated input or invalid encodings.
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error>;
}

/// Encodes `value` to a fresh byte buffer.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.serialize(&mut out);
    out
}

/// Decodes a `T` from `bytes`, requiring every byte to be consumed.
///
/// # Errors
///
/// Returns [`Error`] on truncation, invalid encodings, or trailing bytes.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let mut r = Reader::new(bytes);
    let v = T::deserialize(&mut r)?;
    if r.remaining() != 0 {
        return Err(Error::invalid("trailing bytes after value", r.position()));
    }
    Ok(v)
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before the value was complete.
    Eof {
        /// Byte offset at which more input was needed.
        at: usize,
    },
    /// The input held an invalid encoding.
    Invalid {
        /// What was being decoded.
        what: &'static str,
        /// Byte offset of the invalid encoding.
        at: usize,
    },
}

impl Error {
    /// An invalid-encoding error for `what` at byte offset `at`.
    pub fn invalid(what: &'static str, at: usize) -> Self {
        Error::Invalid { what, at }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Eof { at } => write!(f, "unexpected end of input at byte {at}"),
            Error::Invalid { what, at } => write!(f, "invalid {what} at byte {at}"),
        }
    }
}

impl std::error::Error for Error {}

/// A cursor over the bytes being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Eof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.remaining() < n {
            return Err(Error::Eof { at: self.bytes.len() });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], Error> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    /// Decodes a `u64` length prefix, sanity-bounded by the bytes remaining
    /// (each element takes at least one byte for all element types except
    /// zero-sized ones, which the workspace does not serialize).
    fn length(&mut self) -> Result<usize, Error> {
        let at = self.pos;
        let n = u64::deserialize(self)?;
        if n > (self.remaining() as u64).saturating_mul(8).saturating_add(8) {
            return Err(Error::invalid("length prefix", at));
        }
        Ok(n as usize)
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Deserialize for $t {
            fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
                Ok(<$t>::from_le_bytes(r.array()?))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Serialize for usize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u64).serialize(out);
    }
}

impl Deserialize for usize {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let at = r.position();
        usize::try_from(u64::deserialize(r)?).map_err(|_| Error::invalid("usize", at))
    }
}

impl Serialize for isize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as i64).serialize(out);
    }
}

impl Deserialize for isize {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let at = r.position();
        isize::try_from(i64::deserialize(r)?).map_err(|_| Error::invalid("isize", at))
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Deserialize for bool {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let at = r.position();
        match u8::deserialize(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Error::invalid("bool", at)),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.to_bits().serialize(out);
    }
}

impl Deserialize for f64 {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(f64::from_bits(u64::deserialize(r)?))
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.to_bits().serialize(out);
    }
}

impl Deserialize for f32 {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(f32::from_bits(u32::deserialize(r)?))
    }
}

// ---------------------------------------------------------------------------
// Strings, options, tuples
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.as_str().serialize(out);
    }
}

impl Deserialize for String {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let n = r.length()?;
        let at = r.position();
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::invalid("utf-8 string", at))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.serialize(out);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let at = r.position();
        match u8::deserialize(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(r)?)),
            _ => Err(Error::invalid("option tag", at)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, out: &mut Vec<u8>) {
                $(self.$n.serialize(out);)+
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
                Ok(($($t::deserialize(r)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Sequences and maps
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        for v in self {
            v.serialize(out);
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let n = r.length()?;
        let mut v = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            v.push(T::deserialize(r)?);
        }
        Ok(v)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        for v in self {
            v.serialize(out);
        }
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let n = r.length()?;
        let mut v = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            v.push_back(T::deserialize(r)?);
        }
        Ok(v)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        for (k, v) in self {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let n = r.length()?;
        let mut m = BTreeMap::new();
        for _ in 0..n {
            let k = K::deserialize(r)?;
            let v = V::deserialize(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

/// `HashMap` entries are written sorted by key (hence `K: Ord`) so equal maps
/// always encode to identical bytes — hasher/iteration order never leaks into
/// checkpoints or digests.  Generic over the hasher so hot-path maps with
/// faster hash functions encode identically to the default.
impl<K: Serialize + Ord, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize(&self, out: &mut Vec<u8>) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        (entries.len() as u64).serialize(out);
        for (k, v) in entries {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let n = r.length()?;
        let mut m = HashMap::with_capacity_and_hasher(n.min(1 << 16), S::default());
        for _ in 0..n {
            let k = K::deserialize(r)?;
            let v = V::deserialize(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(0xA5u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f64);
        round_trip(f64::NAN.to_bits()); // NaN compared via bits
        round_trip(-0.25f32);
    }

    #[test]
    fn strings_and_options_round_trip() {
        round_trip(String::from("icfp-ckpt"));
        round_trip(String::new());
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip(Some(String::from("nested")));
    }

    #[test]
    fn sequences_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(vec![Some(1u32), None, Some(3)]);
        round_trip((1u64, 2u32, String::from("t")));
        let mut dq = VecDeque::new();
        dq.push_back(1u16);
        dq.push_back(9u16);
        round_trip(dq);
    }

    #[test]
    fn maps_round_trip_and_hashmaps_encode_deterministically() {
        let mut bt = BTreeMap::new();
        bt.insert(3u64, String::from("c"));
        bt.insert(1u64, String::from("a"));
        round_trip(bt);

        let mut h1 = HashMap::new();
        let mut h2 = HashMap::new();
        // Insert in different orders; encodings must be identical.
        for k in 0..64u64 {
            h1.insert(k, k * 3);
        }
        for k in (0..64u64).rev() {
            h2.insert(k, k * 3);
        }
        assert_eq!(to_bytes(&h1), to_bytes(&h2));
        round_trip(h1);
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let r: Result<Vec<u64>, Error> = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u64);
        bytes.push(0);
        assert!(from_bytes::<u64>(&bytes).is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // A length claiming far more elements than bytes remain.
        let bytes = to_bytes(&u64::MAX);
        let r: Result<Vec<u64>, Error> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags_error() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[9, 0]).is_err());
    }
}
