//! Dynamic instructions and opcodes.

use crate::{Addr, InstSeq, Reg, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory access width for loads and stores, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum MemWidth {
    /// 1-byte access.
    B1,
    /// 2-byte access.
    B2,
    /// 4-byte access.
    B4,
    /// 8-byte access.
    #[default]
    B8,
}

impl MemWidth {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}


/// Opcodes of SimISA.
///
/// The set is intentionally small: what matters to the evaluated mechanisms is
/// the operation *class* (functional-unit latency and port usage) and the
/// dependence/memory behaviour, not ISA breadth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Integer add (also used for address arithmetic): `dst = src1 + src2 + imm`.
    Add,
    /// Integer subtract: `dst = src1 - src2 - imm`.
    Sub,
    /// Bitwise and: `dst = src1 & (src2 ^ imm)`.
    And,
    /// Bitwise or: `dst = src1 | src2 | imm`.
    Or,
    /// Bitwise xor: `dst = src1 ^ src2 ^ imm`.
    Xor,
    /// Logical shift left by `imm & 63`: `dst = src1 << sh`.
    Shl,
    /// Logical shift right by `imm & 63`: `dst = src1 >> sh`.
    Shr,
    /// Compare less-than (unsigned): `dst = (src1 < src2) as u64`.
    CmpLt,
    /// Integer multiply: `dst = src1 * src2` (wrapping).
    Mul,
    /// Floating-point add (modelled on integer bits): `dst = src1 + src2`.
    FpAdd,
    /// Floating-point multiply (modelled on integer bits): `dst = src1 * src2`.
    FpMul,
    /// Load of `MemWidth` bytes: `dst = mem[addr]`.
    Load,
    /// Store of `MemWidth` bytes: `mem[addr] = src1`.
    Store,
    /// Conditional branch; direction recorded in [`DynInst::branch`].
    Branch,
    /// Unconditional jump (always taken; still consumes the branch port).
    Jump,
    /// No-operation (consumes an integer port slot; used to pad schedules).
    Nop,
}

/// Coarse operation classes used for latency and issue-port modelling.
///
/// Port model (paper Table 1): 2-way superscalar with 2 integer ports and a
/// single shared fp/load/store/branch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply (4 cycles, paper Table 1).
    IntMul,
    /// Floating-point add (2 cycles, paper Table 1).
    FpAdd,
    /// Floating-point multiply (4 cycles, paper Table 1).
    FpMul,
    /// Load (3-cycle data-cache pipeline on a hit, paper Table 1).
    Load,
    /// Store (address/data capture; completion handled by the store buffer).
    Store,
    /// Branch or jump.
    Branch,
}

impl Op {
    /// The operation class of this opcode.
    pub fn class(self) -> OpClass {
        match self {
            Op::Add
            | Op::Sub
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::CmpLt
            | Op::Nop => OpClass::IntAlu,
            Op::Mul => OpClass::IntMul,
            Op::FpAdd => OpClass::FpAdd,
            Op::FpMul => OpClass::FpMul,
            Op::Load => OpClass::Load,
            Op::Store => OpClass::Store,
            Op::Branch | Op::Jump => OpClass::Branch,
        }
    }

    /// True for loads.
    pub fn is_load(self) -> bool {
        self == Op::Load
    }

    /// True for stores.
    pub fn is_store(self) -> bool {
        self == Op::Store
    }

    /// True for memory operations (loads and stores).
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// True for control-transfer instructions.
    pub fn is_branch(self) -> bool {
        matches!(self, Op::Branch | Op::Jump)
    }
}

impl OpClass {
    /// Execution latency in cycles for this class, per paper Table 1.
    ///
    /// For loads this is the data-cache *hit* pipeline latency (3 cycles); a
    /// miss extends it via the memory hierarchy.  Stores are considered
    /// complete (from the pipeline's perspective) once address and data are
    /// captured by the store buffer, hence latency 1.
    pub fn latency(self) -> u64 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 4,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 4,
            OpClass::Load => 3,
            OpClass::Store => 1,
            OpClass::Branch => 1,
        }
    }

    /// Whether this class issues on an integer port (true) or on the shared
    /// fp/load/store/branch port (false).
    pub fn uses_int_port(self) -> bool {
        matches!(self, OpClass::IntAlu | OpClass::IntMul)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::CmpLt => "cmplt",
            Op::Mul => "mul",
            Op::FpAdd => "fadd",
            Op::FpMul => "fmul",
            Op::Load => "ld",
            Op::Store => "st",
            Op::Branch => "br",
            Op::Jump => "jmp",
            Op::Nop => "nop",
        };
        write!(f, "{s}")
    }
}

/// Outcome of a control-transfer instruction, recorded in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Whether the branch is taken in the (correct-path) trace.
    pub taken: bool,
    /// Branch target address (used by the BTB model).
    pub target: Addr,
    /// A hint in `0.0..=1.0` describing how predictable this branch's
    /// direction stream is; the synthetic workload generator sets this and the
    /// predictor model consumes it when the full history-based predictor is
    /// not warmed up.  `1.0` means perfectly biased.
    pub predictability: f32,
}

/// One dynamic instruction from the correct-path instruction stream.
///
/// A [`DynInst`] is a *trace record*: effective addresses, branch outcomes and
/// immediate values are pre-resolved (trace-driven simulation).  The timing
/// models still decide *when* each field may legally be observed (e.g. a
/// poisoned address cannot be used to chain a store into the store buffer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynInst {
    /// Dynamic sequence number (position in the trace, starting at 0).
    pub seq: InstSeq,
    /// Program counter of this instruction.
    pub pc: Addr,
    /// Opcode.
    pub op: Op,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// First source register, if any.
    pub src1: Option<Reg>,
    /// Second source register, if any.  For stores this is the *data* source
    /// when `src1` carries the address base, mirroring a typical RISC `st
    /// data, [base+imm]` encoding — see [`DynInst::store_data_reg`].
    pub src2: Option<Reg>,
    /// Immediate operand.
    pub imm: Value,
    /// Effective address for loads/stores.
    pub addr: Option<Addr>,
    /// Access width for loads/stores.
    pub width: MemWidth,
    /// Branch outcome for control transfers.
    pub branch: Option<BranchInfo>,
}

impl DynInst {
    /// Creates a three-register ALU instruction `op dst, src1, src2`.
    pub fn alu(op: Op, dst: Reg, src1: Reg, src2: Reg) -> Self {
        debug_assert!(!op.is_mem() && !op.is_branch());
        DynInst {
            seq: 0,
            pc: 0,
            op,
            dst: Some(dst),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            addr: None,
            width: MemWidth::B8,
            branch: None,
        }
    }

    /// Creates an ALU instruction with an immediate operand `op dst, src1, #imm`.
    pub fn alu_imm(op: Op, dst: Reg, src1: Reg, imm: Value) -> Self {
        debug_assert!(!op.is_mem() && !op.is_branch());
        DynInst {
            seq: 0,
            pc: 0,
            op,
            dst: Some(dst),
            src1: Some(src1),
            src2: None,
            imm,
            addr: None,
            width: MemWidth::B8,
            branch: None,
        }
    }

    /// Creates a load `ld dst, [base]` with a pre-resolved effective address.
    pub fn load(dst: Reg, base: Reg, addr: Addr) -> Self {
        DynInst {
            seq: 0,
            pc: 0,
            op: Op::Load,
            dst: Some(dst),
            src1: Some(base),
            src2: None,
            imm: 0,
            addr: Some(addr),
            width: MemWidth::B8,
            branch: None,
        }
    }

    /// Creates a store `st data, [base]` with a pre-resolved effective address.
    pub fn store(data: Reg, base: Reg, addr: Addr) -> Self {
        DynInst {
            seq: 0,
            pc: 0,
            op: Op::Store,
            dst: None,
            src1: Some(base),
            src2: Some(data),
            imm: 0,
            addr: Some(addr),
            width: MemWidth::B8,
            branch: None,
        }
    }

    /// Creates a conditional branch with the given resolved outcome.
    pub fn branch(cond: Reg, taken: bool, target: Addr, predictability: f32) -> Self {
        DynInst {
            seq: 0,
            pc: 0,
            op: Op::Branch,
            dst: None,
            src1: Some(cond),
            src2: None,
            imm: 0,
            addr: None,
            width: MemWidth::B8,
            branch: Some(BranchInfo {
                taken,
                target,
                predictability,
            }),
        }
    }

    /// Creates a no-operation.
    pub fn nop() -> Self {
        DynInst {
            seq: 0,
            pc: 0,
            op: Op::Nop,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
            addr: None,
            width: MemWidth::B8,
            branch: None,
        }
    }

    /// The operation class (latency / port) of this instruction.
    pub fn class(&self) -> OpClass {
        self.op.class()
    }

    /// Execution latency of this instruction assuming cache hits.
    pub fn latency(&self) -> u64 {
        self.class().latency()
    }

    /// True for loads.
    pub fn is_load(&self) -> bool {
        self.op.is_load()
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        self.op.is_store()
    }

    /// True for memory operations.
    pub fn is_mem(&self) -> bool {
        self.op.is_mem()
    }

    /// True for control transfers.
    pub fn is_branch(&self) -> bool {
        self.op.is_branch()
    }

    /// The register that supplies a store's *data* operand (`src2` by
    /// convention, falling back to `src1` for single-operand encodings).
    pub fn store_data_reg(&self) -> Option<Reg> {
        debug_assert!(self.is_store());
        self.src2.or(self.src1)
    }

    /// The register that supplies a memory operation's *address base*.
    pub fn addr_base_reg(&self) -> Option<Reg> {
        debug_assert!(self.is_mem());
        self.src1
    }

    /// Iterator over the source registers of this instruction.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }

    /// Sets the dynamic sequence number (builder style).
    pub fn with_seq(mut self, seq: InstSeq) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the program counter (builder style).
    pub fn with_pc(mut self, pc: Addr) -> Self {
        self.pc = pc;
        self
    }
}

impl fmt::Display for DynInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>6}] {}", self.seq, self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        for s in self.sources() {
            write!(f, ", {s}")?;
        }
        if let Some(a) = self.addr {
            write!(f, ", [{a:#x}]")?;
        }
        if let Some(b) = self.branch {
            write!(f, " ({})", if b.taken { "T" } else { "NT" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classes_and_latencies_match_paper_table1() {
        assert_eq!(Op::Add.class().latency(), 1);
        assert_eq!(Op::Mul.class().latency(), 4);
        assert_eq!(Op::FpAdd.class().latency(), 2);
        assert_eq!(Op::FpMul.class().latency(), 4);
        assert_eq!(Op::Load.class().latency(), 3);
        assert_eq!(Op::Branch.class().latency(), 1);
    }

    #[test]
    fn port_assignment() {
        assert!(OpClass::IntAlu.uses_int_port());
        assert!(OpClass::IntMul.uses_int_port());
        assert!(!OpClass::FpAdd.uses_int_port());
        assert!(!OpClass::Load.uses_int_port());
        assert!(!OpClass::Store.uses_int_port());
        assert!(!OpClass::Branch.uses_int_port());
    }

    #[test]
    fn constructors_classify_correctly() {
        let ld = DynInst::load(Reg::int(1), Reg::int(2), 0x100);
        assert!(ld.is_load() && ld.is_mem() && !ld.is_store());
        let st = DynInst::store(Reg::int(3), Reg::int(2), 0x108);
        assert!(st.is_store() && st.is_mem());
        assert_eq!(st.store_data_reg(), Some(Reg::int(3)));
        assert_eq!(st.addr_base_reg(), Some(Reg::int(2)));
        let br = DynInst::branch(Reg::int(4), true, 0x40, 0.9);
        assert!(br.is_branch());
        assert!(br.branch.unwrap().taken);
    }

    #[test]
    fn sources_iterates_in_order() {
        let i = DynInst::alu(Op::Add, Reg::int(1), Reg::int(2), Reg::int(3));
        let s: Vec<Reg> = i.sources().collect();
        assert_eq!(s, vec![Reg::int(2), Reg::int(3)]);
        let n = DynInst::nop();
        assert_eq!(n.sources().count(), 0);
    }

    #[test]
    fn display_contains_opcode_and_regs() {
        let i = DynInst::alu(Op::Xor, Reg::int(1), Reg::int(2), Reg::int(3)).with_seq(7);
        let s = i.to_string();
        assert!(s.contains("xor"));
        assert!(s.contains("r1"));
        assert!(s.contains("7"));
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B8.bytes(), 8);
        assert_eq!(MemWidth::default(), MemWidth::B8);
    }
}
