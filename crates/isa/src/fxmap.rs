//! A fast, non-cryptographic hash map for hot-path lookup tables keyed by
//! small integers (trace indices, sequence numbers).
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of nanoseconds per
//! probe — measurable when a rally pass does two or three probes per rallied
//! instruction.  Simulation-internal maps are never fed attacker-controlled
//! keys, so they can use the classic multiply-xor "Fx" hash (a single rotate,
//! xor and multiply per word).  Checkpoint encodings are unaffected: the
//! serde codec writes map entries sorted by key regardless of hasher.

use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox/rustc "Fx" hash state: one `rotate ^ word * K` step per word.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth-style odd multiplicative constant used by the Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hash — drop-in for simulation-internal tables.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_values() {
        let mut m: FxHashMap<usize, u64> = FxHashMap::default();
        for k in 0..1000usize {
            m.insert(k, (k as u64) * 3);
        }
        for k in 0..1000usize {
            assert_eq!(m.get(&k), Some(&((k as u64) * 3)));
        }
        assert_eq!(m.get(&1000), None);
    }

    #[test]
    fn hash_is_deterministic_and_spreads_small_keys() {
        let h = |v: usize| {
            let mut s = FxHasher::default();
            s.write_usize(v);
            s.finish()
        };
        assert_eq!(h(42), h(42));
        // Consecutive keys must not collapse to consecutive hashes.
        let d1 = h(1) ^ h(2);
        let d2 = h(2) ^ h(3);
        assert_ne!(d1, 0);
        assert_ne!(d1, d2);
    }

    #[test]
    fn byte_stream_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        b.write(&[9]);
        // Same total bytes, different chunking: values may differ, but both
        // must be stable across calls.
        assert_eq!(a.finish(), a.finish());
        assert_eq!(b.finish(), b.finish());
    }

    #[test]
    fn serde_encoding_is_hasher_independent() {
        let mut fx: FxHashMap<u32, u32> = FxHashMap::default();
        let mut std_map: std::collections::HashMap<u32, u32> = Default::default();
        for k in 0..64u32 {
            fx.insert(k * 7, k);
            std_map.insert(k * 7, k);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        serde::Serialize::serialize(&fx, &mut a);
        serde::Serialize::serialize(&std_map, &mut b);
        assert_eq!(a, b, "map encoding must not depend on the hasher");
    }
}
