//! The workspace's one FNV-1a 64 implementation.
//!
//! Several subsystems digest deterministic figures — final architectural
//! state (`RunResult::state_digest`), sweep reports, trace identities,
//! checkpoint containers.  They must all hash identically forever (digests
//! are persisted in `BENCH_baseline.json` and `icfp-ckpt/v1` files), so the
//! primitive lives here, in the crate every other crate already depends on,
//! instead of being re-implemented per subsystem where one typo could
//! silently fork a digest domain.

/// Incremental FNV-1a 64 hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a variable-length field as its `u64` length followed by its
    /// bytes.  Composite keys built from several variable-length inputs (the
    /// sweep result cache digests model name, normalized configuration
    /// bytes, trace digest and instruction budget into one cell key) must use
    /// this instead of [`Fnv1a::write`], which would let `("ab", "c")` and
    /// `("a", "bc")` collide onto one digest.
    pub fn write_field(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write(bytes);
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
        let mut h = Fnv1a::new();
        h.write_u64(0x1122334455667788);
        assert_eq!(h.finish(), fnv1a(&0x1122334455667788u64.to_le_bytes()));
    }

    #[test]
    fn length_prefixed_fields_do_not_collide_across_boundaries() {
        let key = |fields: &[&[u8]]| {
            let mut h = Fnv1a::new();
            for f in fields {
                h.write_field(f);
            }
            h.finish()
        };
        // Same concatenated bytes, different field boundaries.
        assert_ne!(key(&[b"ab", b"c"]), key(&[b"a", b"bc"]));
        assert_ne!(key(&[b"abc"]), key(&[b"abc", b""]));
        assert_ne!(key(&[b"", b"abc"]), key(&[b"abc"]));
        // Equal field sequences agree.
        assert_eq!(key(&[b"ab", b"c"]), key(&[b"ab", b"c"]));
        // write_field is write_u64(len) + write(bytes).
        let mut h = Fnv1a::new();
        h.write_field(b"xy");
        let mut g = Fnv1a::new();
        g.write_u64(2);
        g.write(b"xy");
        assert_eq!(h.finish(), g.finish());
    }
}
