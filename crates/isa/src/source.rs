//! Block-based trace sources and the cursor the timing models read through.
//!
//! PR 2–4 assumed a fully materialized in-memory [`Trace`] arena, which bounds
//! simulated trace length by host RAM.  [`TraceSource`] is the abstraction
//! that lifts that: a trace is a *named, digested sequence of fixed-size
//! instruction blocks* that a consumer fetches one block at a time.  Three
//! implementations exist:
//!
//! * [`ArenaSource`] (here) — adapts today's in-memory [`Trace`]; the cursor
//!   takes a zero-cost slice fast path through it, so arena-backed runs are
//!   bit-identical *and* pay no per-instruction indirection;
//! * `TraceFile` (`icfp_isa::trace_file`) — the on-disk `icfp-trace/v1`
//!   container, decoded lazily block by block with next-block prefetch;
//! * `WorkloadSource` (`icfp-workloads`) — synthetic generators replayed as
//!   resumable block producers, so a 100M-instruction pointer-chase never
//!   fully materializes.
//!
//! [`TraceCursor`] is the uniform read surface the core models use: it caches
//! the current block so sequential access costs one range check per
//! instruction, while random access (rally replay, runahead restarts) faults
//! the owning block in through the source's bounded cache.  Resident-block
//! accounting ([`Residency`]) lets tests assert that streaming a trace keeps
//! peak trace memory bounded by a constant number of blocks.

use crate::trace::Trace;
use crate::{DynInst, Fnv1a};
use serde::Serialize;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of instructions per block (the `icfp-trace/v1` writer's
/// default, and the block granularity [`ArenaSource`] reports).  4096 insts
/// ≈ 300–400 KiB decoded: big enough to amortize decode, small enough that a
/// handful of resident blocks stay far under any real trace's footprint.
pub const DEFAULT_BLOCK_INSTS: usize = 4096;

/// Digest of one block's content: FNV-1a over each instruction's serialized
/// bytes, in order.  Every [`TraceSource`] implementation must use this exact
/// definition so block digests agree across arena, generator and file
/// backings (checkpoint resume validates the resume block against it).
pub fn block_digest_of(insts: &[DynInst]) -> u64 {
    let mut h = Fnv1a::new();
    let mut buf = Vec::with_capacity(64);
    for inst in insts {
        buf.clear();
        Serialize::serialize(inst, &mut buf);
        h.write(&buf);
    }
    h.finish()
}

/// Errors from block-based trace access (shared by every [`TraceSource`]
/// implementation; the file backing adds I/O and container malformations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSourceError {
    /// A block index past [`TraceSource::block_count`].
    BlockOutOfRange {
        /// The requested block.
        index: usize,
        /// Number of blocks the source holds.
        count: usize,
    },
    /// Filesystem error while reading trace data.
    Io(String),
    /// The container does not start with a known `icfp-trace` magic (wrong
    /// file or a future format version).
    BadMagic,
    /// The container is shorter than its header/index promises.
    Truncated,
    /// A structural field is inconsistent (overlapping blocks, counts that
    /// do not sum, lengths past the end of the file, ...).
    Corrupt(String),
    /// A block decoded but its content digest does not match the index.
    BlockDigestMismatch {
        /// The block in question.
        index: usize,
        /// Digest recorded in the container index.
        expected: u64,
        /// Digest of the bytes actually present.
        found: u64,
    },
}

impl fmt::Display for TraceSourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceSourceError::BlockOutOfRange { index, count } => {
                write!(f, "block {index} out of range (source has {count} blocks)")
            }
            TraceSourceError::Io(e) => write!(f, "trace i/o: {e}"),
            TraceSourceError::BadMagic => {
                write!(f, "not an icfp-trace/v1 or /v2 container (bad magic)")
            }
            TraceSourceError::Truncated => write!(f, "trace container is truncated"),
            TraceSourceError::Corrupt(e) => write!(f, "trace container is corrupt: {e}"),
            TraceSourceError::BlockDigestMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "block {index} digest mismatch (recorded {expected:#018x}, found {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for TraceSourceError {}

/// Resident-block accounting for a streaming source: how many decoded blocks
/// are alive right now, and the peak ever alive.  This is what bounds — and
/// lets tests *assert* the bound on — peak trace memory while streaming.
#[derive(Debug, Default)]
pub struct Residency {
    live: AtomicUsize,
    peak: AtomicUsize,
    live_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
}

impl Residency {
    /// Decoded blocks currently alive.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Peak simultaneously-alive decoded blocks.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Decoded instruction bytes currently alive (live blocks × their
    /// in-memory [`DynInst`] size — the actual decoded footprint, not the
    /// on-disk encoded size).
    pub fn live_bytes(&self) -> usize {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously-alive decoded instruction bytes —
    /// the number to quote for "peak trace memory while streaming".
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    fn note_alloc(self: &Arc<Self>, bytes: usize) -> ResidencyGuard {
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(live, Ordering::Relaxed);
        let live_bytes = self.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes.fetch_max(live_bytes, Ordering::Relaxed);
        ResidencyGuard {
            counter: Arc::clone(self),
            bytes,
        }
    }
}

/// Drop guard held by each decoded [`TraceBlock`]; decrements the live
/// counts when the block is finally dropped (evicted from every cache and
/// released by every cursor).
#[derive(Debug)]
struct ResidencyGuard {
    counter: Arc<Residency>,
    bytes: usize,
}

impl Drop for ResidencyGuard {
    fn drop(&mut self) {
        self.counter.live.fetch_sub(1, Ordering::Relaxed);
        self.counter.live_bytes.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// One decoded block of a trace: a contiguous run of [`DynInst`]s starting at
/// dynamic position `first`.
#[derive(Debug)]
pub struct TraceBlock {
    /// Dynamic index (sequence number) of the block's first instruction.
    pub first: usize,
    insts: Vec<DynInst>,
    /// Keeps the owning source's residency accounting honest; `None` for
    /// blocks of sources that do not stream (no accounting needed).
    _guard: Option<ResidencyGuard>,
}

impl TraceBlock {
    /// A block with residency accounting attached: the counter's live count
    /// rises now and falls when the block is dropped.  Streaming sources
    /// (the file reader, generator sources) construct their blocks this way
    /// so tests can assert the peak resident footprint.
    pub fn counted(first: usize, insts: Vec<DynInst>, residency: &Arc<Residency>) -> Self {
        let bytes = insts.len() * std::mem::size_of::<DynInst>();
        TraceBlock {
            first,
            insts,
            _guard: Some(residency.note_alloc(bytes)),
        }
    }

    /// A block without residency accounting (transient arena copies).
    pub fn uncounted(first: usize, insts: Vec<DynInst>) -> Self {
        TraceBlock {
            first,
            insts,
            _guard: None,
        }
    }

    /// The block's instructions.
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// One-past-the-end dynamic index of the block.
    pub fn end(&self) -> usize {
        self.first + self.insts.len()
    }
}

/// A finite dynamic instruction stream exposed as fixed-size blocks.
///
/// Identity is (name, length, [`TraceSource::digest`]); content is fetched
/// one [`TraceBlock`] at a time.  All blocks hold exactly
/// [`TraceSource::block_size`] instructions except the last, which holds the
/// remainder.  Implementations must be cheap to share across threads
/// (`Send + Sync`): the sweep executor hands one `Arc<dyn TraceSource>` per
/// workload column to its whole pool.
pub trait TraceSource: Send + Sync {
    /// The trace's human-readable name (workload / scenario identifier).
    fn name(&self) -> &str;

    /// Total dynamic instructions.
    fn len(&self) -> usize;

    /// True if the trace holds no instructions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whole-trace content digest, identical to [`Trace::digest`] of the
    /// materialized trace: FNV-1a over the name, every instruction's
    /// serialized bytes, then the length.  Checkpoints and sweep columns use
    /// it as the trace's identity.
    fn digest(&self) -> u64;

    /// Instructions per block (the last block may be shorter).  Must be
    /// non-zero for non-empty sources.
    fn block_size(&self) -> usize;

    /// Number of blocks (`len / block_size`, rounded up).
    fn block_count(&self) -> usize {
        let bs = self.block_size().max(1);
        self.len().div_ceil(bs)
    }

    /// The block holding dynamic position `idx`.
    fn block_of(&self, idx: usize) -> usize {
        idx / self.block_size().max(1)
    }

    /// Fetches (decoding if necessary) block `index`.
    ///
    /// Streaming implementations serve this from a bounded cache and may
    /// prefetch the following block; either way repeated sequential fetches
    /// decode each block at most once.
    ///
    /// # Errors
    ///
    /// Out-of-range indices, I/O failures and content corruption.
    fn block(&self, index: usize) -> Result<Arc<TraceBlock>, TraceSourceError>;

    /// Digest of block `index`'s content, per [`block_digest_of`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TraceSource::block`].
    fn block_digest(&self, index: usize) -> Result<u64, TraceSourceError>;

    /// The whole trace as one in-memory arena, if this source has one.
    /// Cursors use it to bypass block bookkeeping entirely (the zero-cost
    /// fast path that keeps arena-backed runs exactly as fast as before).
    fn as_arena(&self) -> Option<&Trace> {
        None
    }

    /// Resident-block accounting, if this source streams (decodes blocks on
    /// demand).  Arena sources return `None`: their trace is wholly resident
    /// by construction and block accounting would be meaningless.
    fn residency(&self) -> Option<&Residency> {
        None
    }
}

/// Bounded most-recently-used cache of decoded blocks — the one cache
/// implementation every streaming source shares (the `icfp-trace/v1` reader,
/// generator-backed sources).  Its capacity *is* the "peak trace memory is a
/// constant number of blocks" guarantee, together with whatever single block
/// each cursor pins.
#[derive(Debug)]
pub struct BlockCache {
    cap: usize,
    /// Front = most recently used.
    entries: Mutex<VecDeque<(usize, Arc<TraceBlock>)>>,
}

impl BlockCache {
    /// A cache holding at most `cap` decoded blocks.
    pub fn new(cap: usize) -> Self {
        BlockCache {
            cap: cap.max(1),
            entries: Mutex::new(VecDeque::with_capacity(cap.max(1))),
        }
    }

    /// Returns block `index`, promoting it to most-recent; on a miss, `fill`
    /// produces it and the least-recently-used entry past capacity is
    /// evicted.  `fill` runs under the cache lock, so concurrent consumers
    /// decode each block at most once.
    ///
    /// # Errors
    ///
    /// Whatever `fill` fails with.
    pub fn get_or_insert(
        &self,
        index: usize,
        fill: impl FnOnce() -> Result<Arc<TraceBlock>, TraceSourceError>,
    ) -> Result<Arc<TraceBlock>, TraceSourceError> {
        let mut entries = self.entries.lock().expect("block cache lock");
        if let Some(pos) = entries.iter().position(|(k, _)| *k == index) {
            let entry = entries.remove(pos).expect("position just found");
            entries.push_front(entry.clone());
            return Ok(entry.1);
        }
        let block = fill()?;
        entries.push_front((index, Arc::clone(&block)));
        while entries.len() > self.cap {
            entries.pop_back();
        }
        Ok(block)
    }
}

/// [`TraceSource`] adapter over an in-memory [`Trace`] arena: blocks are
/// views of the decoded instruction vector, so nothing is ever re-decoded
/// and the cursor fast path reads the arena directly.
#[derive(Debug, Clone)]
pub struct ArenaSource {
    trace: Arc<Trace>,
    block_size: usize,
}

impl ArenaSource {
    /// Wraps a trace, reporting [`DEFAULT_BLOCK_INSTS`]-instruction blocks.
    pub fn new(trace: impl Into<Arc<Trace>>) -> Self {
        ArenaSource {
            trace: trace.into(),
            block_size: DEFAULT_BLOCK_INSTS,
        }
    }

    /// Wraps a trace with an explicit block size (tests use tiny blocks to
    /// exercise many boundaries on small traces).
    pub fn with_block_size(trace: impl Into<Arc<Trace>>, block_size: usize) -> Self {
        ArenaSource {
            trace: trace.into(),
            block_size: block_size.max(1),
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Arc<Trace> {
        &self.trace
    }

    fn block_slice(&self, index: usize) -> Result<&[DynInst], TraceSourceError> {
        let count = self.block_count();
        if index >= count {
            return Err(TraceSourceError::BlockOutOfRange { index, count });
        }
        let first = index * self.block_size;
        let end = (first + self.block_size).min(self.trace.len());
        Ok(&self.trace.as_slice()[first..end])
    }
}

impl TraceSource for ArenaSource {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn len(&self) -> usize {
        self.trace.len()
    }

    fn digest(&self) -> u64 {
        self.trace.digest()
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn block(&self, index: usize) -> Result<Arc<TraceBlock>, TraceSourceError> {
        // Transient copy; callers on the arena path never reach here (the
        // cursor reads the arena directly), so this only serves uniform
        // consumers like the trace-file writer.
        let insts = self.block_slice(index)?.to_vec();
        Ok(Arc::new(TraceBlock::uncounted(
            index * self.block_size,
            insts,
        )))
    }

    fn block_digest(&self, index: usize) -> Result<u64, TraceSourceError> {
        Ok(block_digest_of(self.block_slice(index)?))
    }

    fn as_arena(&self) -> Option<&Trace> {
        Some(&self.trace)
    }
}

// Note: a `From<Arc<Trace>> for Arc<dyn TraceSource>` impl would violate the
// orphan rules (both sides are `Arc<_>`, and `Arc` is not a fundamental
// type); callers holding an `Arc<Trace>` wrap it explicitly —
// `ArenaSource::new(arc)` — which is also clearer about the block geometry.
impl From<Trace> for Arc<dyn TraceSource> {
    fn from(trace: Trace) -> Self {
        Arc::new(ArenaSource::new(trace))
    }
}

impl From<ArenaSource> for Arc<dyn TraceSource> {
    fn from(src: ArenaSource) -> Self {
        Arc::new(src)
    }
}

/// Streamed-side cursor state: the one block the cursor currently holds.
#[derive(Debug, Default)]
struct CursorState {
    block: Option<Arc<TraceBlock>>,
}

/// The uniform read surface the timing models consume a trace through.
///
/// Two paths:
///
/// * **arena** — the source exposes a whole in-memory [`Trace`]
///   ([`TraceSource::as_arena`], or the cursor was built
///   [`TraceCursor::from_trace`]): [`TraceCursor::get`] is a direct slice
///   index, exactly what the models did before streaming existed;
/// * **streamed** — the cursor pins the block containing the last access and
///   re-fetches through the source (bounded cache + prefetch) only on block
///   boundaries, so sequential access costs one range check per instruction
///   and random access (rally replay at older trace indices) faults the
///   owning block in on demand.
///
/// Instructions are returned *by value* ([`DynInst`] is `Copy`): a fetched
/// instruction stays valid while the caller mutates its own state or fetches
/// further instructions, which is what the core models' control flow needs.
///
/// The cursor is deliberately cheap to construct: drivers that interleave
/// batched stepping build one per call and rely on the source's cache for
/// cross-call reuse.
pub struct TraceCursor<'a> {
    source: Option<&'a dyn TraceSource>,
    /// Arena fast path (from the source, or a borrowed trace).
    arena: Option<&'a Trace>,
    state: RefCell<CursorState>,
}

impl<'a> TraceCursor<'a> {
    /// A cursor over a block-based source (taking the arena fast path if the
    /// source exposes one).
    pub fn new(source: &'a dyn TraceSource) -> Self {
        TraceCursor {
            arena: source.as_arena(),
            source: Some(source),
            state: RefCell::new(CursorState::default()),
        }
    }

    /// A cursor borrowing an in-memory trace directly (no source involved);
    /// the compatibility path for `Core::run(&Trace)` and the test suites.
    pub fn from_trace(trace: &'a Trace) -> Self {
        TraceCursor {
            source: None,
            arena: Some(trace),
            state: RefCell::new(CursorState::default()),
        }
    }

    /// The trace's name.
    pub fn name(&self) -> &'a str {
        match (self.arena, self.source) {
            (Some(t), _) => t.name(),
            (None, Some(s)) => s.name(),
            (None, None) => unreachable!("cursor always has a backing"),
        }
    }

    /// Total dynamic instructions.
    pub fn len(&self) -> usize {
        match (self.arena, self.source) {
            (Some(t), _) => t.len(),
            (None, Some(s)) => s.len(),
            (None, None) => unreachable!("cursor always has a backing"),
        }
    }

    /// True if the trace holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The instruction at dynamic position `idx`, by value.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (mirroring slice indexing), or — for
    /// streamed sources — if the backing store fails mid-run (e.g. the trace
    /// file was truncated underneath the simulation after `open` validated
    /// it).  Validation-facing consumers use [`TraceSource::block`]
    /// directly, which returns errors instead.
    #[inline]
    pub fn get(&self, idx: usize) -> DynInst {
        if let Some(t) = self.arena {
            return t.as_slice()[idx];
        }
        self.get_streamed(idx)
    }

    #[cold]
    fn fault_block(&self, idx: usize) -> Arc<TraceBlock> {
        let source = self.source.expect("streamed cursor has a source");
        let block_idx = source.block_of(idx);
        match source.block(block_idx) {
            Ok(b) => b,
            Err(e) => panic!(
                "trace source {:?} failed mid-run fetching block {block_idx}: {e}",
                source.name()
            ),
        }
    }

    fn get_streamed(&self, idx: usize) -> DynInst {
        let mut state = self.state.borrow_mut();
        if let Some(b) = &state.block {
            if idx >= b.first && idx < b.end() {
                return b.insts()[idx - b.first];
            }
        }
        let b = self.fault_block(idx);
        let inst = b.insts()[idx - b.first];
        state.block = Some(b);
        inst
    }

    /// The whole trace as one contiguous slice, if this cursor reads an
    /// in-memory arena.  Batched drivers use it to hand an engine the entire
    /// remaining trace as a single [`icfp_isa::DynInst`] slice; streamed
    /// cursors return `None` and serve [`TraceCursor::pin_block`] instead.
    pub fn arena_slice(&self) -> Option<&'a [DynInst]> {
        self.arena.map(|t| t.as_slice())
    }

    /// Fetches (and pins as the cursor's current block) the block containing
    /// dynamic position `idx`, returning a shared handle the caller may hold
    /// across further cursor use — batched drivers slice it and feed the
    /// engine block-sized instruction runs without per-instruction cursor
    /// dispatch.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range positions or mid-run source failures, exactly
    /// like [`TraceCursor::get`].
    pub fn pin_block(&self, idx: usize) -> Arc<TraceBlock> {
        let mut state = self.state.borrow_mut();
        if let Some(b) = &state.block {
            if idx >= b.first && idx < b.end() {
                return Arc::clone(b);
            }
        }
        let b = self.fault_block(idx);
        state.block = Some(Arc::clone(&b));
        b
    }

    /// Calls `f` once per block-sized instruction run covering positions
    /// `[start, len)`, in order: `f(first, insts)` receives the dynamic index
    /// of `insts[0]`.  Returns early (propagating `false`) if `f` does.
    ///
    /// Arena-backed cursors make a single call with the whole remaining
    /// slice; streamed cursors walk the source's blocks, so the per-
    /// instruction cost inside `f` is a plain slice iteration either way.
    ///
    /// # Panics
    ///
    /// Same conditions as [`TraceCursor::get`].
    pub fn for_each_block_from(
        &self,
        start: usize,
        mut f: impl FnMut(usize, &[DynInst]) -> bool,
    ) -> bool {
        let len = self.len();
        if start >= len {
            return true;
        }
        if let Some(s) = self.arena_slice() {
            return f(start, &s[start..]);
        }
        let mut at = start;
        while at < len {
            let b = self.pin_block(at);
            if !f(at, &b.insts()[at - b.first..]) {
                return false;
            }
            at = b.end();
        }
        true
    }
}

impl fmt::Debug for TraceCursor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCursor")
            .field("name", &self.name())
            .field("len", &self.len())
            .field("arena", &self.arena.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Reg, TraceBuilder};

    fn trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("src-test");
        for k in 0..n {
            b.push(DynInst::alu_imm(Op::Add, Reg::int(1), Reg::int(2), k));
        }
        b.build()
    }

    #[test]
    fn arena_source_reports_blocks_and_digest() {
        let t = trace(10);
        let digest = t.digest();
        let s = ArenaSource::with_block_size(t, 4);
        assert_eq!(s.len(), 10);
        assert_eq!(s.block_count(), 3);
        assert_eq!(s.digest(), digest);
        assert_eq!(s.block(0).unwrap().len(), 4);
        assert_eq!(s.block(2).unwrap().len(), 2);
        assert_eq!(s.block(2).unwrap().first, 8);
        assert!(matches!(
            s.block(3),
            Err(TraceSourceError::BlockOutOfRange { index: 3, count: 3 })
        ));
        // Block digests agree with hashing the slice directly.
        let d = block_digest_of(&s.trace().as_slice()[0..4]);
        assert_eq!(s.block_digest(0).unwrap(), d);
    }

    #[test]
    fn cursor_reads_identically_through_arena_and_blocks() {
        let t = trace(23);
        let want: Vec<DynInst> = t.iter().copied().collect();
        let arena = ArenaSource::with_block_size(t.clone(), 5);

        let cur = TraceCursor::new(&arena);
        assert_eq!(cur.len(), 23);
        assert_eq!(cur.name(), "src-test");
        for (k, w) in want.iter().enumerate() {
            assert_eq!(&cur.get(k), w);
        }

        let borrowed = TraceCursor::from_trace(&t);
        for (k, w) in want.iter().enumerate() {
            assert_eq!(&borrowed.get(k), w);
        }
    }

    #[test]
    fn block_of_and_counts_round() {
        let t = trace(8);
        let s = ArenaSource::with_block_size(t, 8);
        assert_eq!(s.block_count(), 1);
        assert_eq!(s.block_of(7), 0);
        let empty = ArenaSource::new(Trace::default());
        assert_eq!(empty.block_count(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn residency_counts_allocations_and_peaks() {
        let inst_size = std::mem::size_of::<DynInst>();
        let r = Arc::new(Residency::default());
        let b1 = TraceBlock::counted(0, vec![], &r);
        assert_eq!(r.live(), 1);
        assert_eq!(r.live_bytes(), 0, "an empty block holds no decoded bytes");
        let b2 = TraceBlock::counted(4, vec![DynInst::nop()], &r);
        assert_eq!(r.live(), 2);
        assert_eq!(r.peak(), 2);
        assert_eq!(r.live_bytes(), inst_size);
        let b3 = TraceBlock::counted(5, vec![DynInst::nop(); 3], &r);
        assert_eq!(r.live(), 3);
        assert_eq!(r.live_bytes(), 4 * inst_size);
        assert_eq!(r.peak_bytes(), 4 * inst_size);
        drop(b3);
        assert_eq!(r.live_bytes(), inst_size, "bytes fall with their block");
        drop(b1);
        assert_eq!(r.live(), 1);
        drop(b2);
        assert_eq!(r.live(), 0);
        assert_eq!(r.live_bytes(), 0);
        assert_eq!(r.peak(), 3, "peak is sticky");
        assert_eq!(r.peak_bytes(), 4 * inst_size, "byte peak is sticky");
    }

    #[test]
    fn conversions_into_dyn_source() {
        let t = trace(6);
        let digest = t.digest();
        let from_owned: Arc<dyn TraceSource> = t.clone().into();
        let from_arc: Arc<dyn TraceSource> = ArenaSource::new(Arc::new(t)).into();
        assert_eq!(from_owned.digest(), digest);
        assert_eq!(from_arc.digest(), digest);
        assert_eq!(from_owned.block_size(), DEFAULT_BLOCK_INSTS);
    }
}
