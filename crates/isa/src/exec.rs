//! Functional (architectural) execution of SimISA.
//!
//! The timing models in `icfp-core` are validated against this golden model:
//! running the same trace through the golden model and through any of the
//! pipeline models must yield the same final register file and memory image.
//! This is the main correctness check for iCFP's slice/rally merge logic and
//! for the chained store buffer's forwarding behaviour.

use crate::fxmap::FxHashMap;
use crate::{Addr, DynInst, Op, Reg, Value, NUM_ARCH_REGS};
use serde::{Deserialize, Serialize};

/// Sparse functional memory image.
///
/// Addresses are stored at 8-byte granularity (the maximum SimISA access
/// width); narrower accesses read/write the containing 8-byte word.  Untouched
/// locations read as a deterministic hash of their address so that loads from
/// never-written locations still produce reproducible values.  The map uses
/// the Fx hash ([`crate::fxmap`]): every executed load and store probes it,
/// so hashing cost is on the functional fast-forward critical path.
/// Encodings and digests are hasher-independent (serde writes map entries
/// sorted by key).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalMemory {
    words: FxHashMap<Addr, Value>,
}

/// Deterministic "background" value of an untouched memory word.
///
/// A cheap 64-bit mix (xorshift-multiply) of the word address.
pub fn background_value(addr: Addr) -> Value {
    let mut x = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

impl FunctionalMemory {
    /// Creates an empty functional memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn word_addr(addr: Addr) -> Addr {
        addr & !7
    }

    /// Reads the 8-byte word containing `addr`.
    pub fn read(&self, addr: Addr) -> Value {
        let wa = Self::word_addr(addr);
        self.words
            .get(&wa)
            .copied()
            .unwrap_or_else(|| background_value(wa))
    }

    /// Writes the 8-byte word containing `addr`.
    pub fn write(&mut self, addr: Addr, value: Value) {
        self.words.insert(Self::word_addr(addr), value);
    }

    /// Number of words that have been written.
    pub fn written_words(&self) -> usize {
        self.words.len()
    }

    /// Iterates over all written (address, value) pairs, unordered.
    pub fn iter(&self) -> impl Iterator<Item = (&Addr, &Value)> {
        self.words.iter()
    }
}

/// Architectural state: register file plus functional memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchState {
    regs: Vec<Value>,
    /// The functional memory image.
    pub mem: FunctionalMemory,
    /// Number of instructions executed.
    pub instructions: u64,
}

impl Default for ArchState {
    fn default() -> Self {
        Self::new()
    }
}

impl ArchState {
    /// Creates a fresh architectural state with all registers holding a
    /// deterministic per-register initial value.
    pub fn new() -> Self {
        ArchState {
            regs: (0..NUM_ARCH_REGS as u64)
                .map(|i| background_value(i.wrapping_mul(0x1001)))
                .collect(),
            mem: FunctionalMemory::new(),
            instructions: 0,
        }
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> Value {
        self.regs[r.index()]
    }

    /// Writes an architectural register.
    pub fn set_reg(&mut self, r: Reg, v: Value) {
        self.regs[r.index()] = v;
    }

    /// A snapshot of all register values, indexed by flat register index.
    pub fn reg_snapshot(&self) -> Vec<Value> {
        self.regs.clone()
    }

    /// Executes a single instruction architecturally, updating registers and
    /// memory.  Returns the value written to the destination register, if any.
    ///
    /// Branch direction is taken from the trace record (trace-driven); the
    /// condition register is still read so that dependences are honoured.
    pub fn exec(&mut self, inst: &DynInst) -> Option<Value> {
        self.instructions += 1;
        let s1 = inst.src1.map(|r| self.reg(r)).unwrap_or(0);
        let s2 = inst.src2.map(|r| self.reg(r)).unwrap_or(0);
        let result = compute(inst, s1, s2, |addr| self.mem.read(addr));
        if inst.op == Op::Store {
            let addr = inst.addr.expect("store without effective address");
            let data = inst.store_data_reg().map(|r| self.reg(r)).unwrap_or(0);
            self.mem.write(addr, data);
        }
        if let (Some(dst), Some(v)) = (inst.dst, result) {
            self.set_reg(dst, v);
        }
        result
    }

    /// Executes an entire instruction sequence.
    pub fn exec_all<'a, I: IntoIterator<Item = &'a DynInst>>(&mut self, insts: I) {
        for i in insts {
            self.exec(i);
        }
    }
}

/// Pure computation of an instruction's result given its source values.
///
/// `load` supplies the memory read used by `Op::Load`; timing models pass in
/// whatever their memory system (store-buffer forwarding or cache) produced so
/// that the same semantics are shared between golden and timing execution.
pub fn compute<F: FnOnce(Addr) -> Value>(
    inst: &DynInst,
    s1: Value,
    s2: Value,
    load: F,
) -> Option<Value> {
    let imm = inst.imm;
    match inst.op {
        Op::Add => Some(s1.wrapping_add(s2).wrapping_add(imm)),
        Op::Sub => Some(s1.wrapping_sub(s2).wrapping_sub(imm)),
        Op::And => Some(s1 & (s2 ^ imm)),
        Op::Or => Some(s1 | s2 | imm),
        Op::Xor => Some(s1 ^ s2 ^ imm),
        Op::Shl => Some(s1.wrapping_shl((imm & 63) as u32)),
        Op::Shr => Some(s1.wrapping_shr((imm & 63) as u32)),
        Op::CmpLt => Some(u64::from(s1 < s2)),
        Op::Mul | Op::FpMul => Some(s1.wrapping_mul(s2).wrapping_add(imm)),
        Op::FpAdd => Some(s1.wrapping_add(s2).rotate_left(1)),
        Op::Load => Some(load(inst.addr.expect("load without effective address"))),
        Op::Store | Op::Branch | Op::Jump | Op::Nop => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynInst;

    #[test]
    fn background_values_are_deterministic_and_distinct() {
        assert_eq!(background_value(0x40), background_value(0x40));
        assert_ne!(background_value(0x40), background_value(0x48));
    }

    #[test]
    fn memory_reads_word_aligned() {
        let mut m = FunctionalMemory::new();
        m.write(0x104, 77);
        // 0x104 and 0x100 share an 8-byte word.
        assert_eq!(m.read(0x100), 77);
        assert_eq!(m.read(0x107), 77);
        assert_eq!(m.written_words(), 1);
    }

    #[test]
    fn untouched_memory_reads_background() {
        let m = FunctionalMemory::new();
        assert_eq!(m.read(0x2000), background_value(0x2000));
    }

    #[test]
    fn alu_exec_updates_register() {
        let mut st = ArchState::new();
        st.set_reg(Reg::int(1), 10);
        st.set_reg(Reg::int(2), 32);
        st.exec(&DynInst::alu(Op::Add, Reg::int(3), Reg::int(1), Reg::int(2)));
        assert_eq!(st.reg(Reg::int(3)), 42);
        assert_eq!(st.instructions, 1);
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut st = ArchState::new();
        st.set_reg(Reg::int(1), 0xdead_beef);
        st.exec(&DynInst::store(Reg::int(1), Reg::int(2), 0x800));
        st.exec(&DynInst::load(Reg::int(3), Reg::int(2), 0x800));
        assert_eq!(st.reg(Reg::int(3)), 0xdead_beef);
    }

    #[test]
    fn branch_has_no_destination_effect() {
        let mut st = ArchState::new();
        let before = st.reg_snapshot();
        st.exec(&DynInst::branch(Reg::int(4), true, 0x40, 1.0));
        assert_eq!(st.reg_snapshot(), before);
    }

    #[test]
    fn compute_is_pure_and_matches_exec() {
        let mut st = ArchState::new();
        st.set_reg(Reg::int(1), 6);
        st.set_reg(Reg::int(2), 7);
        let i = DynInst::alu(Op::Mul, Reg::int(3), Reg::int(1), Reg::int(2));
        let v = compute(&i, 6, 7, |_| 0).unwrap();
        st.exec(&i);
        assert_eq!(st.reg(Reg::int(3)), v);
        assert_eq!(v, 42);
    }
}
