//! Architectural register names.
//!
//! SimISA has 32 integer registers (`r0`–`r31`) and 32 floating-point
//! registers (`f0`–`f31`), mirroring the Alpha AXP register layout the paper
//! targets.  `r31` is *not* hard-wired to zero here — the synthetic workloads
//! never rely on a zero register, and keeping all registers writable makes the
//! dependence-tracking code paths uniform.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 32;
/// Total number of architectural registers (integer + floating point).
pub const NUM_ARCH_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// The class of an architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer register file (`r0`–`r31`).
    Int,
    /// Floating-point register file (`f0`–`f31`).
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register name.
///
/// Internally a flat index in `0..NUM_ARCH_REGS`: integer registers occupy
/// `0..32`, floating-point registers occupy `32..64`.  The flat index is what
/// the register-file structures in `icfp-pipeline` are indexed by.
///
/// ```
/// use icfp_isa::{Reg, RegClass};
/// let r5 = Reg::int(5);
/// assert_eq!(r5.class(), RegClass::Int);
/// assert_eq!(r5.index(), 5);
/// let f2 = Reg::fp(2);
/// assert_eq!(f2.class(), RegClass::Fp);
/// assert_eq!(f2.index(), 34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Creates an integer register `r<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= NUM_INT_REGS`.
    pub fn int(n: usize) -> Self {
        assert!(n < NUM_INT_REGS, "integer register index {n} out of range");
        Reg(n as u8)
    }

    /// Creates a floating-point register `f<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= NUM_FP_REGS`.
    pub fn fp(n: usize) -> Self {
        assert!(n < NUM_FP_REGS, "fp register index {n} out of range");
        Reg((NUM_INT_REGS + n) as u8)
    }

    /// Creates a register from its flat index in `0..NUM_ARCH_REGS`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_ARCH_REGS`.
    pub fn from_index(idx: usize) -> Self {
        assert!(idx < NUM_ARCH_REGS, "register index {idx} out of range");
        Reg(idx as u8)
    }

    /// The flat index of this register in `0..NUM_ARCH_REGS`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The register class (integer or floating point).
    pub fn class(self) -> RegClass {
        if (self.0 as usize) < NUM_INT_REGS {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// The register number *within its class* (e.g. the `5` of `f5`).
    pub fn number(self) -> usize {
        match self.class() {
            RegClass::Int => self.index(),
            RegClass::Fp => self.index() - NUM_INT_REGS,
        }
    }

    /// Iterator over every architectural register.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_ARCH_REGS).map(Reg::from_index)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.number()),
            RegClass::Fp => write!(f, "f{}", self.number()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_indices_do_not_collide() {
        let ints: Vec<usize> = (0..NUM_INT_REGS).map(|n| Reg::int(n).index()).collect();
        let fps: Vec<usize> = (0..NUM_FP_REGS).map(|n| Reg::fp(n).index()).collect();
        for i in &ints {
            assert!(!fps.contains(i), "index {i} is both int and fp");
        }
    }

    #[test]
    fn round_trip_through_flat_index() {
        for r in Reg::all() {
            assert_eq!(Reg::from_index(r.index()), r);
        }
    }

    #[test]
    fn class_and_number() {
        assert_eq!(Reg::int(7).class(), RegClass::Int);
        assert_eq!(Reg::int(7).number(), 7);
        assert_eq!(Reg::fp(7).class(), RegClass::Fp);
        assert_eq!(Reg::fp(7).number(), 7);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::int(3).to_string(), "r3");
        assert_eq!(Reg::fp(12).to_string(), "f12");
        assert_eq!(RegClass::Int.to_string(), "int");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_out_of_range_panics() {
        let _ = Reg::int(NUM_INT_REGS);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_out_of_range_panics() {
        let _ = Reg::from_index(NUM_ARCH_REGS);
    }

    #[test]
    fn all_covers_every_register_once() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), NUM_ARCH_REGS);
        let mut sorted = v.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), NUM_ARCH_REGS);
    }
}
