//! The `icfp-trace/v2` per-block instruction codec: varint + delta encoding.
//!
//! Version 2 of the container keeps the v1 *file* geometry (magic, index
//! offset, index, trailing index digest — see [`crate::trace_file`]) and
//! changes only how a block's instructions are serialized.  The vendored-serde
//! encoding of v1 spends ~45 bytes per instruction, most of it on fields that
//! are either derivable (`seq` is the block's first sequence number plus the
//! record's position) or strongly correlated with the previous record (`pc`
//! and effective addresses advance by small strides).  The v2 record is:
//!
//! ```text
//! flags   1 byte   bit0 dst, bit1 src1, bit2 src2, bit3 addr, bit4 branch,
//!                  bit5 branch.taken, bits6-7 MemWidth (B1/B2/B4/B8)
//! op      1 byte   opcode ordinal
//! dst     1 byte   present iff flags bit0 (flat register index)
//! src1    1 byte   present iff flags bit1
//! src2    1 byte   present iff flags bit2
//! pc      varint   zigzag(pc - previous record's pc; first record: pc - 0)
//! imm     varint   zigzag(imm as i64)
//! addr    varint   present iff flags bit3: zigzag delta from the previous
//!                  *memory* record's address (first memory record: addr - 0)
//! target  varint   present iff flags bit4: zigzag(branch target - this pc)
//! pred    4 bytes  present iff flags bit4: predictability f32 LE
//! ```
//!
//! `seq` is never stored: the decoder reconstructs it as `first_seq + k`,
//! which matches the writer's assignment exactly (sequence numbers follow
//! push order from 0).  Deltas reset at block boundaries so every block
//! decodes independently — random access and checkpoint resume work the same
//! as v1, and [`crate::source::block_digest_of`] of the decoded instructions
//! still guards content integrity (the digest is over the *instructions*, not
//! the encoding, so it is identical across container versions).
//!
//! Decoding never panics on hostile bytes: every read is bounds-checked and
//! every ordinal is range-checked, returning a message the caller wraps into
//! a typed [`crate::source::TraceSourceError`].

use crate::inst::BranchInfo;
use crate::{DynInst, InstSeq, MemWidth, Op, Reg, NUM_ARCH_REGS};

/// Opcode ordinals: index in this table == on-disk byte.  Appending new
/// opcodes is forwards-compatible; reordering is a format break.
const OPS: [Op; 16] = [
    Op::Add,
    Op::Sub,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Shl,
    Op::Shr,
    Op::CmpLt,
    Op::Mul,
    Op::FpAdd,
    Op::FpMul,
    Op::Load,
    Op::Store,
    Op::Branch,
    Op::Jump,
    Op::Nop,
];

fn op_code(op: Op) -> u8 {
    match op {
        Op::Add => 0,
        Op::Sub => 1,
        Op::And => 2,
        Op::Or => 3,
        Op::Xor => 4,
        Op::Shl => 5,
        Op::Shr => 6,
        Op::CmpLt => 7,
        Op::Mul => 8,
        Op::FpAdd => 9,
        Op::FpMul => 10,
        Op::Load => 11,
        Op::Store => 12,
        Op::Branch => 13,
        Op::Jump => 14,
        Op::Nop => 15,
    }
}

fn width_code(w: MemWidth) -> u8 {
    match w {
        MemWidth::B1 => 0,
        MemWidth::B2 => 1,
        MemWidth::B4 => 2,
        MemWidth::B8 => 3,
    }
}

fn width_of(code: u8) -> MemWidth {
    match code & 3 {
        0 => MemWidth::B1,
        1 => MemWidth::B2,
        2 => MemWidth::B4,
        _ => MemWidth::B8,
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

const FLAG_DST: u8 = 1 << 0;
const FLAG_SRC1: u8 = 1 << 1;
const FLAG_SRC2: u8 = 1 << 2;
const FLAG_ADDR: u8 = 1 << 3;
const FLAG_BRANCH: u8 = 1 << 4;
const FLAG_TAKEN: u8 = 1 << 5;

/// Encodes a block of instructions into `out` (appending).
pub(crate) fn encode_block(insts: &[DynInst], out: &mut Vec<u8>) {
    let mut prev_pc: u64 = 0;
    let mut prev_addr: u64 = 0;
    for inst in insts {
        let mut flags = width_code(inst.width) << 6;
        flags |= FLAG_DST * u8::from(inst.dst.is_some());
        flags |= FLAG_SRC1 * u8::from(inst.src1.is_some());
        flags |= FLAG_SRC2 * u8::from(inst.src2.is_some());
        flags |= FLAG_ADDR * u8::from(inst.addr.is_some());
        if let Some(b) = inst.branch {
            flags |= FLAG_BRANCH | (FLAG_TAKEN * u8::from(b.taken));
        }
        out.push(flags);
        out.push(op_code(inst.op));
        for reg in [inst.dst, inst.src1, inst.src2].into_iter().flatten() {
            out.push(reg.index() as u8);
        }
        put_varint(zigzag(inst.pc.wrapping_sub(prev_pc) as i64), out);
        prev_pc = inst.pc;
        put_varint(zigzag(inst.imm as i64), out);
        if let Some(addr) = inst.addr {
            put_varint(zigzag(addr.wrapping_sub(prev_addr) as i64), out);
            prev_addr = addr;
        }
        if let Some(b) = inst.branch {
            put_varint(zigzag(b.target.wrapping_sub(inst.pc) as i64), out);
            out.extend_from_slice(&b.predictability.to_le_bytes());
        }
    }
}

/// Bounds-checked byte reader over a block's encoded bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            // The 10th byte can only contribute the top bit of a u64.
            if shift == 63 && b > 1 {
                return Err(format!("varint overflows u64 at byte {}", self.pos - 1));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(format!("varint longer than 10 bytes at byte {}", self.pos))
    }

    fn f32(&mut self) -> Result<f32, String> {
        let at = self.pos;
        let bytes: [u8; 4] = self
            .bytes
            .get(at..at + 4)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| format!("truncated at byte {at}"))?;
        self.pos += 4;
        Ok(f32::from_le_bytes(bytes))
    }

    fn reg(&mut self) -> Result<Reg, String> {
        let r = self.u8()?;
        if usize::from(r) >= NUM_ARCH_REGS {
            return Err(format!("register index {r} out of range"));
        }
        Ok(Reg::from_index(usize::from(r)))
    }
}

/// Decodes exactly `count` instructions from `bytes`, assigning sequence
/// numbers `first_seq..first_seq + count`.
///
/// # Errors
///
/// A description of the first malformation (truncation, trailing bytes,
/// out-of-range opcode or register ordinals); never panics.
pub(crate) fn decode_block(
    bytes: &[u8],
    first_seq: u64,
    count: usize,
) -> Result<Vec<DynInst>, String> {
    let mut r = Reader { bytes, pos: 0 };
    let mut insts = Vec::with_capacity(count);
    let mut prev_pc: u64 = 0;
    let mut prev_addr: u64 = 0;
    for k in 0..count {
        let flags = r.u8()?;
        let op_byte = r.u8()?;
        let op = *OPS
            .get(usize::from(op_byte))
            .ok_or_else(|| format!("opcode ordinal {op_byte} out of range"))?;
        let dst = (flags & FLAG_DST != 0).then(|| r.reg()).transpose()?;
        let src1 = (flags & FLAG_SRC1 != 0).then(|| r.reg()).transpose()?;
        let src2 = (flags & FLAG_SRC2 != 0).then(|| r.reg()).transpose()?;
        let pc = prev_pc.wrapping_add(unzigzag(r.varint()?) as u64);
        prev_pc = pc;
        let imm = unzigzag(r.varint()?) as u64;
        let addr = if flags & FLAG_ADDR != 0 {
            let a = prev_addr.wrapping_add(unzigzag(r.varint()?) as u64);
            prev_addr = a;
            Some(a)
        } else {
            None
        };
        let branch = if flags & FLAG_BRANCH != 0 {
            let target = pc.wrapping_add(unzigzag(r.varint()?) as u64);
            Some(BranchInfo {
                taken: flags & FLAG_TAKEN != 0,
                target,
                predictability: r.f32()?,
            })
        } else {
            None
        };
        insts.push(DynInst {
            seq: first_seq + k as InstSeq,
            pc,
            op,
            dst,
            src1,
            src2,
            imm,
            addr,
            width: width_of(flags >> 6),
            branch,
        });
    }
    if r.pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes after {count} instructions",
            bytes.len() - r.pos
        ));
    }
    Ok(insts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Reg};

    fn every_shape() -> Vec<DynInst> {
        let mut v = Vec::new();
        // Every opcode through its natural constructor shape.
        for (k, op) in OPS.into_iter().enumerate() {
            let inst = match op {
                Op::Load => DynInst::load(Reg::int(k % 32), Reg::int(2), 0x4000 + k as u64 * 8),
                Op::Store => DynInst::store(Reg::int(1), Reg::int(2), 0x9000 - k as u64 * 16),
                Op::Branch => DynInst::branch(Reg::int(3), k % 2 == 0, 0x100, 0.75),
                Op::Jump => DynInst::branch(Reg::int(3), true, 0x40, 1.0).with_pc(0x8000),
                Op::Nop => DynInst::nop(),
                _ => DynInst::alu(op, Reg::fp(k % 32), Reg::int(5), Reg::int(6)),
            };
            v.push(inst.with_seq(k as u64).with_pc(0x1000 + k as u64 * 4));
        }
        // Every width, a huge immediate, a wrapping-negative immediate, and a
        // backwards branch (negative target delta).
        for (k, w) in [MemWidth::B1, MemWidth::B2, MemWidth::B4, MemWidth::B8]
            .into_iter()
            .enumerate()
        {
            let mut i = DynInst::load(Reg::int(7), Reg::int(8), u64::MAX - 64 + k as u64);
            i.width = w;
            v.push(i.with_seq(v.len() as u64).with_pc(0x2000));
        }
        let imm = DynInst::alu_imm(Op::Xor, Reg::int(9), Reg::int(9), u64::MAX - 5);
        v.push(imm.with_seq(v.len() as u64).with_pc(0x3000));
        let back = DynInst::branch(Reg::int(1), true, 0x10, 0.0).with_pc(0xFFFF_0000);
        v.push(back.with_seq(v.len() as u64));
        v
    }

    #[test]
    fn round_trips_every_opcode_width_and_field_shape() {
        let mut insts = every_shape();
        let first = 1234u64;
        for (k, i) in insts.iter_mut().enumerate() {
            i.seq = first + k as u64;
        }
        let mut bytes = Vec::new();
        encode_block(&insts, &mut bytes);
        let back = decode_block(&bytes, first, insts.len()).expect("decode");
        assert_eq!(back, insts);
    }

    #[test]
    fn zigzag_is_an_involution_at_the_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 63, -64] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncation_at_every_byte_is_an_error_not_a_panic() {
        let insts = every_shape();
        let mut bytes = Vec::new();
        encode_block(&insts, &mut bytes);
        for cut in 0..bytes.len() {
            let err = decode_block(&bytes[..cut], 0, insts.len());
            assert!(err.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let insts = vec![DynInst::nop().with_pc(0x1000)];
        let mut bytes = Vec::new();
        encode_block(&insts, &mut bytes);
        bytes.push(0x00);
        assert!(decode_block(&bytes, 0, 1).unwrap_err().contains("trailing"));
    }

    #[test]
    fn hostile_ordinals_are_errors() {
        // Opcode ordinal 16 does not exist (OPS covers 0..16).
        let bytes = [0u8, 16, 0, 0];
        assert!(decode_block(&bytes, 0, 1).unwrap_err().contains("opcode"));
        // Register index 64 is out of range.
        let bytes = [FLAG_DST, 15, 64, 0, 0];
        assert!(decode_block(&bytes, 0, 1).unwrap_err().contains("register"));
    }

    #[test]
    fn hostile_varints_are_errors() {
        // Eleven continuation bytes: longer than any u64 varint.
        let mut bytes = vec![0u8, 15];
        bytes.extend_from_slice(&[0x80; 10]);
        bytes.push(0x01);
        assert!(decode_block(&bytes, 0, 1).unwrap_err().contains("varint"));
        // A 10-byte varint whose final byte overflows the top bit.
        let mut bytes = vec![0u8, 15];
        bytes.extend_from_slice(&[0x80; 9]);
        bytes.push(0x7F);
        assert!(decode_block(&bytes, 0, 1).unwrap_err().contains("varint"));
    }

    #[test]
    fn sequence_numbers_come_from_block_position() {
        let insts: Vec<DynInst> = (0..5)
            .map(|k| DynInst::nop().with_seq(700 + k).with_pc(0x1000 + k * 4))
            .collect();
        let mut bytes = Vec::new();
        encode_block(&insts, &mut bytes);
        let back = decode_block(&bytes, 700, 5).expect("decode");
        for (k, i) in back.iter().enumerate() {
            assert_eq!(i.seq, 700 + k as u64);
        }
    }

    #[test]
    fn dense_code_is_a_few_bytes_per_instruction() {
        // Straight-line code with striding addresses — the common case the
        // delta encoding is built for — should cost well under a quarter of
        // the ~45-byte serde record.
        let insts: Vec<DynInst> = (0..1000u64)
            .map(|k| {
                DynInst::load(Reg::int((k % 30) as usize), Reg::int(31), 0x10000 + k * 64)
                    .with_seq(k)
                    .with_pc(0x1000 + k * 4)
            })
            .collect();
        let mut bytes = Vec::new();
        encode_block(&insts, &mut bytes);
        let per_inst = bytes.len() as f64 / insts.len() as f64;
        assert!(per_inst <= 10.0, "{per_inst} bytes/inst");
    }
}
