//! # icfp-isa — SimISA
//!
//! The compact load/store RISC instruction set used throughout the iCFP
//! (HPCA 2009) reproduction.  The paper evaluates on Alpha AXP binaries; this
//! reproduction substitutes a synthetic but structurally equivalent ISA (see
//! `DESIGN.md`, substitution table).  What the evaluated mechanisms care about
//! is exactly what SimISA captures:
//!
//! * register data dependences (two sources, one destination),
//! * instruction *classes* and their execution latencies (ALU, fp-add,
//!   int/fp multiply, load, store, branch),
//! * memory addresses for loads and stores,
//! * control flow (branch direction + target behaviour).
//!
//! SimISA instructions also carry enough information to be executed
//! *functionally* ([`exec`]) so that the timing models can be checked against
//! an architectural golden model (same final register/memory state).
//!
//! ```
//! use icfp_isa::{DynInst, Op, Reg};
//!
//! let add = DynInst::alu(Op::Add, Reg::int(3), Reg::int(1), Reg::int(2));
//! assert_eq!(add.latency(), 1);
//! assert!(add.dst.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod exec;
pub mod fxmap;
pub mod inst;
pub mod reg;
pub mod source;
pub mod trace;
pub mod trace_file;
mod trace_v2;

pub use digest::{fnv1a, Fnv1a};
pub use exec::{ArchState, FunctionalMemory};
pub use inst::{DynInst, MemWidth, Op, OpClass};
pub use reg::{Reg, RegClass, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS};
pub use source::{
    block_digest_of, ArenaSource, Residency, TraceBlock, TraceCursor, TraceSource,
    TraceSourceError, DEFAULT_BLOCK_INSTS,
};
pub use trace::{Trace, TraceBuilder, TraceStats};
pub use trace_file::{TraceFile, TraceFileWriter, TraceFormat, TRACE_MAGIC, TRACE_MAGIC_V2};

/// A dynamic-instruction sequence number: position in the dynamic stream.
///
/// iCFP uses sequence numbers relative to the last checkpoint to order
/// register writers (Section 3.1 of the paper); the simulator additionally
/// uses the absolute dynamic position for statistics and for the golden-model
/// comparison.
pub type InstSeq = u64;

/// A byte address in the simulated address space.
pub type Addr = u64;

/// A 64-bit architectural value.
pub type Value = u64;

/// A simulation cycle number.
pub type Cycle = u64;
