//! The `icfp-trace/v1` and `icfp-trace/v2` on-disk trace containers.
//!
//! A versioned, digest-validated file format for dynamic instruction traces,
//! designed so that traces far larger than host RAM can be simulated: the
//! reader ([`TraceFile`]) implements [`TraceSource`] by decoding blocks
//! *lazily* through a small bounded cache with next-block prefetch, and the
//! writer ([`TraceFileWriter`]) streams instructions out block by block
//! without ever materializing the whole trace.
//!
//! ## Layout
//!
//! ```text
//! offset  size  field
//! 0       13    magic: the ASCII bytes "icfp-trace/v1" or "icfp-trace/v2"
//! 13      8     index offset (u64 LE; patched when the writer finishes)
//! 21      ...   blocks, back to back: v1 blocks are the vendored-serde
//!               encoding of their Vec<DynInst> (length-prefixed); v2 blocks
//!               use the varint + delta codec of [`crate::trace_v2`]
//! index   n     index: vendored-serde encoding of [`struct@TraceIndex`]
//!               (name, total instructions, block size, whole-trace digest,
//!               per-block {offset, byte length, instruction count, digest})
//! end-8   8     FNV-1a digest of the index bytes (u64 LE)
//! ```
//!
//! The two versions differ *only* in the block encoding ([`TraceFormat`]
//! selects it at write time; the reader dispatches on the magic).  Index
//! encoding, digests and geometry rules are shared, and the per-block digest
//! is over the decoded instructions — so the same content carries the same
//! identity in either version and checkpoints resume across them.
//!
//! Every malformation — wrong magic, truncation, offsets past the end of the
//! file, lengths that do not sum, block content whose digest disagrees with
//! the index — is a typed [`TraceSourceError`], never a panic: hostile or
//! damaged inputs fail loudly at `open`/`block` time.
//!
//! The whole-trace digest recorded in the index uses the exact
//! [`Trace::digest`] definition (name, per-instruction serialized bytes,
//! length last), so a file written from any [`TraceSource`] carries the same
//! identity as the equivalent in-memory arena — checkpoints taken against
//! one resume against the other.

use crate::source::{
    block_digest_of, BlockCache, Residency, TraceBlock, TraceSource, TraceSourceError,
};
use crate::trace::Trace;
use crate::{DynInst, Fnv1a, InstSeq};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Mutex};

/// Magic prefix of a version-1 container.
pub const TRACE_MAGIC: &[u8; 13] = b"icfp-trace/v1";

/// Magic prefix of a version-2 (varint + delta) container.
pub const TRACE_MAGIC_V2: &[u8; 13] = b"icfp-trace/v2";

/// Byte offset at which block data starts (magic + index-offset field).
const DATA_START: u64 = TRACE_MAGIC.len() as u64 + 8;

/// On-disk block encoding of a trace container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// `icfp-trace/v1`: vendored-serde `Vec<DynInst>` per block.
    #[default]
    V1,
    /// `icfp-trace/v2`: varint + delta codec ([`crate::trace_v2`]), roughly
    /// a fifth of the v1 size on real instruction streams.
    V2,
}

impl TraceFormat {
    /// The 13-byte magic this format writes.
    fn magic(self) -> &'static [u8; 13] {
        match self {
            TraceFormat::V1 => TRACE_MAGIC,
            TraceFormat::V2 => TRACE_MAGIC_V2,
        }
    }

    /// Parses a CLI spelling (`"v1"`/`"1"`, `"v2"`/`"2"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "v1" | "1" => Some(TraceFormat::V1),
            "v2" | "2" => Some(TraceFormat::V2),
            _ => None,
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceFormat::V1 => "v1",
            TraceFormat::V2 => "v2",
        })
    }
}

/// Decoded blocks kept resident per open file: the current block, one block
/// of random-access lookback (rally replay), and the prefetched next block.
/// This constant is the whole story of "peak trace memory while streaming".
const RESIDENT_BLOCKS: usize = 4;

/// Per-block entry of the container index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct BlockMeta {
    /// Absolute file offset of the block's serialized bytes.
    offset: u64,
    /// Serialized length in bytes.
    byte_len: u64,
    /// Number of instructions in the block.
    inst_count: u64,
    /// [`block_digest_of`] the block's instructions.
    digest: u64,
}

/// The container index (serialized after the last block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TraceIndex {
    name: String,
    total_insts: u64,
    block_size: u64,
    whole_digest: u64,
    blocks: Vec<BlockMeta>,
}

fn io_err(path: &Path, e: std::io::Error) -> TraceSourceError {
    TraceSourceError::Io(format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming `icfp-trace/v1` writer: instructions in, blocks out, bounded
/// memory (one block buffer plus the index).
///
/// [`TraceFileWriter::push`] mirrors [`crate::TraceBuilder`] exactly —
/// sequence numbers follow the push order and a zero program counter is
/// assigned from the running PC (4-byte spaced, [`TraceFileWriter::set_next_pc`]
/// models loops) — so a converter emitting through the writer produces the
/// same instruction stream it would have built in memory.
#[derive(Debug)]
pub struct TraceFileWriter {
    file: BufWriter<File>,
    path: PathBuf,
    name: String,
    format: TraceFormat,
    block_size: usize,
    buf: Vec<DynInst>,
    blocks: Vec<BlockMeta>,
    /// Next write offset (== bytes written so far).
    offset: u64,
    total: u64,
    /// Whole-trace digest accumulator (name already folded; length folded at
    /// finish — see [`Trace::digest`]).
    whole: Fnv1a,
    scratch: Vec<u8>,
    next_pc: u64,
}

/// What [`TraceFileWriter::finish`] reports about the written container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFileSummary {
    /// Total dynamic instructions written.
    pub instructions: u64,
    /// Number of blocks written.
    pub blocks: usize,
    /// Whole-trace content digest (equals [`Trace::digest`] of the same
    /// content).
    pub digest: u64,
    /// Total container size in bytes.
    pub bytes: u64,
}

impl TraceFileWriter {
    /// Creates a version-1 container at `path` for a trace named `name`,
    /// cutting blocks of `block_size` instructions
    /// ([`crate::DEFAULT_BLOCK_INSTS`] is the conventional choice).
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn create(
        path: impl AsRef<Path>,
        name: impl Into<String>,
        block_size: usize,
    ) -> Result<Self, TraceSourceError> {
        Self::create_as(path, name, block_size, TraceFormat::V1)
    }

    /// Creates a container with an explicit block encoding ([`TraceFormat`]).
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn create_as(
        path: impl AsRef<Path>,
        name: impl Into<String>,
        block_size: usize,
        format: TraceFormat,
    ) -> Result<Self, TraceSourceError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path).map_err(|e| io_err(&path, e))?;
        let mut file = BufWriter::new(file);
        file.write_all(format.magic())
            .and_then(|()| file.write_all(&0u64.to_le_bytes()))
            .map_err(|e| io_err(&path, e))?;
        let name = name.into();
        let mut whole = Fnv1a::new();
        whole.write(name.as_bytes());
        Ok(TraceFileWriter {
            file,
            path,
            name,
            format,
            block_size: block_size.max(1),
            buf: Vec::with_capacity(block_size.max(1)),
            blocks: Vec::new(),
            offset: DATA_START,
            total: 0,
            whole,
            scratch: Vec::with_capacity(64),
            next_pc: 0x1000,
        })
    }

    /// Number of instructions pushed so far.
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Overrides the PC assigned to the next pushed zero-PC instruction
    /// (loop modelling, mirroring [`crate::TraceBuilder::set_next_pc`]).
    pub fn set_next_pc(&mut self, pc: u64) {
        self.next_pc = pc;
    }

    /// Appends an instruction, assigning its sequence number and (if zero)
    /// its program counter, exactly as [`crate::TraceBuilder::push`] would.
    ///
    /// # Errors
    ///
    /// Filesystem failures while flushing a completed block.
    pub fn push(&mut self, mut inst: DynInst) -> Result<(), TraceSourceError> {
        if inst.pc == 0 {
            inst.pc = self.next_pc;
        }
        self.next_pc = inst.pc + 4;
        self.push_raw(inst)
    }

    /// Appends an instruction preserving its PC verbatim (only the sequence
    /// number is assigned, as [`Trace::new`] does).  Used when re-containering
    /// content that already carries final PCs.
    ///
    /// # Errors
    ///
    /// Filesystem failures while flushing a completed block.
    pub fn push_raw(&mut self, mut inst: DynInst) -> Result<(), TraceSourceError> {
        inst.seq = self.total as InstSeq;
        self.scratch.clear();
        Serialize::serialize(&inst, &mut self.scratch);
        self.whole.write(&self.scratch);
        self.buf.push(inst);
        self.total += 1;
        if self.buf.len() >= self.block_size {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), TraceSourceError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let bytes = match self.format {
            TraceFormat::V1 => serde::to_bytes(&self.buf),
            TraceFormat::V2 => {
                let mut out = Vec::with_capacity(self.buf.len() * 12);
                crate::trace_v2::encode_block(&self.buf, &mut out);
                out
            }
        };
        self.blocks.push(BlockMeta {
            offset: self.offset,
            byte_len: bytes.len() as u64,
            inst_count: self.buf.len() as u64,
            digest: block_digest_of(&self.buf),
        });
        self.file
            .write_all(&bytes)
            .map_err(|e| io_err(&self.path, e))?;
        self.offset += bytes.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the final partial block, writes the index and its digest, and
    /// patches the index offset into the header.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn finish(mut self) -> Result<TraceFileSummary, TraceSourceError> {
        self.flush_block()?;
        let mut whole = self.whole.clone();
        whole.write_u64(self.total);
        let digest = whole.finish();
        let index = TraceIndex {
            name: self.name.clone(),
            total_insts: self.total,
            block_size: self.block_size as u64,
            whole_digest: digest,
            blocks: std::mem::take(&mut self.blocks),
        };
        let index_offset = self.offset;
        let index_bytes = serde::to_bytes(&index);
        let index_digest = crate::fnv1a(&index_bytes);
        let blocks = index.blocks.len();
        self.file
            .write_all(&index_bytes)
            .and_then(|()| self.file.write_all(&index_digest.to_le_bytes()))
            .map_err(|e| io_err(&self.path, e))?;
        let bytes = index_offset + index_bytes.len() as u64 + 8;
        let mut file = self
            .file
            .into_inner()
            .map_err(|e| TraceSourceError::Io(format!("{}: {e}", self.path.display())))?;
        file.seek(SeekFrom::Start(TRACE_MAGIC.len() as u64))
            .and_then(|_| file.write_all(&index_offset.to_le_bytes()))
            .and_then(|()| file.sync_all())
            .map_err(|e| io_err(&self.path, e))?;
        Ok(TraceFileSummary {
            instructions: self.total,
            blocks,
            digest,
            bytes,
        })
    }

    /// Writes an entire in-memory trace to `path` (content verbatim).
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn write_trace(
        path: impl AsRef<Path>,
        trace: &Trace,
        block_size: usize,
    ) -> Result<TraceFileSummary, TraceSourceError> {
        Self::write_trace_as(path, trace, block_size, TraceFormat::V1)
    }

    /// [`TraceFileWriter::write_trace`] with an explicit block encoding.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn write_trace_as(
        path: impl AsRef<Path>,
        trace: &Trace,
        block_size: usize,
        format: TraceFormat,
    ) -> Result<TraceFileSummary, TraceSourceError> {
        let mut w = TraceFileWriter::create_as(path, trace.name(), block_size, format)?;
        for inst in trace {
            w.push_raw(*inst)?;
        }
        let summary = w.finish()?;
        debug_assert_eq!(summary.digest, trace.digest());
        Ok(summary)
    }

    /// Streams any [`TraceSource`] into a container at `path` (content
    /// verbatim, re-blocked to `block_size`), holding one input and one
    /// output block in memory at a time.
    ///
    /// # Errors
    ///
    /// Source read failures and filesystem failures.
    pub fn write_source(
        path: impl AsRef<Path>,
        source: &dyn TraceSource,
        block_size: usize,
    ) -> Result<TraceFileSummary, TraceSourceError> {
        Self::write_source_as(path, source, block_size, TraceFormat::V1)
    }

    /// [`TraceFileWriter::write_source`] with an explicit block encoding —
    /// this is the `trace convert` path for re-containering v1 as v2 and
    /// back (content verbatim, so the digest is preserved either way).
    ///
    /// # Errors
    ///
    /// Source read failures and filesystem failures.
    pub fn write_source_as(
        path: impl AsRef<Path>,
        source: &dyn TraceSource,
        block_size: usize,
        format: TraceFormat,
    ) -> Result<TraceFileSummary, TraceSourceError> {
        let mut w = TraceFileWriter::create_as(path, source.name(), block_size, format)?;
        for b in 0..source.block_count() {
            let block = source.block(b)?;
            for inst in block.insts() {
                w.push_raw(*inst)?;
            }
        }
        w.finish()
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Lazily-decoding `icfp-trace` reader; the on-disk [`TraceSource`].
///
/// `open` validates the container's structure (magic, index digest, block
/// geometry, offsets) without reading any block data; blocks decode on first
/// access through a bounded MRU cache, and each access hands the *following*
/// block to a background decode thread, so decode of block `k+1` overlaps
/// simulation of block `k` and sequential consumers never wait at a
/// boundary.  [`TraceFile::open_sync`] keeps everything on the calling
/// thread (the prefetch then happens inline, as a plain demand fetch).
/// Thread-safe: the sweep executor shares one open file across its pool.
#[derive(Debug)]
pub struct TraceFile {
    inner: Arc<TraceFileInner>,
    /// Background decode worker feeding the shared cache ahead of the
    /// consumer; `None` under [`TraceFile::open_sync`] or when the file has
    /// at most one block.
    prefetcher: Option<PrefetchWorker>,
}

/// The state a [`TraceFile`] shares with its prefetch worker.
#[derive(Debug)]
struct TraceFileInner {
    path: PathBuf,
    index: TraceIndex,
    format: TraceFormat,
    file: Mutex<File>,
    /// The shared bounded MRU cache (plus whatever single block a cursor
    /// pins) is the entire decoded footprint of a streamed run.
    cache: BlockCache,
    residency: Arc<Residency>,
}

/// Background block-decode worker: a bounded request channel feeding one
/// named thread that pulls block indices and decodes them into the shared
/// cache.  Hints never block the consumer ([`SyncSender::try_send`]; a full
/// queue just drops the hint) and decode errors are deliberately swallowed —
/// the demand fetch stays the source of truth, and of errors.  Dropping the
/// worker closes the channel and joins the thread.
#[derive(Debug)]
struct PrefetchWorker {
    tx: Option<SyncSender<usize>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PrefetchWorker {
    fn spawn(inner: Arc<TraceFileInner>) -> Option<Self> {
        let (tx, rx) = mpsc::sync_channel::<usize>(2);
        let handle = std::thread::Builder::new()
            .name("icfp-trace-prefetch".into())
            .spawn(move || {
                for idx in rx {
                    let _ = inner.fetch(idx);
                }
            })
            .ok()?;
        Some(PrefetchWorker {
            tx: Some(tx),
            handle: Some(handle),
        })
    }

    /// Hints that block `idx` will be wanted soon (non-blocking).
    fn request(&self, idx: usize) {
        if let Some(tx) = &self.tx {
            let _ = tx.try_send(idx);
        }
    }
}

impl Drop for PrefetchWorker {
    fn drop(&mut self) {
        // Close the channel first so the worker's `for` loop ends, then join
        // so no thread outlives the file it reads from.
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl TraceFile {
    /// Opens and structurally validates a container.
    ///
    /// # Errors
    ///
    /// Any [`TraceSourceError`]; hostile input (truncated files, overflowing
    /// lengths, inconsistent indices) is an error, never a panic.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceSourceError> {
        Self::open_impl(path, true)
    }

    /// [`TraceFile::open`] without the background decode thread: every block
    /// (including the next-block prefetch) decodes inline on the calling
    /// thread.  Useful as a deterministic-scheduling baseline and for the
    /// decode-throughput benchmarks.
    ///
    /// # Errors
    ///
    /// As [`TraceFile::open`].
    pub fn open_sync(path: impl AsRef<Path>) -> Result<Self, TraceSourceError> {
        Self::open_impl(path, false)
    }

    /// [`TraceFile::open`] plus a whole-trace content-identity check: the
    /// container's digest must equal `expected` or the open is refused.
    /// This is the distributed-sweep path — a worker is handed a trace
    /// *digest* over the wire, never trace bytes, and must not execute
    /// against a stale, renamed or regenerated-differently local file that
    /// happens to sit at the agreed path.
    ///
    /// # Errors
    ///
    /// As [`TraceFile::open`], plus [`TraceSourceError::Corrupt`] naming
    /// both digests on a mismatch.
    pub fn open_validated(
        path: impl AsRef<Path>,
        expected: u64,
    ) -> Result<Self, TraceSourceError> {
        let file = Self::open(path)?;
        let found = TraceSource::digest(&file);
        if found != expected {
            return Err(TraceSourceError::Corrupt(format!(
                "content digest {found:#018x} does not match the expected {expected:#018x}"
            )));
        }
        Ok(file)
    }

    fn open_impl(path: impl AsRef<Path>, prefetch: bool) -> Result<Self, TraceSourceError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path).map_err(|e| io_err(&path, e))?;
        let file_len = file.metadata().map_err(|e| io_err(&path, e))?.len();

        // Header: magic + index offset.
        let mut header = [0u8; DATA_START as usize];
        if file_len < DATA_START + 8 {
            // Too short even for header + index digest: decide between "not
            // ours" and "ours but cut off" by whatever magic prefix exists.
            let mut prefix = vec![0u8; file_len.min(TRACE_MAGIC.len() as u64) as usize];
            file.read_exact(&mut prefix).map_err(|e| io_err(&path, e))?;
            return Err(
                if TRACE_MAGIC.starts_with(prefix.as_slice())
                    || TRACE_MAGIC_V2.starts_with(prefix.as_slice())
                {
                    TraceSourceError::Truncated
                } else {
                    TraceSourceError::BadMagic
                },
            );
        }
        file.read_exact(&mut header).map_err(|e| io_err(&path, e))?;
        let format = match &header[..TRACE_MAGIC.len()] {
            m if m == TRACE_MAGIC => TraceFormat::V1,
            m if m == TRACE_MAGIC_V2 => TraceFormat::V2,
            _ => return Err(TraceSourceError::BadMagic),
        };
        let index_offset = u64::from_le_bytes(
            header[TRACE_MAGIC.len()..].try_into().expect("8 bytes"),
        );
        // The index spans [index_offset, file_len - 8); its digest is the
        // trailing 8 bytes.  All comparisons stay in u64 so hostile
        // near-MAX offsets cannot overflow.
        if index_offset < DATA_START || index_offset > file_len.saturating_sub(8) {
            return Err(TraceSourceError::Truncated);
        }
        let index_len = (file_len - 8 - index_offset) as usize;
        let mut index_bytes = vec![0u8; index_len];
        let mut digest_bytes = [0u8; 8];
        file.seek(SeekFrom::Start(index_offset))
            .and_then(|_| file.read_exact(&mut index_bytes))
            .and_then(|()| file.read_exact(&mut digest_bytes))
            .map_err(|e| io_err(&path, e))?;
        let expected = u64::from_le_bytes(digest_bytes);
        let found = crate::fnv1a(&index_bytes);
        if found != expected {
            return Err(TraceSourceError::Corrupt(format!(
                "index digest mismatch (recorded {expected:#018x}, found {found:#018x})"
            )));
        }
        let index: TraceIndex = serde::from_bytes(&index_bytes)
            .map_err(|e| TraceSourceError::Corrupt(format!("index does not decode: {e}")))?;

        // Geometry validation: block sizes, counts and extents must be
        // internally consistent and stay inside the data region.
        if index.block_size == 0 && index.total_insts > 0 {
            return Err(TraceSourceError::Corrupt("zero block size".into()));
        }
        let expect_blocks = if index.total_insts == 0 {
            0
        } else {
            index.total_insts.div_ceil(index.block_size)
        };
        if index.blocks.len() as u64 != expect_blocks {
            return Err(TraceSourceError::Corrupt(format!(
                "index holds {} blocks, geometry implies {expect_blocks}",
                index.blocks.len()
            )));
        }
        let mut counted = 0u64;
        for (k, b) in index.blocks.iter().enumerate() {
            let want = if k as u64 + 1 == expect_blocks {
                index.total_insts - index.block_size * (expect_blocks - 1)
            } else {
                index.block_size
            };
            if b.inst_count != want {
                return Err(TraceSourceError::Corrupt(format!(
                    "block {k} holds {} instructions, geometry implies {want}",
                    b.inst_count
                )));
            }
            let end = b.offset.checked_add(b.byte_len).ok_or_else(|| {
                TraceSourceError::Corrupt(format!("block {k} extent overflows"))
            })?;
            if b.offset < DATA_START || end > index_offset {
                return Err(TraceSourceError::Corrupt(format!(
                    "block {k} extent [{}, {end}) lies outside the data region",
                    b.offset
                )));
            }
            counted += b.inst_count;
        }
        if counted != index.total_insts {
            return Err(TraceSourceError::Corrupt(format!(
                "block counts sum to {counted}, index claims {}",
                index.total_insts
            )));
        }

        let inner = Arc::new(TraceFileInner {
            path,
            index,
            format,
            file: Mutex::new(file),
            cache: BlockCache::new(RESIDENT_BLOCKS),
            residency: Arc::new(Residency::default()),
        });
        let prefetcher = (prefetch && inner.index.blocks.len() > 1)
            .then(|| PrefetchWorker::spawn(Arc::clone(&inner)))
            .flatten();
        Ok(TraceFile { inner, prefetcher })
    }

    /// The file the container was opened from.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// The container's block encoding (from its magic).
    pub fn format(&self) -> TraceFormat {
        self.inner.format
    }

    /// True when a background decode thread is feeding the cache.
    pub fn prefetches_async(&self) -> bool {
        self.prefetcher.is_some()
    }

    /// Decodes and digest-checks every block and re-derives the whole-trace
    /// digest, in one bounded-memory pass.
    ///
    /// # Errors
    ///
    /// The first corruption found.
    pub fn verify(&self) -> Result<(), TraceSourceError> {
        let mut whole = Fnv1a::new();
        whole.write(self.inner.index.name.as_bytes());
        let mut buf = Vec::with_capacity(64);
        for k in 0..self.block_count() {
            let block = self.block(k)?;
            for inst in block.insts() {
                buf.clear();
                Serialize::serialize(inst, &mut buf);
                whole.write(&buf);
            }
        }
        whole.write_u64(self.inner.index.total_insts);
        let found = whole.finish();
        if found != self.inner.index.whole_digest {
            return Err(TraceSourceError::Corrupt(format!(
                "whole-trace digest mismatch (recorded {:#018x}, found {found:#018x})",
                self.inner.index.whole_digest
            )));
        }
        Ok(())
    }

    /// A one-line human-readable description (`trace info`).
    pub fn summary(&self) -> String {
        format!(
            "{}: [{}] {} insts in {} blocks of {} ({} resident max), digest {:#018x}",
            self.inner.index.name,
            self.inner.format,
            self.inner.index.total_insts,
            self.inner.index.blocks.len(),
            self.inner.index.block_size,
            RESIDENT_BLOCKS,
            self.inner.index.whole_digest
        )
    }
}

impl TraceFileInner {
    /// Serves one block through the shared cache, decoding on a miss.
    fn fetch(&self, index: usize) -> Result<Arc<TraceBlock>, TraceSourceError> {
        self.cache.get_or_insert(index, || self.decode(index))
    }

    /// Reads, decodes and validates one block from disk.
    fn decode(&self, index: usize) -> Result<Arc<TraceBlock>, TraceSourceError> {
        let count = self.index.blocks.len();
        let Some(meta) = self.index.blocks.get(index) else {
            return Err(TraceSourceError::BlockOutOfRange { index, count });
        };
        let mut bytes = vec![0u8; meta.byte_len as usize];
        {
            let mut file = self.file.lock().expect("trace file lock");
            file.seek(SeekFrom::Start(meta.offset))
                .and_then(|_| file.read_exact(&mut bytes))
                .map_err(|e| io_err(&self.path, e))?;
        }
        let insts: Vec<DynInst> = match self.format {
            TraceFormat::V1 => serde::from_bytes(&bytes).map_err(|e| {
                TraceSourceError::Corrupt(format!("block {index} does not decode: {e}"))
            })?,
            TraceFormat::V2 => crate::trace_v2::decode_block(
                &bytes,
                index as u64 * self.index.block_size,
                meta.inst_count as usize,
            )
            .map_err(|e| {
                TraceSourceError::Corrupt(format!("block {index} does not decode: {e}"))
            })?,
        };
        if insts.len() as u64 != meta.inst_count {
            return Err(TraceSourceError::Corrupt(format!(
                "block {index} decoded {} instructions, index claims {}",
                insts.len(),
                meta.inst_count
            )));
        }
        let found = block_digest_of(&insts);
        if found != meta.digest {
            return Err(TraceSourceError::BlockDigestMismatch {
                index,
                expected: meta.digest,
                found,
            });
        }
        Ok(Arc::new(TraceBlock::counted(
            index * self.index.block_size as usize,
            insts,
            &self.residency,
        )))
    }
}

impl TraceSource for TraceFile {
    fn name(&self) -> &str {
        &self.inner.index.name
    }

    fn len(&self) -> usize {
        self.inner.index.total_insts as usize
    }

    fn digest(&self) -> u64 {
        self.inner.index.whole_digest
    }

    fn block_size(&self) -> usize {
        self.inner.index.block_size as usize
    }

    fn block(&self, index: usize) -> Result<Arc<TraceBlock>, TraceSourceError> {
        let block = self.inner.fetch(index)?;
        // Prefetch: bring the next block in while the consumer works through
        // this one, so sequential streaming never stalls at a boundary — on
        // the background thread when one is running, inline otherwise.  A
        // prefetch failure is deliberately ignored here — if the consumer
        // really reaches that block, the demand fetch will surface the error.
        if index + 1 < self.inner.index.blocks.len() {
            match &self.prefetcher {
                Some(p) => p.request(index + 1),
                None => {
                    let _ = self.inner.fetch(index + 1);
                }
            }
        }
        Ok(block)
    }

    fn block_digest(&self, index: usize) -> Result<u64, TraceSourceError> {
        self.inner.index.blocks.get(index).map(|b| b.digest).ok_or(
            TraceSourceError::BlockOutOfRange {
                index,
                count: self.inner.index.blocks.len(),
            },
        )
    }

    fn residency(&self) -> Option<&Residency> {
        Some(&self.inner.residency)
    }
}

impl From<TraceFile> for Arc<dyn TraceSource> {
    fn from(f: TraceFile) -> Self {
        Arc::new(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Reg, TraceBuilder, TraceCursor};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("icfp-trace-test-{}-{name}", std::process::id()))
    }

    fn sample_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("file-test");
        for k in 0..n {
            b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x1000 + k * 64));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), k));
        }
        b.build()
    }

    #[test]
    fn round_trips_content_blocks_and_digests() {
        let t = sample_trace(40); // 80 insts
        let path = tmp("roundtrip");
        let summary = TraceFileWriter::write_trace(&path, &t, 16).expect("write");
        assert_eq!(summary.instructions, 80);
        assert_eq!(summary.blocks, 5);
        assert_eq!(summary.digest, t.digest());

        let f = TraceFile::open(&path).expect("open");
        assert_eq!(f.name(), "file-test");
        assert_eq!(f.len(), 80);
        assert_eq!(f.digest(), t.digest());
        assert_eq!(f.block_count(), 5);
        f.verify().expect("verify");

        let cur = TraceCursor::new(&f);
        for (k, want) in t.iter().enumerate() {
            assert_eq!(&cur.get(k), want, "inst {k}");
        }
        // Random access back into an earlier block works too.
        assert_eq!(&cur.get(3), t.get(3).unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_validated_binds_the_file_to_its_expected_digest() {
        let t = sample_trace(20);
        let path = tmp("validated");
        TraceFileWriter::write_trace(&path, &t, 16).expect("write");
        // The right digest opens; any other digest is refused with a typed
        // error naming both — the worker-side gate for digests-over-the-wire.
        let f = TraceFile::open_validated(&path, t.digest()).expect("matching digest");
        assert_eq!(f.len(), t.len());
        let err = TraceFile::open_validated(&path, t.digest() ^ 1).expect_err("wrong digest");
        let msg = err.to_string();
        assert!(msg.contains("does not match"), "{msg}");
        assert!(
            msg.contains(&format!("{:#018x}", t.digest())),
            "names the found digest: {msg}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn residency_stays_bounded_while_streaming() {
        let t = sample_trace(200); // 400 insts, 25 blocks of 16
        let path = tmp("residency");
        TraceFileWriter::write_trace(&path, &t, 16).expect("write");
        let f = TraceFile::open(&path).expect("open");
        let cur = TraceCursor::new(&f);
        for k in 0..f.len() {
            let _ = cur.get(k);
        }
        let r = f.residency().expect("file source is counted");
        assert!(
            r.peak() <= RESIDENT_BLOCKS + 1,
            "peak resident blocks {} exceeds the bound",
            r.peak()
        );
        assert!(r.peak() >= 2, "prefetch should have been exercised");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_trace_round_trips() {
        let path = tmp("empty");
        let w = TraceFileWriter::create(&path, "empty", 16).expect("create");
        let s = w.finish().expect("finish");
        assert_eq!(s.instructions, 0);
        assert_eq!(s.blocks, 0);
        let f = TraceFile::open(&path).expect("open");
        assert!(f.is_empty());
        assert_eq!(f.block_count(), 0);
        assert_eq!(f.digest(), Trace::new("empty", vec![]).digest());
        f.verify().expect("verify empty");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_assigns_pc_and_seq_like_trace_builder() {
        let path = tmp("pcassign");
        let mut w = TraceFileWriter::create(&path, "pc", 4).expect("create");
        w.push(DynInst::nop()).unwrap();
        w.set_next_pc(0x1000);
        w.push(DynInst::nop()).unwrap();
        w.finish().unwrap();

        let mut b = TraceBuilder::new("pc");
        b.push(DynInst::nop());
        b.set_next_pc(0x1000);
        b.push(DynInst::nop());
        let t = b.build();

        let f = TraceFile::open(&path).expect("open");
        assert_eq!(f.digest(), t.digest(), "writer must mirror TraceBuilder");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_and_truncation_are_errors() {
        let t = sample_trace(10);
        let path = tmp("hostile");
        TraceFileWriter::write_trace(&path, &t, 8).expect("write");
        let bytes = std::fs::read(&path).expect("read back");

        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        std::fs::write(&path, &wrong).unwrap();
        assert_eq!(TraceFile::open(&path), fail_with_bad_magic());

        // Truncations at every structurally interesting point.
        for cut in [0usize, 5, TRACE_MAGIC.len(), 20, 22, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = TraceFile::open(&path).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    TraceSourceError::Truncated | TraceSourceError::Corrupt(_)
                ),
                "cut at {cut}: {err}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    fn fail_with_bad_magic() -> Result<TraceFile, TraceSourceError> {
        Err(TraceSourceError::BadMagic)
    }

    impl PartialEq for TraceFile {
        fn eq(&self, other: &Self) -> bool {
            self.inner.index == other.inner.index
        }
    }

    #[test]
    fn flipped_block_byte_is_a_digest_mismatch_not_a_panic() {
        let t = sample_trace(20);
        let path = tmp("flip");
        TraceFileWriter::write_trace(&path, &t, 8).expect("write");
        let mut bytes = std::fs::read(&path).expect("read back");
        // Flip a byte inside the first block's instruction data (past its
        // 8-byte Vec length prefix).
        let target = DATA_START as usize + 12;
        bytes[target] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let f = TraceFile::open(&path).expect("structure still valid");
        match f.block(0) {
            Err(TraceSourceError::BlockDigestMismatch { index: 0, .. })
            | Err(TraceSourceError::Corrupt(_)) => {}
            other => panic!("expected block corruption, got {other:?}"),
        }
        assert!(f.verify().is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hostile_index_offset_and_lengths_are_errors() {
        let t = sample_trace(10);
        let path = tmp("hostile-index");
        TraceFileWriter::write_trace(&path, &t, 8).expect("write");
        let bytes = std::fs::read(&path).expect("read back");

        // Index offset pointing past the end / to u64::MAX.
        for evil in [u64::MAX, bytes.len() as u64 + 5, 1] {
            let mut b = bytes.clone();
            b[TRACE_MAGIC.len()..DATA_START as usize].copy_from_slice(&evil.to_le_bytes());
            std::fs::write(&path, &b).unwrap();
            let err = TraceFile::open(&path).expect_err("hostile offset");
            assert!(
                matches!(
                    err,
                    TraceSourceError::Truncated | TraceSourceError::Corrupt(_)
                ),
                "offset {evil}: {err}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn async_and_sync_prefetch_serve_identical_content() {
        let t = sample_trace(120); // 240 insts, 15 blocks of 16
        let path = tmp("async-prefetch");
        TraceFileWriter::write_trace(&path, &t, 16).expect("write");
        let asy = TraceFile::open(&path).expect("open async");
        let syn = TraceFile::open_sync(&path).expect("open sync");
        assert!(asy.prefetches_async());
        assert!(!syn.prefetches_async());
        let ca = TraceCursor::new(&asy);
        let cs = TraceCursor::new(&syn);
        for k in 0..t.len() {
            assert_eq!(ca.get(k), cs.get(k), "inst {k}");
        }
        // Residency stays bounded with the worker running: the MRU cache,
        // at most one decode in flight, and the cursor's pinned block.
        let peak = asy.residency().expect("counted").peak();
        assert!(peak <= RESIDENT_BLOCKS + 2, "peak {peak}");
        // Dropping the file joins the worker (no hang, no leaked thread).
        drop(asy);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prefetch_worker_survives_random_access_and_shared_readers() {
        let t = sample_trace(200); // 400 insts, 25 blocks of 16
        let path = tmp("async-shared");
        TraceFileWriter::write_trace_as(&path, &t, 16, TraceFormat::V2).expect("write");
        let f: Arc<TraceFile> = Arc::new(TraceFile::open(&path).expect("open"));
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    let cur = TraceCursor::new(f.as_ref());
                    let mut sum = 0u64;
                    // Stride differently per reader so demand fetches and the
                    // worker's speculative decodes interleave.
                    for k in (0..cur.len()).step_by(r + 1) {
                        sum = sum.wrapping_add(cur.get(k).pc);
                    }
                    sum
                })
            })
            .collect();
        let sums: Vec<u64> = readers.into_iter().map(|h| h.join().expect("reader")).collect();
        let expect: u64 = (0..t.len()).map(|k| t.get(k).unwrap().pc).sum();
        assert_eq!(sums[0], expect);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v2_round_trips_content_blocks_and_digests() {
        let t = sample_trace(40); // 80 insts
        let path = tmp("v2-roundtrip");
        let summary =
            TraceFileWriter::write_trace_as(&path, &t, 16, TraceFormat::V2).expect("write");
        assert_eq!(summary.instructions, 80);
        assert_eq!(summary.digest, t.digest(), "identity is content, not encoding");

        let f = TraceFile::open(&path).expect("open");
        assert_eq!(f.format(), TraceFormat::V2);
        assert_eq!(f.digest(), t.digest());
        assert!(f.summary().contains("[v2]"));
        f.verify().expect("verify");
        let cur = TraceCursor::new(&f);
        for (k, want) in t.iter().enumerate() {
            assert_eq!(&cur.get(k), want, "inst {k}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v2_is_at_most_half_the_v1_size() {
        let t = sample_trace(500); // 1000 insts, loads + ALU
        let p1 = tmp("size-v1");
        let p2 = tmp("size-v2");
        let s1 = TraceFileWriter::write_trace_as(&p1, &t, 64, TraceFormat::V1).expect("v1");
        let s2 = TraceFileWriter::write_trace_as(&p2, &t, 64, TraceFormat::V2).expect("v2");
        assert_eq!(s1.digest, s2.digest);
        assert!(
            s2.bytes * 2 <= s1.bytes,
            "v2 ({} bytes) must be at most half of v1 ({} bytes)",
            s2.bytes,
            s1.bytes
        );
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn convert_between_versions_preserves_identity() {
        let t = sample_trace(30); // 60 insts
        let p1 = tmp("conv-v1");
        let p2 = tmp("conv-v2");
        let p3 = tmp("conv-back");
        TraceFileWriter::write_trace(&p1, &t, 16).expect("v1");
        let v1 = TraceFile::open(&p1).expect("open v1");
        // v1 -> v2 -> v1 through the write_source_as re-containering path.
        TraceFileWriter::write_source_as(&p2, &v1, 16, TraceFormat::V2).expect("to v2");
        let v2 = TraceFile::open(&p2).expect("open v2");
        assert_eq!(v2.format(), TraceFormat::V2);
        assert_eq!(v2.digest(), t.digest());
        // Per-block digests are over decoded instructions: identical too.
        for k in 0..v1.block_count() {
            assert_eq!(v1.block_digest(k).unwrap(), v2.block_digest(k).unwrap());
        }
        TraceFileWriter::write_source_as(&p3, &v2, 16, TraceFormat::V1).expect("back to v1");
        let back = TraceFile::open(&p3).expect("open back");
        assert_eq!(back.format(), TraceFormat::V1);
        assert_eq!(back.digest(), t.digest());
        back.verify().expect("verify");
        for p in [&p1, &p2, &p3] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn hostile_v2_blocks_are_typed_errors_not_panics() {
        let t = sample_trace(20);
        let path = tmp("v2-hostile");
        TraceFileWriter::write_trace_as(&path, &t, 8, TraceFormat::V2).expect("write");
        let bytes = std::fs::read(&path).expect("read back");

        // Flip every byte of the first block's data in turn: each must decode
        // to a typed error (codec malformation or digest mismatch), never a
        // panic.  The first block's extent starts at DATA_START.
        let first_block_len = 32.min(bytes.len() - DATA_START as usize);
        for k in 0..first_block_len {
            let mut b = bytes.clone();
            b[DATA_START as usize + k] ^= 0xA5;
            std::fs::write(&path, &b).unwrap();
            let f = TraceFile::open(&path).expect("structure untouched");
            match f.block(0) {
                Err(TraceSourceError::Corrupt(_))
                | Err(TraceSourceError::BlockDigestMismatch { .. }) => {}
                Ok(_) => panic!("flipped byte {k} decoded clean"),
                other => panic!("flipped byte {k}: unexpected {other:?}"),
            }
        }
        // Truncations inside the data region surface as decode errors too.
        std::fs::write(&path, &bytes).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_source_reblocks_identically() {
        let t = sample_trace(30); // 60 insts
        let src = crate::ArenaSource::with_block_size(t.clone(), 7);
        let path = tmp("reblock");
        let s = TraceFileWriter::write_source(&path, &src, 16).expect("write");
        assert_eq!(s.instructions, 60);
        assert_eq!(s.digest, t.digest());
        let f = TraceFile::open(&path).expect("open");
        assert_eq!(f.block_size(), 16);
        f.verify().expect("verify");
        let _ = std::fs::remove_file(&path);
    }
}
