//! Dynamic-instruction traces.
//!
//! A [`Trace`] is the unit of work handed to the timing models: a finite,
//! correct-path dynamic instruction stream.  The synthetic workload generators
//! in `icfp-workloads` produce traces; the cores in `icfp-core` consume them.

use crate::{DynInst, InstSeq, Op};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A finite dynamic instruction stream with pre-assigned sequence numbers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    insts: Vec<DynInst>,
    name: String,
    /// Cached content digest: computed on first [`Trace::digest`] call,
    /// invalidated by mutation.  Excluded from equality and serialization —
    /// it is derived state, and checkpoint resume validates against many
    /// shared references to one trace (the cache is what makes that O(1)
    /// after the first validation instead of O(len) per resume).
    digest: OnceLock<u64>,
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        // The digest cache is derived state; two traces are equal iff their
        // content is.
        self.insts == other.insts && self.name == other.name
    }
}

impl Serialize for Trace {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.insts.serialize(out);
        self.name.serialize(out);
    }
}

impl Deserialize for Trace {
    fn deserialize(r: &mut serde::Reader<'_>) -> Result<Self, serde::Error> {
        Ok(Trace {
            insts: Deserialize::deserialize(r)?,
            name: Deserialize::deserialize(r)?,
            digest: OnceLock::new(),
        })
    }
}

impl Trace {
    /// Creates a trace from a vector of instructions, (re)assigning sequence
    /// numbers to match their position.
    pub fn new(name: impl Into<String>, mut insts: Vec<DynInst>) -> Self {
        for (i, inst) in insts.iter_mut().enumerate() {
            inst.seq = i as InstSeq;
        }
        Trace {
            insts,
            name: name.into(),
            digest: OnceLock::new(),
        }
    }

    /// The trace's human-readable name (workload / scenario identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at dynamic position `seq`.
    pub fn get(&self, seq: usize) -> Option<&DynInst> {
        self.insts.get(seq)
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInst> {
        self.insts.iter()
    }

    /// The instructions as a slice.
    pub fn as_slice(&self) -> &[DynInst] {
        &self.insts
    }

    /// FNV-1a digest of the trace's full content (name, every instruction's
    /// serialized fields, then the length).  Checkpoints record it so a
    /// resume against the wrong trace — or a differently seeded regeneration
    /// of the "same" workload — is rejected instead of silently diverging.
    ///
    /// The length is folded in *last* so streaming producers (the
    /// `icfp-trace/v1` writer, block generators) can compute the identical
    /// digest in one pass without knowing the final length up front; every
    /// [`crate::TraceSource`] implementation reports this same digest for the
    /// same content.
    ///
    /// Computed once and cached: repeated calls (one per checkpoint capture
    /// and per resume validation — warm-fork sweeps make many against one
    /// shared trace) are O(1) after the first.
    pub fn digest(&self) -> u64 {
        *self.digest.get_or_init(|| {
            let mut h = crate::Fnv1a::new();
            h.write(self.name.as_bytes());
            let mut buf = Vec::with_capacity(64);
            for inst in &self.insts {
                buf.clear();
                Serialize::serialize(inst, &mut buf);
                h.write(&buf);
            }
            h.write_u64(self.insts.len() as u64);
            h.finish()
        })
    }

    /// Summary statistics of the trace's instruction mix.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for i in &self.insts {
            s.instructions += 1;
            match i.op {
                Op::Load => s.loads += 1,
                Op::Store => s.stores += 1,
                Op::Branch | Op::Jump => s.branches += 1,
                Op::Mul | Op::FpMul => s.multiplies += 1,
                Op::FpAdd => s.fp_adds += 1,
                _ => s.alu_ops += 1,
            }
        }
        s
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;
    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

impl FromIterator<DynInst> for Trace {
    fn from_iter<T: IntoIterator<Item = DynInst>>(iter: T) -> Self {
        Trace::new("anonymous", iter.into_iter().collect())
    }
}

impl Extend<DynInst> for Trace {
    fn extend<T: IntoIterator<Item = DynInst>>(&mut self, iter: T) {
        self.digest.take(); // content changes: drop the cached digest
        let base = self.insts.len() as InstSeq;
        for (i, mut inst) in iter.into_iter().enumerate() {
            inst.seq = base + i as InstSeq;
            self.insts.push(inst);
        }
    }
}

/// Instruction-mix statistics for a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic branches and jumps.
    pub branches: u64,
    /// Integer and floating-point multiplies.
    pub multiplies: u64,
    /// Floating-point adds.
    pub fp_adds: u64,
    /// Remaining single-cycle ALU operations (including nops).
    pub alu_ops: u64,
}

impl TraceStats {
    /// Fraction of instructions that are memory operations.
    pub fn mem_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / self.instructions as f64
        }
    }

    /// Fraction of instructions that are branches.
    pub fn branch_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branches as f64 / self.instructions as f64
        }
    }
}

/// Incremental builder for [`Trace`]s.
///
/// Assigns program counters (4-byte spaced) and sequence numbers as
/// instructions are pushed, which keeps the workload generators simple.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    name: String,
    insts: Vec<DynInst>,
    next_pc: u64,
}

impl TraceBuilder {
    /// Creates a builder for a trace with the given name.  Program counters
    /// start at `0x1000`.
    pub fn new(name: impl Into<String>) -> Self {
        TraceBuilder {
            name: name.into(),
            insts: Vec::new(),
            next_pc: 0x1000,
        }
    }

    /// Appends an instruction, assigning its sequence number and PC.
    pub fn push(&mut self, mut inst: DynInst) -> &mut Self {
        inst.seq = self.insts.len() as InstSeq;
        if inst.pc == 0 {
            inst.pc = self.next_pc;
        }
        self.next_pc = inst.pc + 4;
        self.insts.push(inst);
        self
    }

    /// Appends every instruction from an iterator.
    pub fn push_all<I: IntoIterator<Item = DynInst>>(&mut self, insts: I) -> &mut Self {
        for i in insts {
            self.push(i);
        }
        self
    }

    /// Overrides the PC that will be assigned to the next pushed instruction.
    /// Used by generators that model loops (re-visiting the same static PCs),
    /// which matters for the branch predictor and stream prefetcher models.
    pub fn set_next_pc(&mut self, pc: u64) -> &mut Self {
        self.next_pc = pc;
        self
    }

    /// Number of instructions pushed so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finishes the trace.
    pub fn build(self) -> Trace {
        Trace {
            insts: self.insts,
            name: self.name,
            digest: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynInst, Op, Reg};

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new("t");
        b.push(DynInst::alu_imm(Op::Add, Reg::int(1), Reg::int(0), 1));
        b.push(DynInst::load(Reg::int(2), Reg::int(1), 0x100));
        b.push(DynInst::store(Reg::int(2), Reg::int(1), 0x108));
        b.push(DynInst::branch(Reg::int(2), true, 0x1000, 0.5));
        b.build()
    }

    #[test]
    fn builder_assigns_seq_and_pc() {
        let t = small_trace();
        assert_eq!(t.len(), 4);
        for (i, inst) in t.iter().enumerate() {
            assert_eq!(inst.seq, i as u64);
        }
        assert_eq!(t.get(0).unwrap().pc, 0x1000);
        assert_eq!(t.get(1).unwrap().pc, 0x1004);
    }

    #[test]
    fn stats_count_classes() {
        let s = small_trace().stats();
        assert_eq!(s.instructions, 4);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.alu_ops, 1);
        assert!((s.mem_fraction() - 0.5).abs() < 1e-9);
        assert!((s.branch_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn from_iterator_reassigns_seq() {
        let t: Trace = vec![DynInst::nop().with_seq(99), DynInst::nop().with_seq(99)]
            .into_iter()
            .collect();
        assert_eq!(t.get(0).unwrap().seq, 0);
        assert_eq!(t.get(1).unwrap().seq, 1);
    }

    #[test]
    fn extend_continues_sequence_numbers() {
        let mut t = small_trace();
        t.extend(vec![DynInst::nop(), DynInst::nop()]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.get(5).unwrap().seq, 5);
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.stats().mem_fraction(), 0.0);
    }

    #[test]
    fn set_next_pc_models_loops() {
        let mut b = TraceBuilder::new("loop");
        b.push(DynInst::nop());
        b.set_next_pc(0x1000);
        b.push(DynInst::nop());
        let t = b.build();
        assert_eq!(t.get(0).unwrap().pc, t.get(1).unwrap().pc);
    }

    #[test]
    fn digest_is_content_addressed_and_cache_invalidates_on_extend() {
        let build = |n: u64| {
            let mut b = TraceBuilder::new("dig");
            for k in 0..n {
                b.push(DynInst::alu_imm(Op::Add, crate::Reg::int(1), crate::Reg::int(2), k));
            }
            b.build()
        };
        let a = build(5);
        let b = build(5);
        assert_eq!(a.digest(), b.digest(), "same content, same digest");
        assert_eq!(a.digest(), a.digest(), "cached digest is stable");
        assert_ne!(a.digest(), build(6).digest());
        // Equality ignores the cache (b's digest not yet computed elsewhere).
        assert_eq!(a, b);
        // Mutation must drop the cached value.
        let mut c = build(5);
        let before = c.digest();
        c.extend([DynInst::nop()]);
        assert_ne!(c.digest(), before, "extend must invalidate the cache");
        // A clone carries content (and possibly the cache) — digests agree.
        assert_eq!(c.clone().digest(), c.digest());
    }
}
