//! Assembled sweep results: per-cell figures, the deterministic report
//! digest, and the aligned text matrix renderer.

use icfp_isa::Fnv1a;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// One completed grid cell of a [`SweepReport`].
///
/// Serializable (vendored-serde) so cells stream individually over the
/// `icfp-wire/v1` protocol as they finish.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Core model name.
    pub model: String,
    /// Workload name.
    pub workload: String,
    /// Slice-buffer capacity of this cell's configuration.
    pub slice_buffer_entries: usize,
    /// MSHR count of this cell's configuration.
    pub mshr_count: usize,
    /// L2 hit latency of this cell's configuration.
    pub l2_hit_latency: u64,
    /// Trace seed the cell simulated.
    pub seed: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions per simulated cycle.
    pub ipc: f64,
    /// L1 data-cache misses per 1000 instructions.
    pub l1d_mpki: f64,
    /// L2 misses per 1000 instructions.
    pub l2_mpki: f64,
    /// Median host seconds over the cell's repetitions.
    pub host_seconds: f64,
    /// Simulated MIPS of the median rep.
    pub mips: f64,
    /// Digest of the final architectural state.
    pub state_digest: u64,
    /// `Some(reason)` if the cell's worker panicked on every allowed
    /// attempt: the cell is *recorded as failed* (figures zeroed) instead of
    /// aborting the sweep.  `None` for every successfully computed cell.
    pub failed: Option<String>,
}

impl SweepCell {
    /// Folds the cell's *deterministic* fields (timing-model outputs, not
    /// host timing) into an FNV-1a accumulator.  A failed cell additionally
    /// folds its failure marker, so a report with a failed cell can never
    /// collide with a fully successful one.  Successful cells fold exactly
    /// the bytes they always did — digests of fault-free sweeps are
    /// unchanged across this field's introduction.
    pub(crate) fn fold_digest(&self, h: &mut Fnv1a) {
        h.write(self.model.as_bytes());
        h.write(self.workload.as_bytes());
        for v in [
            self.slice_buffer_entries as u64,
            self.mshr_count as u64,
            self.l2_hit_latency,
            self.seed,
            self.instructions,
            self.cycles,
            self.state_digest,
        ] {
            h.write_u64(v);
        }
        if let Some(reason) = &self.failed {
            h.write(b"failed");
            h.write(reason.as_bytes());
        }
    }
}

/// Flattens a panic reason for embedding in reports and JSON documents:
/// quotes, backslashes and control characters (all of which the flat schema
/// writer must never emit inside a string) become plain substitutes.
pub(crate) fn sanitize_reason(reason: &str) -> String {
    reason
        .chars()
        .map(|c| match c {
            '"' => '\'',
            '\\' => '/',
            c if c.is_control() => ' ',
            c => c,
        })
        .collect()
}

/// Typed failures rendering a [`SweepReport`] — a report whose cells
/// reference workloads missing from its header (a hand-edited or hostile
/// `BENCH_sweep.json`) is an error, not a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// A cell names a workload absent from [`SweepReport::workloads`].
    UnknownWorkload {
        /// Index of the offending cell in [`SweepReport::cells`].
        cell: usize,
        /// The workload name the header doesn't carry.
        workload: String,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::UnknownWorkload { cell, workload } => write!(
                f,
                "cell {cell} references workload {workload:?} not in the report header"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

/// The assembled result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Worker threads the sweep ran on (1 = serial; excluded from the
    /// digest — parallelism must not change results).
    pub threads: usize,
    /// Whether the sweep executed in warm-fork mode (excluded from the
    /// digest — forking must not change deterministic results).
    pub warm_fork: bool,
    /// Instruction budget per trace.
    pub insts: usize,
    /// The spec's base seed.
    pub seed: u64,
    /// Timing repetitions per cell.
    pub reps: u32,
    /// The spec's workload columns, in matrix order.  Header metadata, like
    /// `threads` — excluded from the digest, which covers cells only.
    pub workloads: Vec<String>,
    /// One cell per grid point, in [`crate::SweepSpec::expand`] order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Deterministic digest over every cell's timing-model outputs.  Two
    /// sweeps of the same spec — serial or on any number of threads, cold or
    /// served from the result cache, local or over the wire — must produce
    /// byte-identical digests.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.cells.len() as u64);
        h.write_u64(self.insts as u64);
        h.write_u64(self.seed);
        for c in &self.cells {
            c.fold_digest(&mut h);
        }
        h.finish()
    }

    /// Aggregate throughput over the sweep: total simulated instructions per
    /// total host second, in millions.
    pub fn aggregate_mips(&self) -> f64 {
        let inst: u64 = self.cells.iter().map(|c| c.instructions).sum();
        let secs: f64 = self.cells.iter().map(|c| c.host_seconds).sum();
        if secs > 0.0 {
            inst as f64 / secs / 1.0e6
        } else {
            0.0
        }
    }

    /// Renders the report as the `BENCH_sweep.json` document (schema
    /// [`crate::schema::SCHEMA`]; hand-rolled writer, flat and stable).
    /// Delegates to [`crate::schema::to_json`] — the one emitter the server,
    /// the figure renderer and the baseline gate all share.
    pub fn to_json(&self) -> String {
        crate::schema::to_json(self)
    }

    /// Renders the sweep as an aligned text matrix: one row per
    /// (model, configuration) point, one IPC column per workload (column
    /// order is the header's [`SweepReport::workloads`]).
    ///
    /// # Errors
    ///
    /// [`ReportError::UnknownWorkload`] if a cell references a workload the
    /// header doesn't list (possible only for hand-assembled or hand-edited
    /// reports — [`crate::run_sweep`] always produces a consistent header).
    pub fn render_matrix(&self) -> Result<String, ReportError> {
        /// One matrix slot: absent, a computed IPC, or a failed cell.
        enum Slot {
            Empty,
            Ipc(f64),
            Failed,
        }
        let workloads: Vec<&str> = self.workloads.iter().map(|w| w.as_str()).collect();
        let col = workloads.iter().map(|w| w.len()).max().unwrap_or(0).max(7);
        let mut rows: Vec<(String, Vec<Slot>)> = Vec::new();
        for (k, c) in self.cells.iter().enumerate() {
            let label = format!(
                "{:<10} sb={:<4} mshr={:<3} l2={:<3}",
                c.model, c.slice_buffer_entries, c.mshr_count, c.l2_hit_latency
            );
            if rows.last().map(|(l, _)| l.as_str()) != Some(label.as_str()) {
                rows.push((
                    label,
                    std::iter::repeat_with(|| Slot::Empty)
                        .take(workloads.len())
                        .collect(),
                ));
            }
            let wl = workloads
                .iter()
                .position(|w| *w == c.workload)
                .ok_or_else(|| ReportError::UnknownWorkload {
                    cell: k,
                    workload: c.workload.clone(),
                })?;
            let at = rows.len() - 1;
            rows[at].1[wl] = if c.failed.is_some() {
                Slot::Failed
            } else {
                Slot::Ipc(c.ipc)
            };
        }
        let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut s = String::new();
        let _ = write!(s, "{:<label_w$}", "ipc");
        for w in &workloads {
            let _ = write!(s, "  {w:>col$}");
        }
        s.push('\n');
        for (label, vals) in &rows {
            let _ = write!(s, "{label:<label_w$}");
            for v in vals {
                match v {
                    Slot::Ipc(ipc) => {
                        let _ = write!(s, "  {ipc:>col$.3}");
                    }
                    Slot::Failed => {
                        let _ = write!(s, "  {:>col$}", "fail");
                    }
                    Slot::Empty => {
                        let _ = write!(s, "  {:>col$}", "-");
                    }
                }
            }
            s.push('\n');
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_sweep;
    use crate::testutil::tiny_spec;

    #[test]
    fn matrix_rendering_is_aligned_and_complete() {
        let spec = tiny_spec();
        let r = run_sweep(&spec, 4).unwrap();
        let m = r.render_matrix().expect("consistent header");
        let lines: Vec<&str> = m.lines().collect();
        // Header + one row per (model, config) = 1 + 2*4.
        assert_eq!(lines.len(), 1 + 8, "{m}");
        let width = lines[0].len();
        for l in &lines {
            assert_eq!(l.len(), width, "misaligned row: {l:?}\n{m}");
        }
        for w in icfp_workloads::STANDARD_NAMES {
            assert!(lines[0].contains(w));
        }
        assert!(m.contains("sb=64") && m.contains("sb=128"));
    }

    #[test]
    fn matrix_rendering_of_an_inconsistent_header_is_a_typed_error() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["branchy".into()];
        spec.l2_hit_latencies = vec![20];
        spec.slice_buffer_entries = vec![128];
        let mut r = run_sweep(&spec, 1).unwrap();
        // Simulate a hand-edited BENCH_sweep.json whose header lost a
        // workload its cells still reference.
        r.workloads = vec!["pointer-chase".into()];
        match r.render_matrix() {
            Err(ReportError::UnknownWorkload { cell, workload }) => {
                assert_eq!(cell, 0);
                assert_eq!(workload, "branchy");
            }
            other => panic!("expected UnknownWorkload, got {other:?}"),
        }
        // And a fully emptied header.
        r.workloads.clear();
        assert!(r.render_matrix().is_err());
    }
}
