//! The one `BENCH_sweep.json` schema module (`icfp-sweep/v2`).
//!
//! Everything that emits or consumes a sweep document — the local CLI
//! writer, the `icfp-sweepd` server, `icfp-bench --figures`, the baseline
//! gate — goes through this module, so there is exactly one writer and one
//! parser to keep in agreement.  The format is hand-rolled flat JSON (the
//! workspace carries no JSON dependency): one header, one cell object per
//! line, and a recorded `report_digest` the parser recomputes and verifies.

use crate::report::{SweepCell, SweepReport};
use std::fmt;
use std::fmt::Write as _;

/// The document schema identifier.  `v2` added the `workloads` header array
/// (the matrix column order, so rendering no longer infers it from cells).
pub const SCHEMA: &str = "icfp-sweep/v2";

/// Typed failures parsing a sweep document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The document carries no `"schema"` field, or a different schema.
    NotASweepDoc {
        /// The schema string found, if any.
        found: Option<String>,
    },
    /// A required header field is absent.
    MissingField {
        /// The field name.
        field: &'static str,
    },
    /// A line exists for the field but its value would not parse.
    Malformed {
        /// What was being parsed.
        what: &'static str,
        /// 1-based line number in the document.
        line: usize,
    },
    /// The recorded `report_digest` does not match the digest recomputed
    /// from the parsed cells — a corrupted or hand-edited document.
    DigestMismatch {
        /// The digest the document recorded.
        recorded: u64,
        /// The digest its cells actually produce.
        computed: u64,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::NotASweepDoc { found: Some(s) } => {
                write!(f, "not a {SCHEMA} document (schema {s:?})")
            }
            SchemaError::NotASweepDoc { found: None } => {
                write!(f, "not a {SCHEMA} document (no schema field)")
            }
            SchemaError::MissingField { field } => write!(f, "missing field {field:?}"),
            SchemaError::Malformed { what, line } => {
                write!(f, "malformed {what} on line {line}")
            }
            SchemaError::DigestMismatch { recorded, computed } => write!(
                f,
                "report digest mismatch: document records {recorded:#018x}, cells produce {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Renders a report as the `BENCH_sweep.json` document.  Byte-stable: the
/// same report always produces the same bytes, so digest-identical reports
/// produce identical documents.
pub fn to_json(report: &SweepReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"threads\": {},", report.threads);
    let _ = writeln!(s, "  \"warm_fork\": {},", report.warm_fork);
    let _ = writeln!(s, "  \"insts\": {},", report.insts);
    let _ = writeln!(s, "  \"seed\": {},", report.seed);
    let _ = writeln!(s, "  \"reps\": {},", report.reps);
    s.push_str("  \"workloads\": [");
    for (k, w) in report.workloads.iter().enumerate() {
        if k > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{w:?}");
    }
    s.push_str("],\n");
    let _ = writeln!(s, "  \"report_digest\": \"{:#018x}\",", report.digest());
    s.push_str("  \"cells\": [\n");
    for (k, c) in report.cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"model\": {:?}, \"workload\": {:?}, \"slice_buffer\": {}, \
             \"mshrs\": {}, \"l2_hit_latency\": {}, \"seed\": {}, \
             \"instructions\": {}, \"cycles\": {}, \"ipc\": {:.4}, \
             \"l1d_mpki\": {:.3}, \"l2_mpki\": {:.3}, \"host_seconds\": {:.6}, \
             \"mips\": {:.3}, \"state_digest\": \"{:#018x}\"}}",
            c.model,
            c.workload,
            c.slice_buffer_entries,
            c.mshr_count,
            c.l2_hit_latency,
            c.seed,
            c.instructions,
            c.cycles,
            c.ipc,
            c.l1d_mpki,
            c.l2_mpki,
            c.host_seconds,
            c.mips,
            c.state_digest
        );
        if let Some(reason) = &c.failed {
            // Only failed cells carry the field, so fault-free documents are
            // byte-identical to pre-failure-era ones.  Reasons are sanitized
            // at recording time (no quotes/backslashes/control characters),
            // matching the parser's no-escape string extraction.
            s.truncate(s.len() - 1);
            let _ = write!(s, ", \"failed\": {reason:?}}}");
        }
        s.push_str(if k + 1 == report.cells.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ],\n");
    // The aggregate is derived from the *rendered* per-cell host seconds
    // (re-parsed from their 6-decimal form above), not the unrounded values,
    // so the document is a fixed point of parse -> render: re-rendering a
    // parsed report reproduces it byte for byte even when host_seconds
    // rounding would nudge the unrounded aggregate across a 3-decimal
    // boundary.
    let inst: u64 = report.cells.iter().map(|c| c.instructions).sum();
    let secs: f64 = report
        .cells
        .iter()
        .map(|c| {
            format!("{:.6}", c.host_seconds)
                .parse::<f64>()
                .expect("a {:.6}-formatted float always parses")
        })
        .sum();
    let aggregate = if secs > 0.0 {
        inst as f64 / secs / 1.0e6
    } else {
        0.0
    };
    let _ = writeln!(s, "  \"aggregate_mips\": {aggregate:.3}");
    s.push_str("}\n");
    s
}

/// Extracts `"key": "value"` from a line (no escape handling — the schema
/// never emits strings containing quotes or backslashes).
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts a bare numeric token after `"key": `.
fn num_token<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    num_token(line, key)?.parse().ok()
}

fn f64_field(line: &str, key: &str) -> Option<f64> {
    num_token(line, key)?.parse().ok()
}

fn bool_field(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\": ");
    let rest = &line[line.find(&pat)? + pat.len()..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts a `"0x…"`-encoded u64 after `"key": `.
fn hex_field(line: &str, key: &str) -> Option<u64> {
    let s = str_field(line, key)?;
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// Extracts `"key": ["a", "b", …]` from a line.
fn str_array(line: &str, key: &str) -> Option<Vec<String>> {
    let pat = format!("\"{key}\": [");
    let at = line.find(&pat)? + pat.len();
    let body = &line[at..line[at..].find(']')? + at];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let close = tail.find('"')?;
        out.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    Some(out)
}

/// Parses a `BENCH_sweep.json` document back into a [`SweepReport`],
/// verifying the recorded `report_digest` against the digest the parsed
/// cells actually produce.
///
/// # Errors
///
/// Any [`SchemaError`]; notably [`SchemaError::DigestMismatch`] for a
/// document whose cells were edited after it was written.
pub fn parse(doc: &str) -> Result<SweepReport, SchemaError> {
    let schema_line = doc
        .lines()
        .find(|l| l.contains("\"schema\":"))
        .and_then(|l| str_field(l, "schema"));
    match schema_line.as_deref() {
        Some(s) if s == SCHEMA => {}
        found => {
            return Err(SchemaError::NotASweepDoc {
                found: found.map(str::to_string),
            })
        }
    }

    let mut threads = None;
    let mut warm_fork = None;
    let mut insts = None;
    let mut seed = None;
    let mut reps = None;
    let mut workloads = None;
    let mut recorded = None;
    let mut cells: Vec<SweepCell> = Vec::new();
    let mut in_cells = false;

    for (k, line) in doc.lines().enumerate() {
        let lineno = k + 1;
        let malformed = |what| SchemaError::Malformed { what, line: lineno };
        if line.contains("\"cells\":") {
            in_cells = true;
            continue;
        }
        let t = line.trim_start();
        if in_cells && t.starts_with('{') {
            cells.push(parse_cell(t, lineno)?);
            continue;
        }
        if in_cells {
            if t.starts_with(']') {
                in_cells = false;
            }
            continue;
        }
        if line.contains("\"threads\":") {
            threads = Some(u64_field(line, "threads").ok_or(malformed("threads"))?);
        } else if line.contains("\"warm_fork\":") {
            warm_fork = Some(bool_field(line, "warm_fork").ok_or(malformed("warm_fork"))?);
        } else if line.contains("\"insts\":") {
            insts = Some(u64_field(line, "insts").ok_or(malformed("insts"))?);
        } else if line.contains("\"seed\":") {
            seed = Some(u64_field(line, "seed").ok_or(malformed("seed"))?);
        } else if line.contains("\"reps\":") {
            reps = Some(u64_field(line, "reps").ok_or(malformed("reps"))?);
        } else if line.contains("\"workloads\":") {
            workloads = Some(str_array(line, "workloads").ok_or(malformed("workloads"))?);
        } else if line.contains("\"report_digest\":") {
            recorded = Some(hex_field(line, "report_digest").ok_or(malformed("report_digest"))?);
        }
    }

    let report = SweepReport {
        threads: threads.ok_or(SchemaError::MissingField { field: "threads" })? as usize,
        warm_fork: warm_fork.ok_or(SchemaError::MissingField { field: "warm_fork" })?,
        insts: insts.ok_or(SchemaError::MissingField { field: "insts" })? as usize,
        seed: seed.ok_or(SchemaError::MissingField { field: "seed" })?,
        reps: reps.ok_or(SchemaError::MissingField { field: "reps" })? as u32,
        workloads: workloads.ok_or(SchemaError::MissingField { field: "workloads" })?,
        cells,
    };
    let recorded = recorded.ok_or(SchemaError::MissingField {
        field: "report_digest",
    })?;
    let computed = report.digest();
    if computed != recorded {
        return Err(SchemaError::DigestMismatch { recorded, computed });
    }
    Ok(report)
}

/// Parses one cell object line.
fn parse_cell(line: &str, lineno: usize) -> Result<SweepCell, SchemaError> {
    let malformed = |what| SchemaError::Malformed { what, line: lineno };
    Ok(SweepCell {
        model: str_field(line, "model").ok_or(malformed("cell model"))?,
        workload: str_field(line, "workload").ok_or(malformed("cell workload"))?,
        slice_buffer_entries: u64_field(line, "slice_buffer").ok_or(malformed("cell slice_buffer"))?
            as usize,
        mshr_count: u64_field(line, "mshrs").ok_or(malformed("cell mshrs"))? as usize,
        l2_hit_latency: u64_field(line, "l2_hit_latency").ok_or(malformed("cell l2_hit_latency"))?,
        seed: u64_field(line, "seed").ok_or(malformed("cell seed"))?,
        instructions: u64_field(line, "instructions").ok_or(malformed("cell instructions"))?,
        cycles: u64_field(line, "cycles").ok_or(malformed("cell cycles"))?,
        ipc: f64_field(line, "ipc").ok_or(malformed("cell ipc"))?,
        l1d_mpki: f64_field(line, "l1d_mpki").ok_or(malformed("cell l1d_mpki"))?,
        l2_mpki: f64_field(line, "l2_mpki").ok_or(malformed("cell l2_mpki"))?,
        host_seconds: f64_field(line, "host_seconds").ok_or(malformed("cell host_seconds"))?,
        mips: f64_field(line, "mips").ok_or(malformed("cell mips"))?,
        state_digest: hex_field(line, "state_digest").ok_or(malformed("cell state_digest"))?,
        failed: str_field(line, "failed"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_sweep;
    use crate::testutil::tiny_spec;

    #[test]
    fn json_is_well_formed_and_carries_the_digest() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["branchy".into()];
        spec.l2_hit_latencies = vec![20];
        let r = run_sweep(&spec, 2).unwrap();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"icfp-sweep/v2\""));
        assert!(json.contains("\"workloads\": [\"branchy\"],"));
        assert!(json.contains(&format!("{:#018x}", r.digest())));
        assert!(json.contains("\"workload\": \"branchy\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn documents_round_trip_and_re_emit_byte_identically() {
        let spec = tiny_spec();
        let r = run_sweep(&spec, 4).unwrap();
        let json = to_json(&r);
        let back = parse(&json).expect("parse");
        assert_eq!(back.digest(), r.digest());
        assert_eq!(back.threads, r.threads);
        assert_eq!(back.workloads, r.workloads);
        assert_eq!(back.cells.len(), r.cells.len());
        // Deterministic cell fields survive exactly.
        for (a, b) in r.cells.iter().zip(&back.cells) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.state_digest, b.state_digest);
        }
        // Emitting the parsed report reproduces the document byte-for-byte
        // (figures are written at fixed precision, so parse ∘ emit is the
        // identity on documents the emitter wrote).
        assert_eq!(to_json(&back), json);
    }

    #[test]
    fn hostile_documents_are_typed_errors_not_panics() {
        let spec = {
            let mut s = tiny_spec();
            s.workloads = vec!["branchy".into()];
            s.l2_hit_latencies = vec![20];
            s.slice_buffer_entries = vec![128];
            s
        };
        let r = run_sweep(&spec, 1).unwrap();
        let json = to_json(&r);

        // Wrong schema.
        let old = json.replace("icfp-sweep/v2", "icfp-sweep/v1");
        assert_eq!(
            parse(&old),
            Err(SchemaError::NotASweepDoc {
                found: Some("icfp-sweep/v1".into())
            })
        );
        assert!(matches!(
            parse("{}\n"),
            Err(SchemaError::NotASweepDoc { found: None })
        ));

        // Dropped header field.
        let gone = json
            .lines()
            .filter(|l| !l.contains("\"workloads\":"))
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(
            parse(&gone),
            Err(SchemaError::MissingField { field: "workloads" })
        );

        // Edited cell figures: recorded digest no longer matches.
        let cycles = r.cells[0].cycles;
        let edited = json.replace(
            &format!("\"cycles\": {cycles}"),
            &format!("\"cycles\": {}", cycles + 1),
        );
        assert!(matches!(
            parse(&edited),
            Err(SchemaError::DigestMismatch { .. })
        ));

        // Garbage in a numeric field.
        let garbled = json.replace("\"threads\": ", "\"threads\": x");
        assert!(matches!(
            parse(&garbled),
            Err(SchemaError::Malformed {
                what: "threads",
                ..
            })
        ));
    }
}
