//! `icfp-sweepd` — the persistent sweep service.
//!
//! Listens on a TCP address, accepts `icfp-wire/v2` connections
//! (`icfp-bench sweep submit --server ADDR` is the client), executes each
//! submitted sweep through the shared executor, and streams cells back as
//! they finish.  With `--cache-dir` the server keeps a persistent
//! `icfp-cache/v1` result store — opened once and shared by every
//! connection — so repeated or overlapping grids are served from disk with
//! reports byte-identical to cold runs.
//!
//! With `--worker` the process advertises the `"worker"` capability and is
//! intended as one member of a distributed pool: a coordinator
//! (`icfp-bench sweep submit --workers A,B,...`) plans the grid into
//! shards, submits one shard per connection (spec slice + per-column trace
//! digests, never trace bytes), and merges the streamed cells
//! deterministically.  Each worker keeps its *own* `--cache-dir`, so a
//! worker that is killed and restarted re-serves its finished cells as
//! cache hits.
//!
//! Connections are served concurrently (thread-per-connection, bounded by
//! `--conn-limit`), each under an `--io-timeout-ms` read/write deadline so
//! a stalled peer is reaped instead of hanging a thread.  SIGINT/SIGTERM
//! trigger a graceful drain: the server stops accepting, in-flight cells
//! finish (and land in the cache), interrupted submissions get a typed
//! error frame, and the process exits cleanly.

use icfp_sweep::wire::{serve, AcceptOptions, ServeOptions};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "icfp-sweepd — persistent sweep service (icfp-wire/v2)

USAGE:
    icfp-sweepd [OPTIONS]

OPTIONS:
    --worker             advertise the \"worker\" capability: this process is
                         one member of a distributed pool, serving shard
                         submissions from a coordinator (it still serves
                         whole-spec submissions too)
    --listen ADDR        address to bind (default 127.0.0.1:7400; use :0 for
                         an ephemeral port)
    --threads N          default worker threads for submissions that request
                         0 (default: host parallelism)
    --cache-dir DIR      enable the persistent icfp-cache/v1 result cache
                         (opened once, shared by all connections)
    --ready-file PATH    after binding, write the bound address to PATH
                         (for scripts that need the ephemeral port)
    --max-conns N        exit after N successfully served submissions
                         (default: serve forever; failed handshakes and
                         hostile connections never count)
    --conn-limit N       serve at most N connections concurrently; further
                         connections queue in the accept backlog (default 4)
    --io-timeout-ms MS   per-stream read/write deadline; stalled peers are
                         reaped with a typed timeout (default 30000; 0 = no
                         deadline)
    --panic-retries N    retries for a panicking cell before it is recorded
                         as a typed failed cell in the report (default 2)
    --help               print this help

SIGNALS:
    SIGINT/SIGTERM       graceful drain: stop accepting, finish in-flight
                         cells (cache flushed per cell), then exit
";

struct Args {
    listen: String,
    threads: usize,
    cache_dir: Option<PathBuf>,
    ready_file: Option<PathBuf>,
    max_conns: Option<u64>,
    conn_limit: usize,
    io_timeout_ms: u64,
    panic_retries: u32,
    worker: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7400".to_string(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        cache_dir: None,
        ready_file: None,
        max_conns: None,
        conn_limit: 4,
        io_timeout_ms: 30_000,
        panic_retries: icfp_sweep::executor::DEFAULT_PANIC_RETRIES,
        worker: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--ready-file" => args.ready_file = Some(PathBuf::from(value("--ready-file")?)),
            "--max-conns" => {
                args.max_conns = Some(
                    value("--max-conns")?
                        .parse()
                        .map_err(|e| format!("--max-conns: {e}"))?,
                )
            }
            "--conn-limit" => {
                args.conn_limit = value("--conn-limit")?
                    .parse()
                    .map_err(|e| format!("--conn-limit: {e}"))?
            }
            "--io-timeout-ms" => {
                args.io_timeout_ms = value("--io-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--io-timeout-ms: {e}"))?
            }
            "--panic-retries" => {
                args.panic_retries = value("--panic-retries")?
                    .parse()
                    .map_err(|e| format!("--panic-retries: {e}"))?
            }
            "--worker" => args.worker = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// The process-wide graceful-shutdown flag, set by the signal handler.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // Only async-signal-safe work here: flip the flag.  The serve loop's
    // watcher thread polls it and wakes the blocked accept.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)`.  Declared directly (the workspace carries no libc
    /// crate); the returned previous handler is ignored.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("icfp-sweepd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("icfp-sweepd: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.listen.clone());
    if let Some(path) = &args.ready_file {
        if let Err(e) = std::fs::write(path, &bound) {
            eprintln!("icfp-sweepd: cannot write ready file {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "icfp-sweepd{}: listening on {bound} ({} worker threads, {} concurrent conns, \
         {} io deadline, cache {})",
        if args.worker { " [worker]" } else { "" },
        args.threads,
        args.conn_limit,
        if args.io_timeout_ms > 0 {
            format!("{}ms", args.io_timeout_ms)
        } else {
            "no".to_string()
        },
        match &args.cache_dir {
            Some(d) => d.display().to_string(),
            None => "disabled".to_string(),
        }
    );

    // SAFETY: `signal` only installs `on_signal`, which does nothing but
    // store to an atomic — async-signal-safe by construction.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    let shutdown = Arc::new(AtomicBool::new(false));
    // Bridge the C-handler static into the Arc the serve loop watches.
    {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            if SHUTDOWN.load(Ordering::SeqCst) {
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }

    let opts = ServeOptions {
        threads: args.threads,
        cache_dir: args.cache_dir.clone(),
        io_timeout: (args.io_timeout_ms > 0).then(|| Duration::from_millis(args.io_timeout_ms)),
        panic_retries: args.panic_retries,
        cancel: Some(Arc::clone(&shutdown)),
        worker: args.worker,
        ..ServeOptions::default()
    };
    let accept = AcceptOptions {
        max_inflight: args.conn_limit.max(1),
        max_submissions: args.max_conns,
        shutdown: Some(Arc::clone(&shutdown)),
    };
    let summary = serve(listener, opts, accept, |line| {
        eprintln!("icfp-sweepd: {line}");
    });
    eprintln!(
        "icfp-sweepd: drained and exiting ({} connections, {} submissions served, {} failed)",
        summary.connections, summary.submissions, summary.failed
    );
    ExitCode::SUCCESS
}
