//! `icfp-sweepd` — the persistent sweep service.
//!
//! Listens on a TCP address, accepts `icfp-wire/v1` connections
//! (`icfp-bench sweep submit --server ADDR` is the client), executes each
//! submitted sweep through the shared executor, and streams cells back as
//! they finish.  With `--cache-dir` the server keeps a persistent
//! `icfp-cache/v1` result store: repeated or overlapping grids are served
//! from disk with reports byte-identical to cold runs.

use icfp_sweep::wire::{handle_conn, ServeOptions};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "icfp-sweepd — persistent sweep service (icfp-wire/v1)

USAGE:
    icfp-sweepd [OPTIONS]

OPTIONS:
    --listen ADDR      address to bind (default 127.0.0.1:7400; use :0 for
                       an ephemeral port)
    --threads N        default worker threads for submissions that request 0
                       (default: host parallelism)
    --cache-dir DIR    enable the persistent icfp-cache/v1 result cache
    --ready-file PATH  after binding, write the bound address to PATH
                       (for scripts that need the ephemeral port)
    --max-conns N      exit after serving N connections (default: serve
                       forever)
    --help             print this help
";

struct Args {
    listen: String,
    threads: usize,
    cache_dir: Option<PathBuf>,
    ready_file: Option<PathBuf>,
    max_conns: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7400".to_string(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        cache_dir: None,
        ready_file: None,
        max_conns: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--ready-file" => args.ready_file = Some(PathBuf::from(value("--ready-file")?)),
            "--max-conns" => {
                args.max_conns = Some(
                    value("--max-conns")?
                        .parse()
                        .map_err(|e| format!("--max-conns: {e}"))?,
                )
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("icfp-sweepd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("icfp-sweepd: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.listen.clone());
    if let Some(path) = &args.ready_file {
        if let Err(e) = std::fs::write(path, &bound) {
            eprintln!("icfp-sweepd: cannot write ready file {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "icfp-sweepd: listening on {bound} ({} worker threads, cache {})",
        args.threads,
        match &args.cache_dir {
            Some(d) => d.display().to_string(),
            None => "disabled".to_string(),
        }
    );

    let opts = ServeOptions {
        threads: args.threads,
        cache_dir: args.cache_dir.clone(),
    };
    let mut served = 0u64;
    // Connections are served one at a time: each sweep already saturates the
    // host with its own worker pool, so interleaving sweeps would only slow
    // both down.
    while args.max_conns.is_none_or(|n| served < n) {
        let stream = match listener.accept() {
            Ok((stream, peer)) => {
                eprintln!("icfp-sweepd: connection from {peer}");
                stream
            }
            Err(e) => {
                eprintln!("icfp-sweepd: accept failed: {e}");
                continue;
            }
        };
        match handle_conn(stream, &opts) {
            Ok(summary) => eprintln!(
                "icfp-sweepd: connection closed ({} sweeps, {} cache hits, {} computed)",
                summary.submits, summary.hits, summary.misses
            ),
            Err(e) => eprintln!("icfp-sweepd: connection failed: {e}"),
        }
        served += 1;
    }
    ExitCode::SUCCESS
}
