//! # icfp-sweep — parallel multi-configuration sweep orchestration
//!
//! The paper's headline results (the Figure 6/7-style comparisons) come from
//! running one binary's timing models across *many* machine configurations.
//! This crate is the subsystem that does that at scale:
//!
//! * [`SweepSpec`] — a cartesian grid over [`CoreConfig`] axes (slice-buffer
//!   capacity, MSHR count, L2 hit latency) crossed with core models and
//!   workloads;
//! * [`SweepSpec::expand`] — the grid flattened into an ordered list of
//!   [`SweepJob`]s with *deterministic per-job seeds* (a pure function of the
//!   spec seed and the workload name, so every cell of a workload column
//!   simulates the identical trace and cells are comparable);
//! * [`run_sweep`] — executes the jobs on a `std::thread` pool.  Workers pull
//!   jobs from an atomic counter and post results back by job index, so the
//!   assembled [`SweepReport`] is byte-identical regardless of thread count
//!   or scheduling;
//! * [`SweepReport`] — one [`SweepCell`] per grid point (IPC, MPKI, MIPS,
//!   state digest) with a deterministic [`SweepReport::digest`], a
//!   `BENCH_sweep.json` serializer and an aligned text matrix renderer.
//!
//! ## Shared sources and warm-forking
//!
//! Every cell of a workload column simulates the identical trace, so the
//! executor builds each column's trace **once** as an
//! `Arc<dyn TraceSource>` shared by all of that column's jobs — large grids
//! no longer pay per-job trace generation or hold per-job copies, and a
//! column backed by a streamed source (an `icfp-trace/v1` file, a resumable
//! generator) shares one bounded block cache across the whole pool.
//!
//! With [`SweepSpec::warm_fork`] enabled, jobs are additionally grouped so
//! that cells whose deterministic inputs are provably identical — same
//! model, same workload trace, and configurations that differ only along
//! axes the model never reads (see [`CoreModel::reads_slice_buffer`]) — run
//! as one *fork group*: the group leader runs to the column's halfway
//! instruction, captures a [`icfp_sim::SimCheckpoint`] (a mid-trace state
//! for the incremental iCFP model; the finished, undrained run for the
//! whole-trace models, which complete on their first step), finishes its
//! own run, and every member resumes from that checkpoint instead of
//! re-simulating from cycle zero.  Because checkpoint resume is
//! bit-identical to an uninterrupted run,
//! the warm-fork report's deterministic fields (cycles, IPC, MPKI, state
//! digests — everything in [`SweepReport::digest`]) equal the cold run's
//! exactly, serial or threaded; only the advisory host-time figures change.
//!
//! `icfp-bench --sweep` (with `--warm-fork`) is the CLI front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icfp_core::{CoreConfig, CoreModel};
use icfp_isa::{ArenaSource, Trace, TraceSource};
use icfp_sim::{SimConfig, SimReport, Simulator};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use icfp_isa::Fnv1a;

/// One splitmix64 scramble step (for deriving per-workload trace seeds).
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A cartesian sweep specification: models × config axes × workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Core models to sweep (rows of the matrix).
    pub models: Vec<CoreModel>,
    /// Slice-buffer capacities to sweep (Table 1 default: 128).
    pub slice_buffer_entries: Vec<usize>,
    /// MSHR counts to sweep (Table 1 default: 64).
    pub mshr_counts: Vec<usize>,
    /// L2 hit latencies to sweep (the Figure 6 axis; Table 1 default: 20).
    pub l2_hit_latencies: Vec<u64>,
    /// Workload names (columns; resolved via [`icfp_workloads::by_name`]).
    pub workloads: Vec<String>,
    /// Dynamic instruction budget per workload trace.
    pub insts: usize,
    /// Base seed; per-workload trace seeds are derived from it.
    pub seed: u64,
    /// Timing repetitions per cell (the median host time is reported).
    pub reps: u32,
    /// Warm-fork execution: fork groups of equivalent cells resume from one
    /// checkpoint per group instead of re-simulating from cycle zero (see the
    /// crate docs).  Deterministic outputs are unchanged; host-time figures
    /// measure only the work actually performed.
    pub warm_fork: bool,
}

impl SweepSpec {
    /// A spec over `models` × `workloads` at the paper-default configuration
    /// point (single value on every axis).
    pub fn new(models: Vec<CoreModel>, workloads: Vec<String>, insts: usize, seed: u64) -> Self {
        SweepSpec {
            models,
            slice_buffer_entries: vec![128],
            mshr_counts: vec![64],
            l2_hit_latencies: vec![20],
            workloads,
            insts,
            seed,
            reps: 1,
            warm_fork: false,
        }
    }

    /// Number of grid cells the spec expands to.
    pub fn cell_count(&self) -> usize {
        self.models.len()
            * self.slice_buffer_entries.len()
            * self.mshr_counts.len()
            * self.l2_hit_latencies.len()
            * self.workloads.len()
    }

    /// Validates the spec: every axis non-empty, every workload known.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.models.is_empty() {
            return Err("sweep spec has no models".into());
        }
        if self.workloads.is_empty() {
            return Err("sweep spec has no workloads".into());
        }
        if self.slice_buffer_entries.is_empty()
            || self.mshr_counts.is_empty()
            || self.l2_hit_latencies.is_empty()
        {
            return Err("sweep spec has an empty configuration axis".into());
        }
        if self.insts == 0 {
            return Err("sweep spec has a zero instruction budget".into());
        }
        for w in &self.workloads {
            icfp_workloads::by_name_or_err(w, 1, 0)?;
        }
        Ok(())
    }

    /// The deterministic trace seed for a workload column: a pure function of
    /// the spec seed and the workload name, so every cell in the column
    /// simulates the identical trace regardless of job order or thread count.
    pub fn workload_seed(&self, workload: &str) -> u64 {
        splitmix(self.seed ^ icfp_isa::fnv1a(workload.as_bytes()))
    }

    /// Expands the grid into jobs, in deterministic row-major order
    /// (model, slice buffer, MSHRs, L2 latency, workload — workload
    /// innermost, so each matrix row is a contiguous run of jobs).
    pub fn expand(&self) -> Vec<SweepJob> {
        let mut jobs = Vec::with_capacity(self.cell_count());
        for &model in &self.models {
            for &slice in &self.slice_buffer_entries {
                for &mshrs in &self.mshr_counts {
                    for &l2 in &self.l2_hit_latencies {
                        for workload in &self.workloads {
                            let mut config = model.default_config();
                            config.slice_buffer_entries = slice;
                            config.mem.max_outstanding_misses = mshrs;
                            config.mem.l2_hit_latency = l2;
                            jobs.push(SweepJob {
                                index: jobs.len(),
                                model,
                                config,
                                workload: workload.clone(),
                                insts: self.insts,
                                seed: self.workload_seed(workload),
                                reps: self.reps.max(1),
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

/// One grid point, ready to execute.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Position in the expanded job list (and in `SweepReport::cells`).
    pub index: usize,
    /// Core model.
    pub model: CoreModel,
    /// Fully resolved configuration (model default + axis overrides).
    pub config: CoreConfig,
    /// Workload name.
    pub workload: String,
    /// Dynamic instruction budget.
    pub insts: usize,
    /// Deterministic trace seed (see [`SweepSpec::workload_seed`]).
    pub seed: u64,
    /// Timing repetitions (median is kept).
    pub reps: u32,
}

impl SweepJob {
    /// Executes the job standalone: generates its trace and runs it through
    /// the shared warmup + median-of-N timing protocol
    /// ([`icfp_sim::median_run`]).
    pub fn run(&self) -> SweepCell {
        let trace = icfp_workloads::by_name(&self.workload, self.insts, self.seed)
            .expect("workload validated by SweepSpec::validate");
        self.run_with_trace(&trace)
    }

    /// Executes the job against an already generated trace.
    pub fn run_with_trace(&self, trace: &Trace) -> SweepCell {
        let config = SimConfig::with_config(self.model, self.config.clone());
        let median = icfp_sim::median_run(&config, trace, self.reps);
        self.cell_from_report(&median)
    }

    /// Executes the job against a shared block-based source (the executor
    /// shares one `Arc<dyn TraceSource>` per workload column across the
    /// pool).  Deterministic outputs are independent of the backing.
    pub fn run_with_source(&self, source: &dyn TraceSource) -> SweepCell {
        let config = SimConfig::with_config(self.model, self.config.clone());
        let median = icfp_sim::median_run_source(&config, source, self.reps);
        self.cell_from_report(&median)
    }

    /// Builds this job's cell from a finished report (the configuration
    /// labels come from the job; the figures from the report).
    fn cell_from_report(&self, report: &SimReport) -> SweepCell {
        SweepCell {
            model: report.core.clone(),
            workload: report.workload.clone(),
            slice_buffer_entries: self.config.slice_buffer_entries,
            mshr_count: self.config.mem.max_outstanding_misses,
            l2_hit_latency: self.config.mem.l2_hit_latency,
            seed: self.seed,
            instructions: report.instructions,
            cycles: report.cycles,
            ipc: report.ipc,
            l1d_mpki: report.l1d_mpki,
            l2_mpki: report.l2_mpki,
            host_seconds: report.host_seconds,
            mips: report.mips,
            state_digest: report.state_digest,
        }
    }

    /// The job's *fork key*: two jobs may share one warm-fork checkpoint iff
    /// their keys are byte-identical — same model, workload, seed and
    /// instruction budget, and configurations equal after normalizing the
    /// axes this model never reads.  Keys are the vendored-serde encoding of
    /// exactly those inputs, so equality is equality of deterministic inputs.
    fn fork_key(&self) -> Vec<u8> {
        let mut cfg = self.config.clone();
        if !self.model.reads_slice_buffer() {
            // The slice-buffer axis is inert for this model: cells differing
            // only along it run the identical simulation.
            cfg.slice_buffer_entries = 0;
            cfg.chain_table_entries = 0;
        }
        serde::to_bytes(&(
            self.model.name().to_string(),
            self.workload.clone(),
            (self.seed, self.insts as u64),
            serde::to_bytes(&cfg),
        ))
    }
}

/// One completed grid cell of a [`SweepReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Core model name.
    pub model: String,
    /// Workload name.
    pub workload: String,
    /// Slice-buffer capacity of this cell's configuration.
    pub slice_buffer_entries: usize,
    /// MSHR count of this cell's configuration.
    pub mshr_count: usize,
    /// L2 hit latency of this cell's configuration.
    pub l2_hit_latency: u64,
    /// Trace seed the cell simulated.
    pub seed: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions per simulated cycle.
    pub ipc: f64,
    /// L1 data-cache misses per 1000 instructions.
    pub l1d_mpki: f64,
    /// L2 misses per 1000 instructions.
    pub l2_mpki: f64,
    /// Median host seconds over the cell's repetitions.
    pub host_seconds: f64,
    /// Simulated MIPS of the median rep.
    pub mips: f64,
    /// Digest of the final architectural state.
    pub state_digest: u64,
}

impl SweepCell {
    /// Folds the cell's *deterministic* fields (timing-model outputs, not
    /// host timing) into an FNV-1a accumulator.
    fn fold_digest(&self, h: &mut Fnv1a) {
        h.write(self.model.as_bytes());
        h.write(self.workload.as_bytes());
        for v in [
            self.slice_buffer_entries as u64,
            self.mshr_count as u64,
            self.l2_hit_latency,
            self.seed,
            self.instructions,
            self.cycles,
            self.state_digest,
        ] {
            h.write_u64(v);
        }
    }
}

/// The assembled result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Worker threads the sweep ran on (1 = serial; excluded from the
    /// digest — parallelism must not change results).
    pub threads: usize,
    /// Whether the sweep executed in warm-fork mode (excluded from the
    /// digest — forking must not change deterministic results).
    pub warm_fork: bool,
    /// Instruction budget per trace.
    pub insts: usize,
    /// The spec's base seed.
    pub seed: u64,
    /// Timing repetitions per cell.
    pub reps: u32,
    /// One cell per grid point, in [`SweepSpec::expand`] order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Deterministic digest over every cell's timing-model outputs.  Two
    /// sweeps of the same spec — serial or on any number of threads — must
    /// produce byte-identical digests.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.cells.len() as u64);
        h.write_u64(self.insts as u64);
        h.write_u64(self.seed);
        for c in &self.cells {
            c.fold_digest(&mut h);
        }
        h.finish()
    }

    /// Aggregate throughput over the sweep: total simulated instructions per
    /// total host second, in millions.
    pub fn aggregate_mips(&self) -> f64 {
        let inst: u64 = self.cells.iter().map(|c| c.instructions).sum();
        let secs: f64 = self.cells.iter().map(|c| c.host_seconds).sum();
        if secs > 0.0 {
            inst as f64 / secs / 1.0e6
        } else {
            0.0
        }
    }

    /// Renders the report as the `BENCH_sweep.json` document
    /// (schema `icfp-sweep/v1`; hand-rolled writer, flat and stable).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"icfp-sweep/v1\",");
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"warm_fork\": {},", self.warm_fork);
        let _ = writeln!(s, "  \"insts\": {},", self.insts);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"reps\": {},", self.reps);
        let _ = writeln!(s, "  \"report_digest\": \"{:#018x}\",", self.digest());
        s.push_str("  \"cells\": [\n");
        for (k, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"model\": {:?}, \"workload\": {:?}, \"slice_buffer\": {}, \
                 \"mshrs\": {}, \"l2_hit_latency\": {}, \"seed\": {}, \
                 \"instructions\": {}, \"cycles\": {}, \"ipc\": {:.4}, \
                 \"l1d_mpki\": {:.3}, \"l2_mpki\": {:.3}, \"host_seconds\": {:.6}, \
                 \"mips\": {:.3}, \"state_digest\": \"{:#018x}\"}}",
                c.model,
                c.workload,
                c.slice_buffer_entries,
                c.mshr_count,
                c.l2_hit_latency,
                c.seed,
                c.instructions,
                c.cycles,
                c.ipc,
                c.l1d_mpki,
                c.l2_mpki,
                c.host_seconds,
                c.mips,
                c.state_digest
            );
            s.push_str(if k + 1 == self.cells.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ],\n");
        let _ = writeln!(s, "  \"aggregate_mips\": {:.3}", self.aggregate_mips());
        s.push_str("}\n");
        s
    }

    /// Renders the sweep as an aligned text matrix: one row per
    /// (model, configuration) point, one IPC column per workload.
    pub fn render_matrix(&self) -> String {
        let mut workloads: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !workloads.contains(&c.workload.as_str()) {
                workloads.push(&c.workload);
            }
        }
        let col = workloads
            .iter()
            .map(|w| w.len())
            .max()
            .unwrap_or(0)
            .max(7);
        let mut rows: Vec<(String, Vec<Option<f64>>)> = Vec::new();
        for c in &self.cells {
            let label = format!(
                "{:<10} sb={:<4} mshr={:<3} l2={:<3}",
                c.model, c.slice_buffer_entries, c.mshr_count, c.l2_hit_latency
            );
            if rows.last().map(|(l, _)| l.as_str()) != Some(label.as_str()) {
                rows.push((label, vec![None; workloads.len()]));
            }
            let wl = workloads.iter().position(|w| *w == c.workload).unwrap();
            rows.last_mut().unwrap().1[wl] = Some(c.ipc);
        }
        let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut s = String::new();
        let _ = write!(s, "{:<label_w$}", "ipc");
        for w in &workloads {
            let _ = write!(s, "  {w:>col$}");
        }
        s.push('\n');
        for (label, vals) in &rows {
            let _ = write!(s, "{label:<label_w$}");
            for v in vals {
                match v {
                    Some(ipc) => {
                        let _ = write!(s, "  {ipc:>col$.3}");
                    }
                    None => {
                        let _ = write!(s, "  {:>col$}", "-");
                    }
                }
            }
            s.push('\n');
        }
        s
    }
}

/// A set of jobs executed from one simulation: the leader (first, lowest
/// expand index) runs — in warm-fork mode checkpointing at the column's
/// halfway point — and every member resumes from the leader's checkpoint.
struct ForkGroup {
    /// Expand indices, leader first (ascending).
    jobs: Vec<usize>,
}

/// Groups jobs by [`SweepJob::fork_key`] (warm-fork mode) or one group per
/// job (cold mode).  Group order follows the leaders' expand order, so the
/// plan — and therefore every deterministic output — is independent of
/// thread count and scheduling.
fn plan_groups(spec: &SweepSpec, jobs: &[SweepJob]) -> Vec<ForkGroup> {
    if !spec.warm_fork {
        return jobs
            .iter()
            .map(|j| ForkGroup { jobs: vec![j.index] })
            .collect();
    }
    let mut by_key: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut groups: Vec<ForkGroup> = Vec::new();
    for job in jobs {
        match by_key.entry(job.fork_key()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                groups[*e.get()].jobs.push(job.index);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push(ForkGroup {
                    jobs: vec![job.index],
                });
            }
        }
    }
    groups
}

/// Executes one warm-fork group.
///
/// Singleton groups — cells nothing else can share — keep the cold path
/// (warmup + median-of-reps timing) and pay no checkpoint.  Groups with
/// members fork: the leader advances to the column's halfway instruction,
/// checkpoints, finishes; each member resumes from the checkpoint.  For the
/// incremental iCFP model that is a genuine mid-trace state (this arises
/// when a grid repeats a configuration); for the whole-trace comparison
/// models — today's only source of multi-member groups, via the inert slice
/// axis — the first step simulates the entire trace, so the checkpoint
/// captures the *finished, undrained* run and members replay its result
/// rather than re-simulating.  Either way the checkpoint round-trip is
/// bit-identical to an uninterrupted run and members share the leader's
/// fork key (identical deterministic inputs), so every produced cell equals
/// its cold-run counterpart in all digested fields.  Host-time figures of
/// forked cells are single-run estimates: each member is charged the
/// group's shared pre-checkpoint wall time plus its own post-resume time,
/// so its MIPS approximates a whole-trace rate instead of counting every
/// instruction against a fraction of the work.
fn run_fork_group(
    jobs: &[SweepJob],
    group: &ForkGroup,
    trace: &Arc<dyn TraceSource>,
) -> Vec<(usize, SweepCell)> {
    let leader = &jobs[group.jobs[0]];
    if group.jobs.len() == 1 {
        return vec![(leader.index, leader.run_with_source(&**trace))];
    }
    let mut sim = Simulator::new(SimConfig::with_config(leader.model, leader.config.clone()));
    sim.load(Arc::clone(trace));
    let t0 = std::time::Instant::now();
    sim.advance_to_inst(trace.len() / 2);
    let front_seconds = t0.elapsed().as_secs_f64();
    let ckpt = sim
        .checkpoint()
        .expect("engine is loaded and not drained at the fork point");
    let mut cells = Vec::with_capacity(group.jobs.len());
    let leader_report = sim.finish_loaded();
    cells.push((leader.index, leader.cell_from_report(&leader_report)));
    for &member in &group.jobs[1..] {
        let mut resumed = Simulator::resume(&ckpt, Arc::clone(trace))
            .expect("resuming against the checkpoint's own trace");
        let mut report = resumed.finish_loaded();
        report.host_seconds += front_seconds;
        report.mips = if report.host_seconds > 0.0 {
            report.instructions as f64 / report.host_seconds / 1.0e6
        } else {
            0.0
        };
        cells.push((member, jobs[member].cell_from_report(&report)));
    }
    cells
}

/// Executes a sweep on `threads` worker threads (1 = serial, in the calling
/// thread).  Each workload column's trace is generated once and shared via
/// `Arc` across every job; with [`SweepSpec::warm_fork`] set, fork groups of
/// equivalent cells resume from one checkpoint per group.  The report's
/// cells are in [`SweepSpec::expand`] order and its digest is independent of
/// `threads` and of warm-forking.
///
/// # Errors
///
/// Returns the [`SweepSpec::validate`] error without running anything.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Result<SweepReport, String> {
    spec.validate()?;
    let jobs = spec.expand();
    let n = jobs.len();

    // One trace source per workload column, shared by reference everywhere.
    // Standard workloads materialize once into an arena (the cursor fast
    // path); the same map could equally hold streamed sources — cells are
    // backing-independent.
    let mut traces: HashMap<&str, Arc<dyn TraceSource>> = HashMap::new();
    for w in &spec.workloads {
        traces.entry(w.as_str()).or_insert_with(|| {
            Arc::new(ArenaSource::new(
                icfp_workloads::by_name(w, spec.insts, spec.workload_seed(w))
                    .expect("workload validated by SweepSpec::validate"),
            ))
        });
    }

    let groups = plan_groups(spec, &jobs);
    let num_groups = groups.len();
    let workers = threads.clamp(1, num_groups.max(1));
    let mut cells: Vec<Option<SweepCell>> = (0..n).map(|_| None).collect();

    let run_group = |k: usize| -> Vec<(usize, SweepCell)> {
        let group = &groups[k];
        let leader = &jobs[group.jobs[0]];
        let trace = &traces[leader.workload.as_str()];
        if spec.warm_fork {
            run_fork_group(&jobs, group, trace)
        } else {
            vec![(leader.index, leader.run_with_source(&**trace))]
        }
    };

    if workers == 1 {
        for k in 0..num_groups {
            for (idx, cell) in run_group(k) {
                cells[idx] = Some(cell);
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Vec<(usize, SweepCell)>>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let run_group = &run_group;
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= num_groups {
                        break;
                    }
                    // A send only fails if the receiver is gone (sweep
                    // abandoned): stop pulling work.
                    if tx.send(run_group(k)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for batch in rx {
                for (idx, cell) in batch {
                    cells[idx] = Some(cell);
                }
            }
        });
    }

    Ok(SweepReport {
        threads: workers,
        warm_fork: spec.warm_fork,
        insts: spec.insts,
        seed: spec.seed,
        reps: spec.reps.max(1),
        cells: cells
            .into_iter()
            .map(|c| c.expect("every job posts exactly one cell"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        // 2 models × (2 slice × 1 mshr × 2 l2 = 4 configs) × 4 workloads
        // = 32 cells, small instruction budget to keep the test fast.
        let mut s = SweepSpec::new(
            vec![CoreModel::Icfp, CoreModel::InOrder],
            icfp_workloads::STANDARD_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            600,
            0xC0DE,
        );
        s.slice_buffer_entries = vec![64, 128];
        s.l2_hit_latencies = vec![10, 20];
        s
    }

    #[test]
    fn expand_is_cartesian_and_ordered() {
        let spec = tiny_spec();
        let jobs = spec.expand();
        assert_eq!(jobs.len(), spec.cell_count());
        assert_eq!(jobs.len(), 32);
        for (k, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, k);
        }
        // Workload is the innermost axis: the first four jobs share a config.
        assert_eq!(jobs[0].workload, "pointer-chase");
        assert_eq!(jobs[3].workload, "streaming");
        assert_eq!(jobs[0].config.slice_buffer_entries, jobs[3].config.slice_buffer_entries);
        // Same workload column ⇒ same trace seed, across models and configs.
        let seed0 = jobs[0].seed;
        for j in jobs.iter().filter(|j| j.workload == "pointer-chase") {
            assert_eq!(j.seed, seed0);
        }
        // Different workloads get different seeds.
        assert_ne!(jobs[0].seed, jobs[1].seed);
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = tiny_spec();
        s.workloads.push("nope".into());
        assert!(run_sweep(&s, 1).is_err());
        let mut s = tiny_spec();
        s.models.clear();
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.l2_hit_latencies.clear();
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.insts = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn same_spec_twice_gives_identical_digests() {
        let spec = tiny_spec();
        let a = run_sweep(&spec, 1).unwrap();
        let b = run_sweep(&spec, 1).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.cycles, cb.cycles);
            assert_eq!(ca.state_digest, cb.state_digest);
        }
    }

    #[test]
    fn serial_and_eight_thread_pools_agree_byte_for_byte() {
        // The acceptance grid: 2 models × 4 configs × 4 workloads.
        let spec = tiny_spec();
        let serial = run_sweep(&spec, 1).unwrap();
        let pooled = run_sweep(&spec, 8).unwrap();
        assert_eq!(serial.digest(), pooled.digest());
        assert_eq!(serial.cells.len(), pooled.cells.len());
        for (cs, cp) in serial.cells.iter().zip(&pooled.cells) {
            assert_eq!(cs.model, cp.model);
            assert_eq!(cs.workload, cp.workload);
            assert_eq!(cs.cycles, cp.cycles, "{} {}", cs.model, cs.workload);
            assert_eq!(cs.ipc, cp.ipc);
            assert_eq!(cs.state_digest, cp.state_digest);
        }
    }

    /// Per-cell deterministic fields (everything in the digest) must match.
    fn assert_deterministically_equal(a: &SweepReport, b: &SweepReport) {
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.model, cb.model);
            assert_eq!(ca.workload, cb.workload);
            assert_eq!(ca.slice_buffer_entries, cb.slice_buffer_entries);
            assert_eq!(ca.mshr_count, cb.mshr_count);
            assert_eq!(ca.l2_hit_latency, cb.l2_hit_latency);
            assert_eq!(ca.seed, cb.seed);
            assert_eq!(ca.instructions, cb.instructions);
            assert_eq!(ca.cycles, cb.cycles, "{} {}", ca.model, ca.workload);
            assert_eq!(ca.ipc, cb.ipc);
            assert_eq!(ca.l1d_mpki, cb.l1d_mpki);
            assert_eq!(ca.l2_mpki, cb.l2_mpki);
            assert_eq!(ca.state_digest, cb.state_digest);
        }
    }

    #[test]
    fn warm_fork_groups_cells_along_inert_axes_only() {
        let spec = {
            let mut s = tiny_spec();
            s.warm_fork = true;
            s
        };
        let jobs = spec.expand();
        let groups = plan_groups(&spec, &jobs);
        // icfp reads the slice axis: its 4 configs × 4 workloads stay
        // singleton groups (16).  in-order ignores it: {sb 64, sb 128}
        // collapse per (l2 latency, workload) — 2 × 4 = 8 groups of two.
        assert_eq!(jobs.len(), 32);
        assert_eq!(groups.len(), 16 + 8, "grouping changed unexpectedly");
        let pairs = groups.iter().filter(|g| g.jobs.len() == 2).count();
        assert_eq!(pairs, 8);
        for g in &groups {
            assert!(g.jobs.windows(2).all(|w| w[0] < w[1]), "leader is lowest index");
            let leader = &jobs[g.jobs[0]];
            for &m in &g.jobs[1..] {
                assert_eq!(jobs[m].model, leader.model);
                assert_eq!(jobs[m].workload, leader.workload);
                assert!(!jobs[m].model.reads_slice_buffer());
            }
        }
        // Cold mode: no grouping at all.
        let cold = tiny_spec();
        assert_eq!(plan_groups(&cold, &jobs).len(), jobs.len());
    }

    #[test]
    fn warm_fork_report_is_deterministically_identical_to_cold_run() {
        // The PR 3 acceptance grid: 2 models × 4 configs × 4 workloads.
        let cold_spec = tiny_spec();
        let warm_spec = {
            let mut s = tiny_spec();
            s.warm_fork = true;
            s
        };
        let cold = run_sweep(&cold_spec, 1).unwrap();
        let warm_serial = run_sweep(&warm_spec, 1).unwrap();
        let warm_pooled = run_sweep(&warm_spec, 8).unwrap();
        assert!(warm_serial.warm_fork && !cold.warm_fork);
        assert_deterministically_equal(&cold, &warm_serial);
        assert_deterministically_equal(&cold, &warm_pooled);
        assert_deterministically_equal(&warm_serial, &warm_pooled);
    }

    #[test]
    fn l2_latency_axis_moves_cycles_monotonically() {
        let mut spec = tiny_spec();
        spec.models = vec![CoreModel::InOrder];
        spec.slice_buffer_entries = vec![128];
        spec.workloads = vec!["pointer-chase".into()];
        spec.l2_hit_latencies = vec![10, 40];
        let r = run_sweep(&spec, 2).unwrap();
        assert_eq!(r.cells.len(), 2);
        assert!(
            r.cells[0].cycles <= r.cells[1].cycles,
            "higher L2 latency cannot be faster: {} vs {}",
            r.cells[0].cycles,
            r.cells[1].cycles
        );
        // Same trace either way.
        assert_eq!(r.cells[0].state_digest, r.cells[1].state_digest);
    }

    #[test]
    fn json_is_well_formed_and_carries_the_digest() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["branchy".into()];
        spec.l2_hit_latencies = vec![20];
        let r = run_sweep(&spec, 2).unwrap();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"icfp-sweep/v1\""));
        assert!(json.contains(&format!("{:#018x}", r.digest())));
        assert!(json.contains("\"workload\": \"branchy\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn matrix_rendering_is_aligned_and_complete() {
        let spec = tiny_spec();
        let r = run_sweep(&spec, 4).unwrap();
        let m = r.render_matrix();
        let lines: Vec<&str> = m.lines().collect();
        // Header + one row per (model, config) = 1 + 2*4.
        assert_eq!(lines.len(), 1 + 8, "{m}");
        let width = lines[0].len();
        for l in &lines {
            assert_eq!(l.len(), width, "misaligned row: {l:?}\n{m}");
        }
        for w in icfp_workloads::STANDARD_NAMES {
            assert!(lines[0].contains(w));
        }
        assert!(m.contains("sb=64") && m.contains("sb=128"));
    }

}
