//! # icfp-sweep — parallel multi-configuration sweep orchestration
//!
//! The paper's headline results (the Figure 6/7-style comparisons) come from
//! running one binary's timing models across *many* machine configurations.
//! This crate is the subsystem that does that at scale:
//!
//! * [`SweepSpec`] — a cartesian grid over [`CoreConfig`] axes (slice-buffer
//!   capacity, MSHR count, L2 hit latency) crossed with core models and
//!   workloads;
//! * [`SweepSpec::expand`] — the grid flattened into an ordered list of
//!   [`SweepJob`]s with *deterministic per-job seeds* (a pure function of the
//!   spec seed and the workload name, so every cell of a workload column
//!   simulates the identical trace and cells are comparable);
//! * [`run_sweep`] — executes the jobs on a `std::thread` pool.  Workers pull
//!   jobs from an atomic counter and post results back by job index, so the
//!   assembled [`SweepReport`] is byte-identical regardless of thread count
//!   or scheduling;
//! * [`SweepReport`] — one [`SweepCell`] per grid point (IPC, MPKI, MIPS,
//!   state digest) with a deterministic [`SweepReport::digest`], a
//!   `BENCH_sweep.json` serializer and an aligned text matrix renderer.
//!
//! `icfp-bench --sweep` is the CLI front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icfp_core::{CoreConfig, CoreModel};
use icfp_sim::SimConfig;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// FNV-1a over a byte slice (the digest primitive used throughout).
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// One splitmix64 scramble step (for deriving per-workload trace seeds).
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A cartesian sweep specification: models × config axes × workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Core models to sweep (rows of the matrix).
    pub models: Vec<CoreModel>,
    /// Slice-buffer capacities to sweep (Table 1 default: 128).
    pub slice_buffer_entries: Vec<usize>,
    /// MSHR counts to sweep (Table 1 default: 64).
    pub mshr_counts: Vec<usize>,
    /// L2 hit latencies to sweep (the Figure 6 axis; Table 1 default: 20).
    pub l2_hit_latencies: Vec<u64>,
    /// Workload names (columns; resolved via [`icfp_workloads::by_name`]).
    pub workloads: Vec<String>,
    /// Dynamic instruction budget per workload trace.
    pub insts: usize,
    /// Base seed; per-workload trace seeds are derived from it.
    pub seed: u64,
    /// Timing repetitions per cell (the median host time is reported).
    pub reps: u32,
}

impl SweepSpec {
    /// A spec over `models` × `workloads` at the paper-default configuration
    /// point (single value on every axis).
    pub fn new(models: Vec<CoreModel>, workloads: Vec<String>, insts: usize, seed: u64) -> Self {
        SweepSpec {
            models,
            slice_buffer_entries: vec![128],
            mshr_counts: vec![64],
            l2_hit_latencies: vec![20],
            workloads,
            insts,
            seed,
            reps: 1,
        }
    }

    /// Number of grid cells the spec expands to.
    pub fn cell_count(&self) -> usize {
        self.models.len()
            * self.slice_buffer_entries.len()
            * self.mshr_counts.len()
            * self.l2_hit_latencies.len()
            * self.workloads.len()
    }

    /// Validates the spec: every axis non-empty, every workload known.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.models.is_empty() {
            return Err("sweep spec has no models".into());
        }
        if self.workloads.is_empty() {
            return Err("sweep spec has no workloads".into());
        }
        if self.slice_buffer_entries.is_empty()
            || self.mshr_counts.is_empty()
            || self.l2_hit_latencies.is_empty()
        {
            return Err("sweep spec has an empty configuration axis".into());
        }
        if self.insts == 0 {
            return Err("sweep spec has a zero instruction budget".into());
        }
        for w in &self.workloads {
            if icfp_workloads::by_name(w, 1, 0).is_none() {
                return Err(format!(
                    "unknown workload {w:?}; valid workloads: {}",
                    icfp_workloads::STANDARD_NAMES.join(", ")
                ));
            }
        }
        Ok(())
    }

    /// The deterministic trace seed for a workload column: a pure function of
    /// the spec seed and the workload name, so every cell in the column
    /// simulates the identical trace regardless of job order or thread count.
    pub fn workload_seed(&self, workload: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fnv1a(&mut h, workload.as_bytes());
        splitmix(self.seed ^ h)
    }

    /// Expands the grid into jobs, in deterministic row-major order
    /// (model, slice buffer, MSHRs, L2 latency, workload — workload
    /// innermost, so each matrix row is a contiguous run of jobs).
    pub fn expand(&self) -> Vec<SweepJob> {
        let mut jobs = Vec::with_capacity(self.cell_count());
        for &model in &self.models {
            for &slice in &self.slice_buffer_entries {
                for &mshrs in &self.mshr_counts {
                    for &l2 in &self.l2_hit_latencies {
                        for workload in &self.workloads {
                            let mut config = model.default_config();
                            config.slice_buffer_entries = slice;
                            config.mem.max_outstanding_misses = mshrs;
                            config.mem.l2_hit_latency = l2;
                            jobs.push(SweepJob {
                                index: jobs.len(),
                                model,
                                config,
                                workload: workload.clone(),
                                insts: self.insts,
                                seed: self.workload_seed(workload),
                                reps: self.reps.max(1),
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

/// One grid point, ready to execute.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Position in the expanded job list (and in `SweepReport::cells`).
    pub index: usize,
    /// Core model.
    pub model: CoreModel,
    /// Fully resolved configuration (model default + axis overrides).
    pub config: CoreConfig,
    /// Workload name.
    pub workload: String,
    /// Dynamic instruction budget.
    pub insts: usize,
    /// Deterministic trace seed (see [`SweepSpec::workload_seed`]).
    pub seed: u64,
    /// Timing repetitions (median is kept).
    pub reps: u32,
}

impl SweepJob {
    /// Executes the job: generates the trace and runs it through the shared
    /// warmup + median-of-N timing protocol ([`icfp_sim::median_run`]).
    pub fn run(&self) -> SweepCell {
        let trace = icfp_workloads::by_name(&self.workload, self.insts, self.seed)
            .expect("workload validated by SweepSpec::validate");
        let config = SimConfig::with_config(self.model, self.config.clone());
        let median = icfp_sim::median_run(&config, &trace, self.reps);
        SweepCell {
            model: median.core.clone(),
            workload: median.workload.clone(),
            slice_buffer_entries: self.config.slice_buffer_entries,
            mshr_count: self.config.mem.max_outstanding_misses,
            l2_hit_latency: self.config.mem.l2_hit_latency,
            seed: self.seed,
            instructions: median.instructions,
            cycles: median.cycles,
            ipc: median.ipc,
            l1d_mpki: median.l1d_mpki,
            l2_mpki: median.l2_mpki,
            host_seconds: median.host_seconds,
            mips: median.mips,
            state_digest: median.state_digest,
        }
    }
}

/// One completed grid cell of a [`SweepReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Core model name.
    pub model: String,
    /// Workload name.
    pub workload: String,
    /// Slice-buffer capacity of this cell's configuration.
    pub slice_buffer_entries: usize,
    /// MSHR count of this cell's configuration.
    pub mshr_count: usize,
    /// L2 hit latency of this cell's configuration.
    pub l2_hit_latency: u64,
    /// Trace seed the cell simulated.
    pub seed: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions per simulated cycle.
    pub ipc: f64,
    /// L1 data-cache misses per 1000 instructions.
    pub l1d_mpki: f64,
    /// L2 misses per 1000 instructions.
    pub l2_mpki: f64,
    /// Median host seconds over the cell's repetitions.
    pub host_seconds: f64,
    /// Simulated MIPS of the median rep.
    pub mips: f64,
    /// Digest of the final architectural state.
    pub state_digest: u64,
}

impl SweepCell {
    /// Folds the cell's *deterministic* fields (timing-model outputs, not
    /// host timing) into an FNV-1a accumulator.
    fn fold_digest(&self, h: &mut u64) {
        fnv1a(h, self.model.as_bytes());
        fnv1a(h, self.workload.as_bytes());
        for v in [
            self.slice_buffer_entries as u64,
            self.mshr_count as u64,
            self.l2_hit_latency,
            self.seed,
            self.instructions,
            self.cycles,
            self.state_digest,
        ] {
            fnv1a(h, &v.to_le_bytes());
        }
    }
}

/// The assembled result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Worker threads the sweep ran on (1 = serial; excluded from the
    /// digest — parallelism must not change results).
    pub threads: usize,
    /// Instruction budget per trace.
    pub insts: usize,
    /// The spec's base seed.
    pub seed: u64,
    /// Timing repetitions per cell.
    pub reps: u32,
    /// One cell per grid point, in [`SweepSpec::expand`] order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Deterministic digest over every cell's timing-model outputs.  Two
    /// sweeps of the same spec — serial or on any number of threads — must
    /// produce byte-identical digests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fnv1a(&mut h, &(self.cells.len() as u64).to_le_bytes());
        fnv1a(&mut h, &(self.insts as u64).to_le_bytes());
        fnv1a(&mut h, &self.seed.to_le_bytes());
        for c in &self.cells {
            c.fold_digest(&mut h);
        }
        h
    }

    /// Aggregate throughput over the sweep: total simulated instructions per
    /// total host second, in millions.
    pub fn aggregate_mips(&self) -> f64 {
        let inst: u64 = self.cells.iter().map(|c| c.instructions).sum();
        let secs: f64 = self.cells.iter().map(|c| c.host_seconds).sum();
        if secs > 0.0 {
            inst as f64 / secs / 1.0e6
        } else {
            0.0
        }
    }

    /// Renders the report as the `BENCH_sweep.json` document
    /// (schema `icfp-sweep/v1`; hand-rolled writer, flat and stable).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"icfp-sweep/v1\",");
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"insts\": {},", self.insts);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"reps\": {},", self.reps);
        let _ = writeln!(s, "  \"report_digest\": \"{:#018x}\",", self.digest());
        s.push_str("  \"cells\": [\n");
        for (k, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"model\": {:?}, \"workload\": {:?}, \"slice_buffer\": {}, \
                 \"mshrs\": {}, \"l2_hit_latency\": {}, \"seed\": {}, \
                 \"instructions\": {}, \"cycles\": {}, \"ipc\": {:.4}, \
                 \"l1d_mpki\": {:.3}, \"l2_mpki\": {:.3}, \"host_seconds\": {:.6}, \
                 \"mips\": {:.3}, \"state_digest\": \"{:#018x}\"}}",
                c.model,
                c.workload,
                c.slice_buffer_entries,
                c.mshr_count,
                c.l2_hit_latency,
                c.seed,
                c.instructions,
                c.cycles,
                c.ipc,
                c.l1d_mpki,
                c.l2_mpki,
                c.host_seconds,
                c.mips,
                c.state_digest
            );
            s.push_str(if k + 1 == self.cells.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ],\n");
        let _ = writeln!(s, "  \"aggregate_mips\": {:.3}", self.aggregate_mips());
        s.push_str("}\n");
        s
    }

    /// Renders the sweep as an aligned text matrix: one row per
    /// (model, configuration) point, one IPC column per workload.
    pub fn render_matrix(&self) -> String {
        let mut workloads: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !workloads.contains(&c.workload.as_str()) {
                workloads.push(&c.workload);
            }
        }
        let col = workloads
            .iter()
            .map(|w| w.len())
            .max()
            .unwrap_or(0)
            .max(7);
        let mut rows: Vec<(String, Vec<Option<f64>>)> = Vec::new();
        for c in &self.cells {
            let label = format!(
                "{:<10} sb={:<4} mshr={:<3} l2={:<3}",
                c.model, c.slice_buffer_entries, c.mshr_count, c.l2_hit_latency
            );
            if rows.last().map(|(l, _)| l.as_str()) != Some(label.as_str()) {
                rows.push((label, vec![None; workloads.len()]));
            }
            let wl = workloads.iter().position(|w| *w == c.workload).unwrap();
            rows.last_mut().unwrap().1[wl] = Some(c.ipc);
        }
        let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut s = String::new();
        let _ = write!(s, "{:<label_w$}", "ipc");
        for w in &workloads {
            let _ = write!(s, "  {w:>col$}");
        }
        s.push('\n');
        for (label, vals) in &rows {
            let _ = write!(s, "{label:<label_w$}");
            for v in vals {
                match v {
                    Some(ipc) => {
                        let _ = write!(s, "  {ipc:>col$.3}");
                    }
                    None => {
                        let _ = write!(s, "  {:>col$}", "-");
                    }
                }
            }
            s.push('\n');
        }
        s
    }
}

/// Executes a sweep on `threads` worker threads (1 = serial, in the calling
/// thread).  The report's cells are in [`SweepSpec::expand`] order and its
/// digest is independent of `threads`.
///
/// # Errors
///
/// Returns the [`SweepSpec::validate`] error without running anything.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Result<SweepReport, String> {
    spec.validate()?;
    let jobs = spec.expand();
    let n = jobs.len();
    let workers = threads.clamp(1, n.max(1));
    let mut cells: Vec<Option<SweepCell>> = (0..n).map(|_| None).collect();

    if workers == 1 {
        for (k, job) in jobs.iter().enumerate() {
            cells[k] = Some(job.run());
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, SweepCell)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let jobs = &jobs;
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    // A send only fails if the receiver is gone (sweep
                    // abandoned): stop pulling work.
                    if tx.send((k, jobs[k].run())).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (k, cell) in rx {
                cells[k] = Some(cell);
            }
        });
    }

    Ok(SweepReport {
        threads: workers,
        insts: spec.insts,
        seed: spec.seed,
        reps: spec.reps.max(1),
        cells: cells
            .into_iter()
            .map(|c| c.expect("every job posts exactly one cell"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        // 2 models × (2 slice × 1 mshr × 2 l2 = 4 configs) × 4 workloads
        // = 32 cells, small instruction budget to keep the test fast.
        let mut s = SweepSpec::new(
            vec![CoreModel::Icfp, CoreModel::InOrder],
            icfp_workloads::STANDARD_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            600,
            0xC0DE,
        );
        s.slice_buffer_entries = vec![64, 128];
        s.l2_hit_latencies = vec![10, 20];
        s
    }

    #[test]
    fn expand_is_cartesian_and_ordered() {
        let spec = tiny_spec();
        let jobs = spec.expand();
        assert_eq!(jobs.len(), spec.cell_count());
        assert_eq!(jobs.len(), 32);
        for (k, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, k);
        }
        // Workload is the innermost axis: the first four jobs share a config.
        assert_eq!(jobs[0].workload, "pointer-chase");
        assert_eq!(jobs[3].workload, "streaming");
        assert_eq!(jobs[0].config.slice_buffer_entries, jobs[3].config.slice_buffer_entries);
        // Same workload column ⇒ same trace seed, across models and configs.
        let seed0 = jobs[0].seed;
        for j in jobs.iter().filter(|j| j.workload == "pointer-chase") {
            assert_eq!(j.seed, seed0);
        }
        // Different workloads get different seeds.
        assert_ne!(jobs[0].seed, jobs[1].seed);
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = tiny_spec();
        s.workloads.push("nope".into());
        assert!(run_sweep(&s, 1).is_err());
        let mut s = tiny_spec();
        s.models.clear();
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.l2_hit_latencies.clear();
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.insts = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn same_spec_twice_gives_identical_digests() {
        let spec = tiny_spec();
        let a = run_sweep(&spec, 1).unwrap();
        let b = run_sweep(&spec, 1).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.cycles, cb.cycles);
            assert_eq!(ca.state_digest, cb.state_digest);
        }
    }

    #[test]
    fn serial_and_eight_thread_pools_agree_byte_for_byte() {
        // The acceptance grid: 2 models × 4 configs × 4 workloads.
        let spec = tiny_spec();
        let serial = run_sweep(&spec, 1).unwrap();
        let pooled = run_sweep(&spec, 8).unwrap();
        assert_eq!(serial.digest(), pooled.digest());
        assert_eq!(serial.cells.len(), pooled.cells.len());
        for (cs, cp) in serial.cells.iter().zip(&pooled.cells) {
            assert_eq!(cs.model, cp.model);
            assert_eq!(cs.workload, cp.workload);
            assert_eq!(cs.cycles, cp.cycles, "{} {}", cs.model, cs.workload);
            assert_eq!(cs.ipc, cp.ipc);
            assert_eq!(cs.state_digest, cp.state_digest);
        }
    }

    #[test]
    fn l2_latency_axis_moves_cycles_monotonically() {
        let mut spec = tiny_spec();
        spec.models = vec![CoreModel::InOrder];
        spec.slice_buffer_entries = vec![128];
        spec.workloads = vec!["pointer-chase".into()];
        spec.l2_hit_latencies = vec![10, 40];
        let r = run_sweep(&spec, 2).unwrap();
        assert_eq!(r.cells.len(), 2);
        assert!(
            r.cells[0].cycles <= r.cells[1].cycles,
            "higher L2 latency cannot be faster: {} vs {}",
            r.cells[0].cycles,
            r.cells[1].cycles
        );
        // Same trace either way.
        assert_eq!(r.cells[0].state_digest, r.cells[1].state_digest);
    }

    #[test]
    fn json_is_well_formed_and_carries_the_digest() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["branchy".into()];
        spec.l2_hit_latencies = vec![20];
        let r = run_sweep(&spec, 2).unwrap();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"icfp-sweep/v1\""));
        assert!(json.contains(&format!("{:#018x}", r.digest())));
        assert!(json.contains("\"workload\": \"branchy\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn matrix_rendering_is_aligned_and_complete() {
        let spec = tiny_spec();
        let r = run_sweep(&spec, 4).unwrap();
        let m = r.render_matrix();
        let lines: Vec<&str> = m.lines().collect();
        // Header + one row per (model, config) = 1 + 2*4.
        assert_eq!(lines.len(), 1 + 8, "{m}");
        let width = lines[0].len();
        for l in &lines {
            assert_eq!(l.len(), width, "misaligned row: {l:?}\n{m}");
        }
        for w in icfp_workloads::STANDARD_NAMES {
            assert!(lines[0].contains(w));
        }
        assert!(m.contains("sb=64") && m.contains("sb=128"));
    }

}
