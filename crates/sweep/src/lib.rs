//! # icfp-sweep — parallel multi-configuration sweep orchestration
//!
//! The paper's headline results (the Figure 6/7-style comparisons) come from
//! running one binary's timing models across *many* machine configurations.
//! This crate is the subsystem that does that at scale, layered bottom-up:
//!
//! * [`spec`] — [`SweepSpec`]: a cartesian grid over [`icfp_core::CoreConfig`]
//!   axes (slice-buffer capacity, MSHR count, L2 hit latency) crossed with
//!   core models and workloads, expanded ([`SweepSpec::expand`]) into an
//!   ordered job list with *deterministic per-job seeds* (a pure function of
//!   the spec seed and the workload name, so every cell of a workload column
//!   simulates the identical trace and cells are comparable);
//! * [`job`] — [`SweepJob`]: one grid point, its execution paths, and its
//!   identity keys (the warm-fork key; the content-addressed cache key);
//! * [`executor`] — [`run_sweep`] / [`run_sweep_streamed`]: a `std::thread`
//!   pool pulling fork groups from an atomic counter and posting results
//!   back by job index, so the assembled report is byte-identical regardless
//!   of thread count or scheduling; cells stream to a callback as they
//!   finish;
//! * [`cache`] — [`ResultCache`]: the persistent `icfp-cache/v1` store
//!   between executor and report — each cell keyed by a digest of its
//!   deterministic inputs, so repeated and overlapping grids are served from
//!   disk and a cache-hit report is digest-identical to a cold one;
//! * [`report`] — [`SweepReport`]: one [`SweepCell`] per grid point (IPC,
//!   MPKI, MIPS, state digest) with a deterministic [`SweepReport::digest`]
//!   and an aligned text matrix renderer;
//! * [`schema`] — the one `BENCH_sweep.json` (`icfp-sweep/v2`) emitter and
//!   parser, shared by the CLI, the server and the baseline gate;
//! * [`wire`] — the capability-negotiated `icfp-wire/v2` protocol: submit a
//!   spec (or one planned shard) to a running `icfp-sweepd`, stream cells
//!   back as they finish, reassemble a report byte-identical to a local
//!   run;
//! * [`plan`] — [`SweepShard`] and [`plan_shards`]: split a grid by
//!   workload column into shards that ship a spec slice plus per-column
//!   trace *digests* (never trace bytes), and [`merge_report`], the
//!   deterministic merge back into one report;
//! * [`backend`] — [`ExecBackend`]: one seam over *where* cells run —
//!   [`LocalBackend`] (this process's pool) or [`RemoteBackend`] (a fleet
//!   of `icfp-sweepd --worker` processes, with shard reassignment when a
//!   worker dies).
//!
//! ## Shared sources and warm-forking
//!
//! Every cell of a workload column simulates the identical trace, so the
//! executor builds each column's trace **once** as an
//! `Arc<dyn TraceSource>` shared by all of that column's jobs — large grids
//! no longer pay per-job trace generation or hold per-job copies, and a
//! column backed by a streamed source (an `icfp-trace/v1` file, a resumable
//! generator) shares one bounded block cache across the whole pool.
//!
//! With [`SweepSpec::warm_fork`] enabled, jobs are additionally grouped so
//! that cells whose deterministic inputs are provably identical — same
//! model, same workload trace, and configurations that differ only along
//! axes the model never reads (see
//! [`icfp_core::CoreModel::reads_slice_buffer`]) — run as one *fork group*:
//! the group leader runs to the column's halfway instruction, captures a
//! [`icfp_sim::SimCheckpoint`], finishes its own run, and every member
//! resumes from that checkpoint instead of re-simulating from cycle zero.
//! Because checkpoint resume is bit-identical to an uninterrupted run, the
//! warm-fork report's deterministic fields equal the cold run's exactly;
//! only the advisory host-time figures change.
//!
//! `icfp-bench --sweep` is the local CLI front end; `icfp-sweepd` serves
//! sweeps over TCP and `icfp-bench sweep submit --server ADDR` is its
//! client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod executor;
pub mod fault;
pub mod job;
pub mod plan;
pub mod report;
pub mod schema;
pub mod spec;
pub mod wire;

pub use backend::{ExecBackend, LocalBackend, RemoteBackend};
pub use cache::{CacheError, ResultCache};
pub use executor::{
    column_source, run_sweep, run_sweep_streamed, CacheStats, CellEvent, ExecOptions,
    SweepOutcome,
};
pub use fault::{CacheTear, FaultPlan, FrameAction, FrameFault, PanicJob};
pub use job::SweepJob;
pub use plan::{merge_report, plan_shards, ColumnSpec, SweepShard};
pub use report::{ReportError, SweepCell, SweepReport};
pub use schema::SchemaError;
pub use spec::{SweepSpec, STREAM_COLUMN_THRESHOLD};
pub use wire::{
    backoff_delay, serve, submit_shard, submit_with, AcceptOptions, RetryPolicy, ServeOptions,
    ServeSummary, ShardOutcome, SubmitOutcome, WireError,
};

#[cfg(test)]
pub(crate) mod testutil {
    use crate::SweepSpec;
    use icfp_core::CoreModel;

    /// The acceptance grid shared across module tests: 2 models ×
    /// (2 slice × 1 mshr × 2 l2 = 4 configs) × 4 workloads = 32 cells,
    /// small instruction budget to keep tests fast.
    pub(crate) fn tiny_spec() -> SweepSpec {
        let mut s = SweepSpec::new(
            vec![CoreModel::Icfp, CoreModel::InOrder],
            icfp_workloads::STANDARD_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            600,
            0xC0DE,
        );
        s.slice_buffer_entries = vec![64, 128];
        s.l2_hit_latencies = vec![10, 20];
        s
    }
}
