//! Sweep jobs: one grid point, ready to execute, plus the identity keys the
//! executor derives from a job — the warm-fork key (may two cells share a
//! checkpoint?) and the result-cache key (may a cell be served from disk?).

use crate::report::SweepCell;
use icfp_core::{CoreConfig, CoreModel};
use icfp_isa::{Fnv1a, Trace, TraceSource};
use icfp_sim::{CellFigures, SimConfig, SimReport};

/// One grid point, ready to execute.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Position in the expanded job list (and in `SweepReport::cells`).
    pub index: usize,
    /// Core model.
    pub model: CoreModel,
    /// Fully resolved configuration (model default + axis overrides).
    pub config: CoreConfig,
    /// Workload name.
    pub workload: String,
    /// Dynamic instruction budget.
    pub insts: usize,
    /// Deterministic trace seed (see [`crate::SweepSpec::workload_seed`]).
    pub seed: u64,
    /// Timing repetitions (median is kept).
    pub reps: u32,
    /// Functional fast-forward depth in instructions (0 = fully cold; see
    /// [`crate::SweepSpec::fast_forward`]).
    pub fast_forward: usize,
}

impl SweepJob {
    /// Executes the job standalone: generates its trace and runs it through
    /// the shared warmup + median-of-N timing protocol
    /// ([`icfp_sim::median_run`]).
    pub fn run(&self) -> SweepCell {
        let trace = icfp_workloads::by_name(&self.workload, self.insts, self.seed)
            .expect("workload validated by SweepSpec::validate");
        self.run_with_trace(&trace)
    }

    /// Executes the job against an already generated trace.
    pub fn run_with_trace(&self, trace: &Trace) -> SweepCell {
        let config = SimConfig::with_config(self.model, self.config.clone());
        let median = icfp_sim::median_run_ff(&config, trace, self.fast_forward, self.reps);
        self.cell_from_report(&median)
    }

    /// Executes the job against a shared block-based source (the executor
    /// shares one `Arc<dyn TraceSource>` per workload column across the
    /// pool).  Deterministic outputs are independent of the backing.
    pub fn run_with_source(&self, source: &dyn TraceSource) -> SweepCell {
        let config = SimConfig::with_config(self.model, self.config.clone());
        let median = icfp_sim::median_run_source_ff(&config, source, self.fast_forward, self.reps);
        self.cell_from_report(&median)
    }

    /// Builds this job's cell from a finished report (the configuration
    /// labels come from the job; the figures from the report).
    pub(crate) fn cell_from_report(&self, report: &SimReport) -> SweepCell {
        self.cell_from_figures(&report.figures())
    }

    /// Builds this job's cell from bare per-cell figures — the cache-replay
    /// path: a cached [`CellFigures`] carries no labels, so the model,
    /// workload and axis labels come from the job itself.  For a computed
    /// report the two sources agree (the simulator reports the model and
    /// workload names the job handed it), so computed and replayed cells of
    /// one cache key are identical.
    pub(crate) fn cell_from_figures(&self, figures: &CellFigures) -> SweepCell {
        SweepCell {
            model: self.model.name().to_string(),
            workload: self.workload.clone(),
            slice_buffer_entries: self.config.slice_buffer_entries,
            mshr_count: self.config.mem.max_outstanding_misses,
            l2_hit_latency: self.config.mem.l2_hit_latency,
            seed: self.seed,
            instructions: figures.instructions,
            cycles: figures.cycles,
            ipc: figures.ipc,
            l1d_mpki: figures.l1d_mpki,
            l2_mpki: figures.l2_mpki,
            host_seconds: figures.host_seconds,
            mips: figures.mips,
            state_digest: figures.state_digest,
            failed: None,
        }
    }

    /// Builds a *failed* cell for this job: every figure zeroed, the
    /// (sanitized) panic reason recorded.  Emitted when the job's worker
    /// panicked on every allowed attempt — the sweep completes and reports
    /// the hole instead of aborting.
    pub(crate) fn failed_cell(&self, reason: &str) -> SweepCell {
        SweepCell {
            model: self.model.name().to_string(),
            workload: self.workload.clone(),
            slice_buffer_entries: self.config.slice_buffer_entries,
            mshr_count: self.config.mem.max_outstanding_misses,
            l2_hit_latency: self.config.mem.l2_hit_latency,
            seed: self.seed,
            instructions: 0,
            cycles: 0,
            ipc: 0.0,
            l1d_mpki: 0.0,
            l2_mpki: 0.0,
            host_seconds: 0.0,
            mips: 0.0,
            state_digest: 0,
            failed: Some(crate::report::sanitize_reason(reason)),
        }
    }

    /// The job's configuration with axes this model never reads canonicalized
    /// to zero, so configurations that run the identical simulation compare
    /// (and hash) equal.  Shared by the warm-fork key and the cache key.
    fn normalized_config(&self) -> CoreConfig {
        let mut cfg = self.config.clone();
        if !self.model.reads_slice_buffer() {
            // The slice-buffer axis is inert for this model: cells differing
            // only along it run the identical simulation.
            cfg.slice_buffer_entries = 0;
            cfg.chain_table_entries = 0;
        }
        cfg
    }

    /// The job's *fork key*: two jobs may share one warm-fork checkpoint iff
    /// their keys are byte-identical — same model, workload, seed,
    /// instruction budget and fast-forward depth, and configurations equal
    /// after normalizing the axes this model never reads.  Keys are the
    /// vendored-serde encoding of exactly those inputs, so equality is
    /// equality of deterministic inputs.
    pub(crate) fn fork_key(&self) -> Vec<u8> {
        serde::to_bytes(&(
            self.model.name().to_string(),
            self.workload.clone(),
            (self.seed, self.insts as u64, self.fast_forward as u64),
            serde::to_bytes(&self.normalized_config()),
        ))
    }

    /// The job's content-addressed *cache key* for the `icfp-cache/v1` result
    /// store: an FNV-1a digest (length-prefixed fields, see
    /// [`Fnv1a::write_field`]) of everything the cell's deterministic outputs
    /// depend on — container version, model, normalized configuration bytes,
    /// the trace's content digest, the instruction budget and the
    /// fast-forward depth (which moves the cold-start boundary and therefore
    /// every timing figure).  Labels that
    /// don't feed the simulation (the workload *name*, the seed — both
    /// already folded into the trace digest's content) are deliberately
    /// excluded, so renamed-but-identical columns share entries; the replayed
    /// cell's labels come from the job, not the cache.
    pub fn cache_key(&self, trace_digest: u64) -> u64 {
        let mut h = Fnv1a::new();
        h.write_field(crate::cache::MAGIC);
        h.write_field(self.model.name().as_bytes());
        h.write_field(&serde::to_bytes(&self.normalized_config()));
        h.write_u64(trace_digest);
        h.write_u64(self.insts as u64);
        h.write_u64(self.fast_forward as u64);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::tiny_spec;

    #[test]
    fn cache_keys_canonicalize_inert_axes_and_separate_live_ones() {
        let spec = tiny_spec();
        let jobs = spec.expand();
        let dig = 0xDEAD_BEEF_u64;
        for a in &jobs {
            for b in &jobs {
                let same_key = a.cache_key(dig) == b.cache_key(dig);
                let same_fork = a.fork_key() == b.fork_key();
                // With one shared trace digest the cache key and fork key
                // partition the grid identically (fork keys also carry the
                // workload name + seed, but those are constants per column
                // and the digest stands in for the column here).
                if a.workload == b.workload {
                    assert_eq!(same_key, same_fork, "jobs {} vs {}", a.index, b.index);
                }
            }
        }
        // in-order ignores the slice axis: sb=64 and sb=128 cells of one
        // (l2, workload) point share a key.
        let inorder: Vec<_> = jobs
            .iter()
            .filter(|j| !j.model.reads_slice_buffer() && j.workload == "pointer-chase")
            .collect();
        assert!(inorder.len() >= 4);
        let a = inorder
            .iter()
            .find(|j| j.config.slice_buffer_entries == 64 && j.config.mem.l2_hit_latency == 10)
            .unwrap();
        let b = inorder
            .iter()
            .find(|j| j.config.slice_buffer_entries == 128 && j.config.mem.l2_hit_latency == 10)
            .unwrap();
        assert_eq!(a.cache_key(dig), b.cache_key(dig));
        // icfp reads it: same pair of configs must NOT collide.
        let icfp: Vec<_> = jobs
            .iter()
            .filter(|j| j.model.reads_slice_buffer() && j.workload == "pointer-chase")
            .collect();
        let a = icfp
            .iter()
            .find(|j| j.config.slice_buffer_entries == 64 && j.config.mem.l2_hit_latency == 10)
            .unwrap();
        let b = icfp
            .iter()
            .find(|j| j.config.slice_buffer_entries == 128 && j.config.mem.l2_hit_latency == 10)
            .unwrap();
        assert_ne!(a.cache_key(dig), b.cache_key(dig));
        // Different trace content ⇒ different key, all else equal.
        assert_ne!(a.cache_key(1), a.cache_key(2));
    }
}
