//! Execution backends: *where* a sweep runs, behind one seam.
//!
//! [`ExecBackend`] abstracts sweep execution so every front end — the
//! `icfp-bench` CLI, the service, tests — drives grids the same way whether
//! the cells run on this process's thread pool ([`LocalBackend`]) or across
//! a fleet of `icfp-sweepd --worker` processes ([`RemoteBackend`]).  Both
//! produce the same artifact: a [`SweepReport`] whose deterministic content
//! is byte-identical to a serial in-process run of the same spec — the
//! executor's thread-count invariance, lifted to N processes.
//!
//! The remote backend composes the rest of this crate: the shard planner
//! ([`crate::plan::plan_shards`]) splits the grid by workload column, each
//! shard travels as a spec slice plus per-column trace *digests* (never
//! trace bytes; see [`crate::plan`]), workers stream cells back under
//! full-grid indices, and a deterministic merge
//! ([`crate::plan::merge_report`]) reassembles them in expand order — so
//! shard count, worker count and completion order are all invisible in the
//! result.  A worker that dies mid-shard (disconnect, missed deadline) has
//! its shard *reassigned* to the next worker in the pool under the
//! [`RetryPolicy`]'s deterministic backoff; cells the dead worker already
//! computed landed in its persistent cache, so reassignment after a restart
//! is cheap, and a shard's cells only enter the merge once its worker's
//! digest has verified — a half-streamed attempt contributes nothing.

use crate::executor::{run_sweep_streamed, CacheStats, CellEvent, ExecOptions, SweepOutcome};
use crate::plan::{merge_report, plan_shards};
use crate::report::SweepCell;
use crate::spec::SweepSpec;
use crate::wire::{backoff_delay, submit_shard, RetryPolicy, ShardOutcome, WireError};
use crate::ResultCache;
use std::path::PathBuf;
use std::sync::mpsc;

/// One place a sweep can execute.  Implementations must uphold the crate's
/// core contract: for a given spec, the returned report's deterministic
/// content (cells, digest, JSON document) is byte-identical across
/// backends, thread counts and scheduling.
pub trait ExecBackend {
    /// Human-readable description of where cells run (for logs and CLIs).
    fn label(&self) -> String;

    /// Executes the sweep, streaming each finished cell to `on_cell` (on
    /// the calling thread; carry the event's index to reassemble).
    ///
    /// # Errors
    ///
    /// A human-readable description: spec validation, transport failures
    /// after retries are exhausted, an incomplete merge.
    fn run_streamed(
        &self,
        spec: &SweepSpec,
        on_cell: &mut dyn FnMut(CellEvent<'_>),
    ) -> Result<SweepOutcome, String>;

    /// Executes the sweep without observing the stream.
    ///
    /// # Errors
    ///
    /// As [`ExecBackend::run_streamed`].
    fn run(&self, spec: &SweepSpec) -> Result<SweepOutcome, String> {
        self.run_streamed(spec, &mut |_| {})
    }
}

/// The in-process backend: the `std::thread` pool executor this crate has
/// always had, now behind the seam.
#[derive(Debug, Clone)]
pub struct LocalBackend {
    /// Worker threads (0 or 1 = serial, in the calling thread).
    pub threads: usize,
    /// Persistent result cache directory, if caching is enabled.
    pub cache_dir: Option<PathBuf>,
    /// Retries for a panicking cell before it is recorded as a typed failed
    /// cell (see [`ExecOptions::panic_retries`]).
    pub panic_retries: u32,
}

impl LocalBackend {
    /// A local backend on `threads` worker threads, no cache.
    pub fn new(threads: usize) -> Self {
        LocalBackend {
            threads,
            cache_dir: None,
            panic_retries: crate::executor::DEFAULT_PANIC_RETRIES,
        }
    }
}

impl Default for LocalBackend {
    fn default() -> Self {
        LocalBackend::new(0)
    }
}

impl ExecBackend for LocalBackend {
    fn label(&self) -> String {
        format!("local ({} threads)", self.threads.max(1))
    }

    fn run_streamed(
        &self,
        spec: &SweepSpec,
        on_cell: &mut dyn FnMut(CellEvent<'_>),
    ) -> Result<SweepOutcome, String> {
        let cache = match &self.cache_dir {
            Some(dir) => {
                Some(ResultCache::open(dir).map_err(|e| format!("result cache: {e}"))?)
            }
            None => None,
        };
        run_sweep_streamed(
            spec,
            &ExecOptions {
                threads: self.threads,
                cache: cache.as_ref(),
                panic_retries: self.panic_retries,
                ..ExecOptions::default()
            },
            on_cell,
        )
    }
}

/// The distributed backend: a pool of `icfp-sweepd --worker` addresses, a
/// shard per slice of the workload axis, deterministic merge, reassignment
/// on worker death.
#[derive(Debug, Clone)]
pub struct RemoteBackend {
    /// Worker addresses (`host:port`), e.g. two `icfp-sweepd --worker`
    /// processes on loopback.  Shard `k` is first offered to worker
    /// `k % workers`; each reassignment rotates to the next address.
    pub workers: Vec<String>,
    /// Shards to plan (0 = one per worker; always clamped to the workload
    /// count — columns are the unit of distribution).
    pub shards: usize,
    /// Requested worker-side threads per shard (0 = worker default).
    pub threads: usize,
    /// Reassignment policy: attempts per shard, deterministic backoff
    /// between them, per-stream I/O deadline (the "worker died" detector —
    /// a disconnect surfaces immediately, a hang at the deadline).
    pub policy: RetryPolicy,
}

impl RemoteBackend {
    /// A remote backend over `workers` with default sharding and retry
    /// policy.
    pub fn new(workers: Vec<String>) -> Self {
        RemoteBackend {
            workers,
            shards: 0,
            threads: 0,
            policy: RetryPolicy::default(),
        }
    }
}

/// What a shard driver thread reports back to the merge loop.
enum ShardEvent {
    /// The shard completed and its digest verified: commit these cells.
    Done(ShardOutcome),
    /// Every attempt failed; the whole sweep must error.
    Failed { shard_index: u64, error: String },
}

impl ExecBackend for RemoteBackend {
    fn label(&self) -> String {
        format!("distributed ({} workers)", self.workers.len())
    }

    fn run_streamed(
        &self,
        spec: &SweepSpec,
        on_cell: &mut dyn FnMut(CellEvent<'_>),
    ) -> Result<SweepOutcome, String> {
        if self.workers.is_empty() {
            return Err("remote backend has no worker addresses".to_string());
        }
        let shard_count = if self.shards == 0 {
            self.workers.len()
        } else {
            self.shards
        };
        let shards = plan_shards(spec, shard_count)?;
        let n = spec.cell_count();
        let mut slots: Vec<Option<SweepCell>> = vec![None; n];
        let mut stats = CacheStats::default();
        let mut failures: Vec<String> = Vec::new();

        // One driver thread per shard; the calling thread runs the merge
        // loop (and the caller's stream callback).  Cells cross the channel
        // only after submit_shard verified the worker's digest, so a worker
        // that died mid-stream — whose attempt is being retried elsewhere —
        // never contributes half a shard.
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<ShardEvent>();
            for shard in &shards {
                let tx = tx.clone();
                let workers = &self.workers;
                let policy = &self.policy;
                let threads = self.threads;
                scope.spawn(move || {
                    let mut last: Option<WireError> = None;
                    for attempt in 0..=policy.retries {
                        if attempt > 0 {
                            std::thread::sleep(backoff_delay(policy, attempt - 1));
                        }
                        // Rotate through the pool: the first attempt lands
                        // on this shard's home worker, each retry moves to
                        // the next — that rotation *is* reassignment when a
                        // worker is gone.
                        let addr = &workers
                            [(shard.shard_index as usize + attempt as usize) % workers.len()];
                        match submit_shard(addr, shard, threads, policy.io_timeout()) {
                            Ok(outcome) => {
                                let _ = tx.send(ShardEvent::Done(outcome));
                                return;
                            }
                            Err(e) if e.is_retriable() => last = Some(e),
                            Err(e) => {
                                let _ = tx.send(ShardEvent::Failed {
                                    shard_index: shard.shard_index,
                                    error: e.to_string(),
                                });
                                return;
                            }
                        }
                    }
                    let _ = tx.send(ShardEvent::Failed {
                        shard_index: shard.shard_index,
                        error: last.expect("at least one attempt ran").to_string(),
                    });
                });
            }
            drop(tx);
            for event in rx {
                match event {
                    ShardEvent::Done(outcome) => {
                        stats.hits += outcome.hits;
                        stats.misses += outcome.misses;
                        for (index, cached, cell) in outcome.cells {
                            // Shards partition the grid and each commits
                            // once, so every slot fills exactly once.
                            debug_assert!(slots[index].is_none());
                            on_cell(CellEvent {
                                index,
                                cached,
                                cell: &cell,
                            });
                            slots[index] = Some(cell);
                        }
                    }
                    ShardEvent::Failed { shard_index, error } => {
                        failures.push(format!("shard {shard_index}: {error}"));
                    }
                }
            }
        });

        if !failures.is_empty() {
            failures.sort();
            return Err(format!(
                "distributed sweep failed: {}",
                failures.join("; ")
            ));
        }
        let report = merge_report(spec, self.workers.len(), slots)?;
        Ok(SweepOutcome {
            report,
            cache: stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_spec;

    #[test]
    fn local_backend_matches_the_bare_executor() {
        let spec = tiny_spec();
        let bare = crate::run_sweep(&spec, 2).unwrap();
        let backend = LocalBackend::new(2);
        assert!(backend.label().contains("local"));
        let mut streamed = 0usize;
        let outcome = backend
            .run_streamed(&spec, &mut |_| streamed += 1)
            .unwrap();
        assert_eq!(streamed, spec.cell_count());
        assert_eq!(outcome.report.digest(), bare.digest());
        assert_eq!(outcome.report.cells.len(), bare.cells.len());
    }

    #[test]
    fn remote_backend_refuses_an_empty_pool() {
        let err = RemoteBackend::new(vec![])
            .run(&tiny_spec())
            .unwrap_err();
        assert!(err.contains("no worker addresses"), "{err}");
    }
}
