//! The sweep service wire protocol (`icfp-wire/v1`).
//!
//! A client submits a whole [`SweepSpec`] to a running `icfp-sweepd`; the
//! server expands, validates and executes it (through the shared executor
//! and result cache) and streams each cell back *as it finishes*, closing
//! with the report digest and cache counters.  The client reassembles the
//! streamed cells — by index, so arrival order is irrelevant — into a
//! [`SweepReport`] byte-identical to a local [`crate::run_sweep`] of the
//! same spec, and verifies its digest against the server's.
//!
//! ## Transport
//!
//! Messages are vendored-serde payloads in length-prefixed frames
//! ([`serde::frame`]: `u32` LE length + payload, 16 MiB ceiling).  The
//! conversation:
//!
//! ```text
//! client                          server
//! ──────────────────────────────────────────────────────────
//! Hello{version}          ──▶
//!                         ◀──    Hello{version}
//! Submit{spec, threads}   ──▶
//!                         ◀──    Accepted{cells, threads}
//!                         ◀──    Cell{index, cached, cell}   (× cells)
//!                         ◀──    Done{report_digest, hits, misses}
//! (next Submit, or close)
//! ```
//!
//! Anything unexpected — an undecodable frame, a version mismatch, an
//! invalid spec — is answered with an `Error` frame where possible and is
//! always a typed [`WireError`] on both sides, never a panic: a hostile
//! peer cannot take the server down.

use crate::executor::{run_sweep_streamed, ExecOptions};
use crate::report::{SweepCell, SweepReport};
use crate::spec::SweepSpec;
use crate::ResultCache;
use serde::frame::{read_frame, write_frame, FrameError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::path::PathBuf;

/// The protocol version string exchanged in `Hello`.
pub const WIRE_VERSION: &str = "icfp-wire/v1";

/// Frame ceiling for this protocol (the transport default).
pub const MAX_WIRE_FRAME: usize = serde::MAX_FRAME_LEN;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Protocol handshake; must be the first message on a connection.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: String,
    },
    /// Run this sweep and stream the cells back.
    Submit {
        /// The full grid to execute.
        spec: SweepSpec,
        /// Requested worker threads (0 = server default).
        threads: u64,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake reply.
    Hello {
        /// The server's [`WIRE_VERSION`].
        version: String,
    },
    /// The submitted spec validated; cells will stream next.
    Accepted {
        /// Number of cells the spec expands to.
        cells: u64,
        /// Worker threads the server will actually use.
        threads: u64,
    },
    /// One finished cell (streamed in completion order).
    Cell {
        /// The cell's position in [`SweepSpec::expand`] order.
        index: u64,
        /// Whether it was served from the server's result cache.
        cached: bool,
        /// The cell itself.
        cell: SweepCell,
    },
    /// The sweep finished; no more cells follow for this submission.
    Done {
        /// Digest of the assembled report ([`SweepReport::digest`]).
        report_digest: u64,
        /// Cells served from the server's result cache.
        hits: u64,
        /// Cells the server computed.
        misses: u64,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Typed failures on either side of the wire.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The transport layer rejected a frame (hostile length, truncation).
    Frame(FrameError),
    /// A frame arrived but its payload would not decode.
    Decode(String),
    /// The peer violated the protocol (wrong message, wrong version, bad
    /// index, missing cells).
    Protocol(String),
    /// The server answered with an `Error` frame.
    Server(String),
    /// The spec failed validation before anything was sent.
    Spec(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Frame(e) => write!(f, "wire framing: {e}"),
            WireError::Decode(e) => write!(f, "wire payload would not decode: {e}"),
            WireError::Protocol(e) => write!(f, "protocol violation: {e}"),
            WireError::Server(e) => write!(f, "server error: {e}"),
            WireError::Spec(e) => write!(f, "invalid sweep spec: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => WireError::Io(io),
            other => WireError::Frame(other),
        }
    }
}

/// Writes one message as a frame.
fn send<T: Serialize>(w: &mut impl std::io::Write, msg: &T) -> Result<(), WireError> {
    write_frame(w, &serde::to_bytes(msg))?;
    w.flush().map_err(WireError::Io)
}

/// Reads one message frame; `Ok(None)` is a clean peer close.
fn recv<T: Deserialize>(r: &mut impl std::io::Read) -> Result<Option<T>, WireError> {
    match read_frame(r, MAX_WIRE_FRAME)? {
        None => Ok(None),
        Some(bytes) => serde::from_bytes(&bytes)
            .map(Some)
            .map_err(|e| WireError::Decode(e.to_string())),
    }
}

/// Reads one message frame, treating peer close as a protocol violation
/// (used where the conversation is mid-flight and a message is owed).
fn recv_expected<T: Deserialize>(r: &mut impl std::io::Read) -> Result<T, WireError> {
    recv(r)?.ok_or_else(|| WireError::Protocol("peer closed mid-conversation".into()))
}

/// The result of one client submission.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The reassembled report — byte-identical to a local run of the spec.
    pub report: SweepReport,
    /// Cells the server served from its result cache.
    pub hits: u64,
    /// Cells the server computed.
    pub misses: u64,
}

/// Submits a sweep to a running `icfp-sweepd` at `addr` (e.g.
/// `127.0.0.1:7400`), reassembling the streamed cells into a report.
/// `threads` is the requested server-side worker count (0 = server
/// default).  `on_cell` sees each cell as it arrives (completion order).
///
/// # Errors
///
/// Any [`WireError`].  The returned report's digest is verified against the
/// server's `Done` digest, so a successful return is a report identical to
/// the server's — and, by the executor's determinism, to a local run.
pub fn submit(
    addr: &str,
    spec: &SweepSpec,
    threads: usize,
    mut on_cell: impl FnMut(usize, bool, &SweepCell),
) -> Result<SubmitOutcome, WireError> {
    spec.validate().map_err(WireError::Spec)?;
    let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(WireError::Io)?);
    let mut writer = BufWriter::new(stream);

    send(
        &mut writer,
        &Request::Hello {
            version: WIRE_VERSION.to_string(),
        },
    )?;
    match recv_expected::<Response>(&mut reader)? {
        Response::Hello { version } if version == WIRE_VERSION => {}
        Response::Hello { version } => {
            return Err(WireError::Protocol(format!(
                "server speaks {version:?}, client speaks {WIRE_VERSION:?}"
            )))
        }
        Response::Error { message } => return Err(WireError::Server(message)),
        other => {
            return Err(WireError::Protocol(format!(
                "expected Hello, got {other:?}"
            )))
        }
    }

    send(
        &mut writer,
        &Request::Submit {
            spec: spec.clone(),
            threads: threads as u64,
        },
    )?;
    let (cells_expected, server_threads) = match recv_expected::<Response>(&mut reader)? {
        Response::Accepted { cells, threads } => (cells as usize, threads as usize),
        Response::Error { message } => return Err(WireError::Server(message)),
        other => {
            return Err(WireError::Protocol(format!(
                "expected Accepted, got {other:?}"
            )))
        }
    };
    if cells_expected != spec.cell_count() {
        return Err(WireError::Protocol(format!(
            "server accepted {cells_expected} cells for a {}-cell spec",
            spec.cell_count()
        )));
    }

    let mut cells: Vec<Option<SweepCell>> = (0..cells_expected).map(|_| None).collect();
    loop {
        match recv_expected::<Response>(&mut reader)? {
            Response::Cell {
                index,
                cached,
                cell,
            } => {
                let index = index as usize;
                if index >= cells_expected {
                    return Err(WireError::Protocol(format!(
                        "cell index {index} out of range ({cells_expected} cells)"
                    )));
                }
                if cells[index].is_some() {
                    return Err(WireError::Protocol(format!("cell {index} streamed twice")));
                }
                on_cell(index, cached, &cell);
                cells[index] = Some(cell);
            }
            Response::Done {
                report_digest,
                hits,
                misses,
            } => {
                let mut assembled = Vec::with_capacity(cells_expected);
                for (k, c) in cells.into_iter().enumerate() {
                    assembled.push(c.ok_or_else(|| {
                        WireError::Protocol(format!("server finished without streaming cell {k}"))
                    })?);
                }
                let report = SweepReport {
                    threads: server_threads,
                    warm_fork: spec.warm_fork,
                    insts: spec.insts,
                    seed: spec.seed,
                    reps: spec.reps.max(1),
                    workloads: spec.workloads.clone(),
                    cells: assembled,
                };
                let digest = report.digest();
                if digest != report_digest {
                    return Err(WireError::Protocol(format!(
                        "reassembled report digest {digest:#018x} does not match the server's {report_digest:#018x}"
                    )));
                }
                return Ok(SubmitOutcome {
                    report,
                    hits,
                    misses,
                });
            }
            Response::Error { message } => return Err(WireError::Server(message)),
            other => {
                return Err(WireError::Protocol(format!(
                    "expected Cell or Done, got {other:?}"
                )))
            }
        }
    }
}

/// Server-side options for a connection.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Default worker threads for submissions that request 0.
    pub threads: usize,
    /// Result cache directory, if caching is enabled.
    pub cache_dir: Option<PathBuf>,
}

/// Per-connection summary returned by [`handle_conn`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnSummary {
    /// Sweeps executed on this connection.
    pub submits: u64,
    /// Total cells served from the result cache across them.
    pub hits: u64,
    /// Total cells computed across them.
    pub misses: u64,
}

/// Serves one client connection: handshake, then any number of submissions,
/// until the client closes.  Every failure path answers with an `Error`
/// frame when the stream still works and returns a typed [`WireError`] —
/// a hostile or confused peer never panics the server.
///
/// # Errors
///
/// Any [`WireError`]; the caller (the `icfp-sweepd` accept loop) logs it
/// and moves on to the next connection.
pub fn handle_conn(stream: TcpStream, opts: &ServeOptions) -> Result<ConnSummary, WireError> {
    let mut reader = BufReader::new(stream.try_clone().map_err(WireError::Io)?);
    let mut writer = BufWriter::new(stream);
    let mut summary = ConnSummary::default();

    // Handshake.  An undecodable first frame still gets an Error reply.
    let hello = match recv::<Request>(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return Ok(summary),
        Err(e) => {
            let _ = send(
                &mut writer,
                &Response::Error {
                    message: format!("bad handshake: {e}"),
                },
            );
            return Err(e);
        }
    };
    match hello {
        Request::Hello { ref version } if version == WIRE_VERSION => {}
        Request::Hello { version } => {
            let message = format!("server speaks {WIRE_VERSION:?}, client sent {version:?}");
            let _ = send(&mut writer, &Response::Error { message: message.clone() });
            return Err(WireError::Protocol(message));
        }
        other => {
            let message = format!("expected Hello first, got {other:?}");
            let _ = send(&mut writer, &Response::Error { message: message.clone() });
            return Err(WireError::Protocol(message));
        }
    }
    send(
        &mut writer,
        &Response::Hello {
            version: WIRE_VERSION.to_string(),
        },
    )?;

    // Submission loop.
    loop {
        let (spec, threads) = match recv::<Request>(&mut reader) {
            Ok(Some(Request::Submit { spec, threads })) => (spec, threads),
            Ok(Some(other)) => {
                let message = format!("expected Submit, got {other:?}");
                let _ = send(&mut writer, &Response::Error { message: message.clone() });
                return Err(WireError::Protocol(message));
            }
            Ok(None) => return Ok(summary),
            Err(e) => {
                let _ = send(
                    &mut writer,
                    &Response::Error {
                        message: format!("bad request: {e}"),
                    },
                );
                return Err(e);
            }
        };

        if let Err(e) = spec.validate() {
            // An invalid spec fails the submission, not the connection.
            send(&mut writer, &Response::Error { message: e })?;
            continue;
        }
        let requested = if threads == 0 {
            opts.threads.max(1)
        } else {
            threads as usize
        };
        let cache = match &opts.cache_dir {
            Some(dir) => match ResultCache::open(dir) {
                Ok(c) => Some(c),
                Err(e) => {
                    let message = format!("result cache unavailable: {e}");
                    let _ = send(&mut writer, &Response::Error { message: message.clone() });
                    return Err(WireError::Protocol(message));
                }
            },
            None => None,
        };

        // Mirror the executor's thread clamp so the Accepted message (which
        // the client copies into its reassembled report header) states the
        // worker count the report will actually record.
        let num_groups = crate::executor::plan_groups(
            spec.warm_fork || cache.is_some(),
            &spec.expand(),
        )
        .len();
        let workers = requested.clamp(1, num_groups.max(1));

        send(
            &mut writer,
            &Response::Accepted {
                cells: spec.cell_count() as u64,
                threads: workers as u64,
            },
        )?;

        // Stream cells as the executor completes them.  A send failure mid-
        // sweep is recorded and surfaced after the executor returns (the
        // callback itself must not unwind through the thread pool).
        let mut send_err: Option<WireError> = None;
        let exec = ExecOptions {
            threads: workers,
            cache: cache.as_ref(),
        };
        let outcome = run_sweep_streamed(&spec, &exec, |event| {
            if send_err.is_none() {
                if let Err(e) = send(
                    &mut writer,
                    &Response::Cell {
                        index: event.index as u64,
                        cached: event.cached,
                        cell: event.cell.clone(),
                    },
                ) {
                    send_err = Some(e);
                }
            }
        });
        if let Some(e) = send_err {
            return Err(e);
        }
        // validate() passed, so the executor cannot fail; keep the typed
        // path anyway.
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                let _ = send(&mut writer, &Response::Error { message: e.clone() });
                return Err(WireError::Protocol(e));
            }
        };
        send(
            &mut writer,
            &Response::Done {
                report_digest: outcome.report.digest(),
                hits: outcome.cache.hits,
                misses: outcome.cache.misses,
            },
        )?;
        summary.submits += 1;
        summary.hits += outcome.cache.hits;
        summary.misses += outcome.cache.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_sweep;
    use crate::testutil::tiny_spec;
    use std::net::TcpListener;

    /// Starts a one-connection-at-a-time server on an ephemeral port,
    /// returning its address and the accept-loop thread handle.
    fn spawn_server(
        opts: ServeOptions,
        conns: usize,
    ) -> (String, std::thread::JoinHandle<Vec<Result<ConnSummary, String>>>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || {
            let mut results = Vec::new();
            for _ in 0..conns {
                let (stream, _) = listener.accept().expect("accept");
                results.push(handle_conn(stream, &opts).map_err(|e| e.to_string()));
            }
            results
        });
        (addr, handle)
    }

    #[test]
    fn submitted_sweep_reassembles_byte_identical_to_a_local_run() {
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let spec = tiny_spec();
        let mut streamed = 0usize;
        let outcome = submit(&addr, &spec, 2, |_, cached, _| {
            assert!(!cached, "no cache configured");
            streamed += 1;
        })
        .expect("submit");
        assert_eq!(streamed, 32);
        assert_eq!(outcome.hits, 0);
        assert_eq!(outcome.misses, 32);

        // Digest-identical to a local run: every deterministic field agrees
        // (host-time figures are wall-clock measurements of two different
        // executions, so they are the one thing that can differ).
        let local = run_sweep(&spec, 2).expect("local run");
        assert_eq!(outcome.report.digest(), local.digest());
        assert_eq!(outcome.report.threads, local.threads);
        assert_eq!(outcome.report.workloads, local.workloads);
        for (a, b) in outcome.report.cells.iter().zip(&local.cells) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.ipc, b.ipc);
            assert_eq!(a.state_digest, b.state_digest);
        }

        let summaries = server.join().expect("server thread");
        assert_eq!(summaries, vec![Ok(ConnSummary { submits: 1, hits: 0, misses: 32 })]);
    }

    #[test]
    fn resubmission_is_served_from_the_server_cache_with_identical_report() {
        let dir = std::env::temp_dir().join(format!(
            "icfp-wire-test-cache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ServeOptions {
            threads: 2,
            cache_dir: Some(dir.clone()),
        };
        let (addr, server) = spawn_server(opts, 2);
        let mut spec = tiny_spec();
        spec.workloads.truncate(2);
        spec.l2_hit_latencies = vec![20];
        let n = spec.cell_count();

        let first = submit(&addr, &spec, 0, |_, _, _| {}).expect("first submit");
        assert_eq!(first.hits, 0);
        assert_eq!(first.misses, n as u64);
        let second = submit(&addr, &spec, 0, |_, cached, _| assert!(cached))
            .expect("second submit");
        assert_eq!(second.hits, n as u64, "fully served from cache");
        assert_eq!(second.misses, 0);
        assert_eq!(second.report, first.report);
        assert_eq!(second.report.to_json(), first.report.to_json());

        server.join().expect("server thread");

        // A *local* cached run over the same cache directory replays the
        // same stored figures: byte-identical to the wire reports, document
        // included — local and server runs are interchangeable.
        let cache = crate::ResultCache::open(&dir).expect("open cache");
        let local = crate::run_sweep_streamed(
            &spec,
            &crate::ExecOptions {
                threads: 2,
                cache: Some(&cache),
            },
            |_| {},
        )
        .expect("local cached run");
        assert_eq!(local.cache.hits, n as u64);
        assert_eq!(local.report, second.report);
        assert_eq!(local.report.to_json(), second.report.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_and_confused_clients_get_typed_errors_not_panics() {
        use std::io::Write as _;

        // 1. Garbage bytes that are a valid frame but not a Request.
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let mut stream = TcpStream::connect(&addr).expect("connect");
        write_frame(&mut stream, b"\xFF\xFF not a request").expect("frame");
        stream.flush().expect("flush");
        // The server answers with an Error frame, then drops the connection.
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        match recv::<Response>(&mut reader).expect("error frame") {
            Some(Response::Error { message }) => {
                assert!(message.contains("bad handshake"), "{message}");
            }
            other => panic!("expected Error frame, got {other:?}"),
        }
        let errs = server.join().expect("server thread");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].is_err(), "typed error, not a panic: {errs:?}");

        // 2. A hostile length prefix (4 GiB frame) — rejected by the
        //    transport without allocating; server survives to return.
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(&u32::MAX.to_le_bytes()).expect("prefix");
        drop(stream);
        let errs = server.join().expect("server thread");
        assert!(errs[0].as_ref().is_err());
        assert!(
            errs[0].as_ref().unwrap_err().contains("ceiling"),
            "hostile length is a framing error: {errs:?}"
        );

        // 3. Wrong protocol version.
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let mut stream = TcpStream::connect(&addr).expect("connect");
        send(
            &mut stream,
            &Request::Hello {
                version: "icfp-wire/v0".into(),
            },
        )
        .expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        match recv::<Response>(&mut reader).expect("reply") {
            Some(Response::Error { message }) => assert!(message.contains("icfp-wire/v0")),
            other => panic!("expected Error frame, got {other:?}"),
        }
        assert!(server.join().expect("join")[0].is_err());

        // 4. An invalid spec fails the submission but not the connection:
        //    a corrected spec on the same connection still runs.
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);
        send(
            &mut writer,
            &Request::Hello {
                version: WIRE_VERSION.into(),
            },
        )
        .expect("hello");
        assert!(matches!(
            recv::<Response>(&mut reader).expect("hello back"),
            Some(Response::Hello { .. })
        ));
        let mut bad = tiny_spec();
        bad.workloads = vec!["no-such-workload".into()];
        send(
            &mut writer,
            &Request::Submit {
                spec: bad,
                threads: 1,
            },
        )
        .expect("submit bad");
        match recv::<Response>(&mut reader).expect("reply") {
            Some(Response::Error { message }) => {
                assert!(message.contains("no-such-workload"), "{message}")
            }
            other => panic!("expected Error frame, got {other:?}"),
        }
        let mut good = tiny_spec();
        good.workloads.truncate(1);
        good.slice_buffer_entries = vec![128];
        good.l2_hit_latencies = vec![20];
        send(
            &mut writer,
            &Request::Submit {
                spec: good.clone(),
                threads: 1,
            },
        )
        .expect("submit good");
        let mut done = false;
        let mut cells = 0;
        while !done {
            match recv::<Response>(&mut reader).expect("stream").expect("msg") {
                Response::Accepted { cells: n, .. } => assert_eq!(n, 2),
                Response::Cell { .. } => cells += 1,
                Response::Done { report_digest, .. } => {
                    assert_eq!(report_digest, run_sweep(&good, 1).unwrap().digest());
                    done = true;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(cells, 2);
        drop(writer);
        drop(reader);
        let summary = server.join().expect("join").remove(0).expect("clean close");
        assert_eq!(summary.submits, 1);

        // 5. Client-side: submitting an invalid spec never touches the
        //    network.
        let mut bad = tiny_spec();
        bad.insts = 0;
        match submit("127.0.0.1:1", &bad, 1, |_, _, _| {}) {
            Err(WireError::Spec(msg)) => assert!(msg.contains("instruction budget")),
            other => panic!("expected Spec error, got {other:?}"),
        }
    }
}
