//! The sweep service wire protocol (`icfp-wire/v2`).
//!
//! A client submits a whole [`SweepSpec`] to a running `icfp-sweepd`; the
//! server expands, validates and executes it (through the shared executor
//! and result cache) and streams each cell back *as it finishes*, closing
//! with the report digest and cache counters.  The client reassembles the
//! streamed cells — by index, so arrival order is irrelevant — into a
//! [`SweepReport`] byte-identical to a local [`crate::run_sweep`] of the
//! same spec, and verifies its digest against the server's.
//!
//! ## Transport
//!
//! Messages are vendored-serde payloads in length-prefixed frames
//! ([`serde::frame`]: `u32` LE length + payload, 16 MiB ceiling).  The
//! conversation:
//!
//! ```text
//! client                          server
//! ──────────────────────────────────────────────────────────
//! Hello2{version, features} ──▶
//!                         ◀──    Hello2{version, features}
//! Submit{spec, threads}   ──▶
//!                         ◀──    Accepted{cells, threads}
//!                         ◀──    Cell{index, cached, cell}   (× cells)
//!                         ◀──    Done{report_digest, hits, misses}
//! (next Submit / ShardSubmit, or close)
//! ```
//!
//! ## Capability negotiation and shard submissions
//!
//! The v2 handshake carries a feature list besides the version string
//! ([`base_features`]; workers add `"worker"`), so peers can tell *what* a
//! server speaks before submitting.  Version skew in either direction is a
//! typed [`WireError::UnsupportedVersion`], never a decode failure: the v1
//! `Hello` variant is retained in the [`Request`] enum (vendored-serde
//! enum encoding is append-only, so v1 frames still decode) and answered
//! with an `Error` frame naming both versions; a v2 client recognizes a v1
//! server's `Hello`/`Error` reply the same way.
//!
//! Besides whole-spec submissions, a v2 peer with the `"shard"` capability
//! accepts [`crate::plan::SweepShard`] slices of a grid
//! (`ShardSubmit` → `Accepted` → `ShardCell` × cells → `ShardDone`) — the
//! distributed execution path ([`crate::backend::RemoteBackend`]).  A
//! shard ships per-column trace *digests*, never trace bytes; the worker
//! regenerates each column from the registry or opens a local container
//! ([`icfp_isa::TraceFile::open_validated`]) and refuses the shard on any
//! digest mismatch.  `ShardCell` indices are *full-grid* positions (the
//! worker translates through the shard's index map), so the coordinator
//! merges streams from any number of workers without per-shard bookkeeping.
//!
//! Anything unexpected — an undecodable frame, a version mismatch, an
//! invalid spec — is answered with an `Error` frame where possible and is
//! always a typed [`WireError`] on both sides, never a panic: a hostile
//! peer cannot take the server down.

use crate::executor::{column_source, run_sweep_streamed, ExecOptions, DEFAULT_PANIC_RETRIES};
use crate::fault::{FaultPlan, FrameAction};
use crate::plan::SweepShard;
use crate::report::{SweepCell, SweepReport};
use crate::spec::SweepSpec;
use crate::ResultCache;
use icfp_isa::{TraceFile, TraceSource};
use std::collections::HashMap;
use serde::frame::{read_frame, write_frame, FrameError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The protocol version string exchanged in the handshake.
pub const WIRE_VERSION: &str = "icfp-wire/v2";

/// The previous protocol version: whole-spec submissions only, no feature
/// negotiation.  Retained so skewed peers are *recognized* (and refused
/// with a typed error) rather than mis-decoded.
pub const WIRE_VERSION_V1: &str = "icfp-wire/v1";

/// The capability set a client advertises and a plain server grants:
/// whole-spec submissions (`"sweep"`) and shard submissions (`"shard"`).
/// Worker-mode servers ([`ServeOptions::worker`]) additionally advertise
/// `"worker"` — an advisory label; the message set is identical.
pub fn base_features() -> Vec<String> {
    vec!["sweep".to_string(), "shard".to_string()]
}

/// Frame ceiling for this protocol (the transport default).
pub const MAX_WIRE_FRAME: usize = serde::MAX_FRAME_LEN;

/// Client → server messages.
///
/// Variant order is the wire encoding (vendored serde is positional):
/// **append only**, so frames from older peers keep decoding into the
/// variants they meant — version skew must surface as a typed refusal, not
/// a decode failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// The v1 handshake.  A v2 server decodes it and answers with a typed
    /// "unsupported version" `Error` frame naming both versions.
    Hello {
        /// The client's version string.
        version: String,
    },
    /// Run this sweep and stream the cells back.
    Submit {
        /// The full grid to execute.
        spec: SweepSpec,
        /// Requested worker threads (0 = server default).
        threads: u64,
    },
    /// The v2 handshake; must be the first message on a connection.
    Hello2 {
        /// The client's [`WIRE_VERSION`].
        version: String,
        /// Capabilities the client intends to use ([`base_features`]).
        features: Vec<String>,
    },
    /// Run one planned shard of a grid and stream its cells back
    /// (full-grid indices).  Requires the `"shard"` capability.
    ShardSubmit {
        /// The shard: sub-spec, index map, per-column trace digests.
        shard: crate::plan::SweepShard,
        /// Requested worker threads (0 = server default).
        threads: u64,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake reply.
    Hello {
        /// The server's [`WIRE_VERSION`].
        version: String,
    },
    /// The submitted spec validated; cells will stream next.
    Accepted {
        /// Number of cells the spec expands to.
        cells: u64,
        /// Worker threads the server will actually use.
        threads: u64,
    },
    /// One finished cell (streamed in completion order).
    Cell {
        /// The cell's position in [`SweepSpec::expand`] order.
        index: u64,
        /// Whether it was served from the server's result cache.
        cached: bool,
        /// The cell itself.
        cell: SweepCell,
    },
    /// The sweep finished; no more cells follow for this submission.
    Done {
        /// Digest of the assembled report ([`SweepReport::digest`]).
        report_digest: u64,
        /// Cells served from the server's result cache.
        hits: u64,
        /// Cells the server computed.
        misses: u64,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// The v2 handshake reply.
    Hello2 {
        /// The server's [`WIRE_VERSION`].
        version: String,
        /// Capabilities this server grants ([`base_features`], plus
        /// `"worker"` in worker mode).
        features: Vec<String>,
    },
    /// One finished cell of a shard submission, streamed in completion
    /// order and addressed by *full-grid* index (the server translates
    /// through the shard's index map).
    ShardCell {
        /// The cell's position in the **full** grid's expand order.
        index: u64,
        /// Whether it was served from the worker's result cache.
        cached: bool,
        /// The cell itself.
        cell: SweepCell,
    },
    /// The shard finished; no more cells follow for this submission.
    ShardDone {
        /// Echo of the submitted [`crate::plan::SweepShard::shard_index`].
        shard_index: u64,
        /// Digest of the shard's own sub-report ([`SweepReport::digest`]
        /// over the sub-spec), so the client can verify the slice before
        /// the coordinator commits it to the merge.
        report_digest: u64,
        /// Cells served from the worker's result cache.
        hits: u64,
        /// Cells the worker computed.
        misses: u64,
    },
}

/// Typed failures on either side of the wire.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The transport layer rejected a frame (hostile length, truncation).
    Frame(FrameError),
    /// A frame arrived but its payload would not decode.
    Decode(String),
    /// The peer violated the protocol (wrong message, wrong version, bad
    /// index, missing cells).
    Protocol(String),
    /// The server answered with an `Error` frame.
    Server(String),
    /// The spec failed validation before anything was sent.
    Spec(String),
    /// The peer closed the connection cleanly in the middle of a
    /// conversation — a crashed or restarting server.  Retriable: a fresh
    /// reconnect + re-submit usually succeeds (and already-computed cells
    /// come back as cache hits).
    Disconnected,
    /// The peers speak different protocol versions — detected at the
    /// handshake, in either direction, before any submission.  Not
    /// retriable: the same peer will refuse again.
    UnsupportedVersion {
        /// The version this side speaks.
        ours: String,
        /// The version the peer announced (best-effort for pre-v2 peers,
        /// whose refusals carry no structured version field).
        theirs: String,
    },
}

impl WireError {
    /// Whether a fresh reconnect + re-submit may succeed: transport-level
    /// failures (I/O errors, torn or timed-out frames, a peer that vanished
    /// mid-conversation) are retriable; semantic rejections (invalid spec,
    /// server-reported errors, protocol violations, undecodable payloads)
    /// are not — retrying would deterministically fail again.
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            WireError::Io(_) | WireError::Frame(_) | WireError::Disconnected
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Frame(e) => write!(f, "wire framing: {e}"),
            WireError::Decode(e) => write!(f, "wire payload would not decode: {e}"),
            WireError::Protocol(e) => write!(f, "protocol violation: {e}"),
            WireError::Server(e) => write!(f, "server error: {e}"),
            WireError::Spec(e) => write!(f, "invalid sweep spec: {e}"),
            WireError::Disconnected => write!(f, "peer closed mid-conversation"),
            WireError::UnsupportedVersion { ours, theirs } => {
                write!(f, "unsupported protocol version: we speak {ours:?}, peer speaks {theirs:?}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => WireError::Io(io),
            other => WireError::Frame(other),
        }
    }
}

/// Writes one message as a frame.
fn send<T: Serialize>(w: &mut impl std::io::Write, msg: &T) -> Result<(), WireError> {
    write_frame(w, &serde::to_bytes(msg))?;
    w.flush().map_err(WireError::Io)
}

/// Reads one message frame; `Ok(None)` is a clean peer close.
fn recv<T: Deserialize>(r: &mut impl std::io::Read) -> Result<Option<T>, WireError> {
    match read_frame(r, MAX_WIRE_FRAME)? {
        None => Ok(None),
        Some(bytes) => serde::from_bytes(&bytes)
            .map(Some)
            .map_err(|e| WireError::Decode(e.to_string())),
    }
}

/// Reads one message frame, treating peer close as [`WireError::Disconnected`]
/// (used where the conversation is mid-flight and a message is owed — the
/// retriable signature of a crashed or restarting peer).
fn recv_expected<T: Deserialize>(r: &mut impl std::io::Read) -> Result<T, WireError> {
    recv(r)?.ok_or(WireError::Disconnected)
}

/// Server-side send through the outbound-frame fault seam: an armed
/// [`FaultPlan`] can drop or truncate exactly one frame, after which the
/// injected transport error propagates like a real mid-stream crash and the
/// connection is severed.
fn send_srv<T: Serialize>(
    w: &mut impl std::io::Write,
    msg: &T,
    fault: Option<&FaultPlan>,
) -> Result<(), WireError> {
    match fault.map_or(FrameAction::Pass, |p| p.next_frame_action()) {
        FrameAction::Pass => send(w, msg),
        FrameAction::Drop => Err(WireError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            "injected fault: outbound frame dropped, connection severed",
        ))),
        FrameAction::Truncate(k) => {
            let mut framed = Vec::new();
            write_frame(&mut framed, &serde::to_bytes(msg))?;
            let keep = k.min(framed.len().saturating_sub(1)).max(1);
            w.write_all(&framed[..keep]).map_err(WireError::Io)?;
            w.flush().map_err(WireError::Io)?;
            Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "injected fault: outbound frame truncated, connection severed",
            )))
        }
    }
}

/// Client retry policy: deterministic exponential backoff between
/// reconnect-and-resubmit attempts, plus the per-stream I/O deadline.
///
/// The delay before retry *k* (0-based) is `base_delay_ms << k`, capped at
/// `max_delay_ms` — a pure function of the policy and the attempt number,
/// so the schedule is reproducible ([`backoff_delay`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Reconnect attempts after the first failure (0 = fail fast).
    pub retries: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on any single backoff delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Read/write deadline on the client's stream, in milliseconds
    /// (0 = no deadline).  A server that stalls mid-frame longer than this
    /// surfaces as a retriable [`FrameError::TimedOut`].
    pub io_timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 4,
            base_delay_ms: 100,
            max_delay_ms: 2_000,
            io_timeout_ms: 30_000,
        }
    }
}

impl RetryPolicy {
    /// The stream deadline as a `Duration` (`None` when disabled).
    pub fn io_timeout(&self) -> Option<Duration> {
        (self.io_timeout_ms > 0).then(|| Duration::from_millis(self.io_timeout_ms))
    }
}

/// The deterministic backoff delay before 0-based retry `attempt`:
/// `base_delay_ms << attempt`, capped at `max_delay_ms`.
pub fn backoff_delay(policy: &RetryPolicy, attempt: u32) -> Duration {
    let exp = policy
        .base_delay_ms
        .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX).max(1));
    Duration::from_millis(exp.min(policy.max_delay_ms))
}

/// The result of one client submission.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The reassembled report — byte-identical to a local run of the spec.
    pub report: SweepReport,
    /// Cells the server served from its result cache.
    pub hits: u64,
    /// Cells the server computed.
    pub misses: u64,
}

/// Submits a sweep to a running `icfp-sweepd` at `addr` (e.g.
/// `127.0.0.1:7400`), reassembling the streamed cells into a report.
/// `threads` is the requested server-side worker count (0 = server
/// default).  `on_cell` sees each cell as it arrives (completion order).
///
/// # Errors
///
/// Any [`WireError`].  The returned report's digest is verified against the
/// server's `Done` digest, so a successful return is a report identical to
/// the server's — and, by the executor's determinism, to a local run.
pub fn submit(
    addr: &str,
    spec: &SweepSpec,
    threads: usize,
    mut on_cell: impl FnMut(usize, bool, &SweepCell),
) -> Result<SubmitOutcome, WireError> {
    submit_once(addr, spec, threads, None, &mut on_cell)
}

/// Submits with reconnect-and-resume: on a retriable failure (I/O error,
/// torn or timed-out frame, peer vanished mid-stream) the client waits the
/// policy's deterministic backoff ([`backoff_delay`]), reconnects, and
/// re-submits the whole spec.  Cells the server already computed come back
/// as cache hits, so the reassembled report of the successful attempt is
/// byte-identical to an uninterrupted run.  Non-retriable failures (invalid
/// spec, server-reported errors, protocol violations) return immediately.
///
/// `on_cell` observes the stream of every attempt, so an interrupted
/// attempt's cells may be seen twice; reassembly uses only the successful
/// attempt.
///
/// # Errors
///
/// The last retriable [`WireError`] once `policy.retries` is exhausted, or
/// the first non-retriable one.
pub fn submit_with(
    addr: &str,
    spec: &SweepSpec,
    threads: usize,
    policy: &RetryPolicy,
    mut on_cell: impl FnMut(usize, bool, &SweepCell),
) -> Result<SubmitOutcome, WireError> {
    let mut last = None;
    for attempt in 0..=policy.retries {
        if attempt > 0 {
            std::thread::sleep(backoff_delay(policy, attempt - 1));
        }
        match submit_once(addr, spec, threads, policy.io_timeout(), &mut on_cell) {
            Ok(outcome) => return Ok(outcome),
            Err(e) if e.is_retriable() => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("loop ran at least once"))
}

/// Opens a framed connection to `addr` under the given I/O deadline.
fn connect_framed(
    addr: &str,
    io_timeout: Option<Duration>,
) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), WireError> {
    let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
    stream.set_read_timeout(io_timeout).map_err(WireError::Io)?;
    stream.set_write_timeout(io_timeout).map_err(WireError::Io)?;
    let reader = BufReader::new(stream.try_clone().map_err(WireError::Io)?);
    Ok((reader, BufWriter::new(stream)))
}

/// Performs the client side of the v2 handshake, returning the capability
/// set the server granted.  A pre-v2 server — which answers the unknown
/// `Hello2` variant with an `Error` frame or a v1 `Hello` — is a typed
/// [`WireError::UnsupportedVersion`], never a decode failure.
fn client_handshake(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
) -> Result<Vec<String>, WireError> {
    send(
        writer,
        &Request::Hello2 {
            version: WIRE_VERSION.to_string(),
            features: base_features(),
        },
    )?;
    match recv_expected::<Response>(reader)? {
        Response::Hello2 { version, features } if version == WIRE_VERSION => Ok(features),
        Response::Hello2 { version, .. } | Response::Hello { version } => {
            Err(WireError::UnsupportedVersion {
                ours: WIRE_VERSION.to_string(),
                theirs: version,
            })
        }
        // A peer that refuses the handshake outright is a version (or
        // capability) mismatch by definition — its Error text is the best
        // version description it gave us.
        Response::Error { message } => Err(WireError::UnsupportedVersion {
            ours: WIRE_VERSION.to_string(),
            theirs: format!("pre-v2 peer ({message})"),
        }),
        other => Err(WireError::Protocol(format!(
            "expected Hello2, got {other:?}"
        ))),
    }
}

/// One submission attempt over one fresh connection.
fn submit_once(
    addr: &str,
    spec: &SweepSpec,
    threads: usize,
    io_timeout: Option<Duration>,
    on_cell: &mut impl FnMut(usize, bool, &SweepCell),
) -> Result<SubmitOutcome, WireError> {
    spec.validate().map_err(WireError::Spec)?;
    let (mut reader, mut writer) = connect_framed(addr, io_timeout)?;
    client_handshake(&mut reader, &mut writer)?;

    send(
        &mut writer,
        &Request::Submit {
            spec: spec.clone(),
            threads: threads as u64,
        },
    )?;
    let (cells_expected, server_threads) = match recv_expected::<Response>(&mut reader)? {
        Response::Accepted { cells, threads } => (cells as usize, threads as usize),
        Response::Error { message } => return Err(WireError::Server(message)),
        other => {
            return Err(WireError::Protocol(format!(
                "expected Accepted, got {other:?}"
            )))
        }
    };
    if cells_expected != spec.cell_count() {
        return Err(WireError::Protocol(format!(
            "server accepted {cells_expected} cells for a {}-cell spec",
            spec.cell_count()
        )));
    }

    let mut cells: Vec<Option<SweepCell>> = (0..cells_expected).map(|_| None).collect();
    loop {
        match recv_expected::<Response>(&mut reader)? {
            Response::Cell {
                index,
                cached,
                cell,
            } => {
                let index = index as usize;
                if index >= cells_expected {
                    return Err(WireError::Protocol(format!(
                        "cell index {index} out of range ({cells_expected} cells)"
                    )));
                }
                if cells[index].is_some() {
                    return Err(WireError::Protocol(format!("cell {index} streamed twice")));
                }
                on_cell(index, cached, &cell);
                cells[index] = Some(cell);
            }
            Response::Done {
                report_digest,
                hits,
                misses,
            } => {
                let mut assembled = Vec::with_capacity(cells_expected);
                for (k, c) in cells.into_iter().enumerate() {
                    assembled.push(c.ok_or_else(|| {
                        WireError::Protocol(format!("server finished without streaming cell {k}"))
                    })?);
                }
                let report = SweepReport {
                    threads: server_threads,
                    warm_fork: spec.warm_fork,
                    insts: spec.insts,
                    seed: spec.seed,
                    reps: spec.reps.max(1),
                    workloads: spec.workloads.clone(),
                    cells: assembled,
                };
                let digest = report.digest();
                if digest != report_digest {
                    return Err(WireError::Protocol(format!(
                        "reassembled report digest {digest:#018x} does not match the server's {report_digest:#018x}"
                    )));
                }
                return Ok(SubmitOutcome {
                    report,
                    hits,
                    misses,
                });
            }
            Response::Error { message } => return Err(WireError::Server(message)),
            other => {
                return Err(WireError::Protocol(format!(
                    "expected Cell or Done, got {other:?}"
                )))
            }
        }
    }
}

/// The result of one shard submission: the verified cells (full-grid
/// indices, completion order) plus the worker's cache counters.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// `(full_grid_index, cached, cell)` for every cell of the shard, in
    /// the order the worker streamed them.  Only returned once the worker's
    /// `ShardDone` digest has been verified against the reassembled slice —
    /// a partially streamed or corrupted shard never leaks cells.
    pub cells: Vec<(usize, bool, SweepCell)>,
    /// Cells served from the worker's result cache.
    pub hits: u64,
    /// Cells the worker computed.
    pub misses: u64,
}

/// Submits one planned shard to a worker at `addr`, collecting its streamed
/// cells.  `threads` is the requested worker-side thread count (0 = worker
/// default).  The returned cells carry *full-grid* indices and are verified
/// two ways before return: every streamed index must belong to the shard's
/// index map (exactly once), and the reassembled sub-report's digest must
/// equal the worker's `ShardDone` digest.
///
/// # Errors
///
/// Any [`WireError`].  Transport-level failures (including a worker that
/// died mid-shard) are retriable ([`WireError::is_retriable`]) — the
/// coordinator's cue to reassign the shard to another worker.
pub fn submit_shard(
    addr: &str,
    shard: &crate::plan::SweepShard,
    threads: usize,
    io_timeout: Option<Duration>,
) -> Result<ShardOutcome, WireError> {
    shard.spec.validate_axes().map_err(WireError::Spec)?;
    let n = shard.cell_count();
    if shard.index_map.len() != n {
        return Err(WireError::Spec(format!(
            "shard index map has {} entries for a {n}-cell sub-spec",
            shard.index_map.len()
        )));
    }
    let (mut reader, mut writer) = connect_framed(addr, io_timeout)?;
    let features = client_handshake(&mut reader, &mut writer)?;
    if !features.iter().any(|f| f == "shard") {
        return Err(WireError::Protocol(format!(
            "peer granted no \"shard\" capability (features: {features:?})"
        )));
    }

    send(
        &mut writer,
        &Request::ShardSubmit {
            shard: shard.clone(),
            threads: threads as u64,
        },
    )?;
    match recv_expected::<Response>(&mut reader)? {
        Response::Accepted { cells, .. } if cells as usize == n => {}
        Response::Accepted { cells, .. } => {
            return Err(WireError::Protocol(format!(
                "worker accepted {cells} cells for a {n}-cell shard"
            )))
        }
        Response::Error { message } => return Err(WireError::Server(message)),
        other => {
            return Err(WireError::Protocol(format!(
                "expected Accepted, got {other:?}"
            )))
        }
    }

    // Streamed indices are full-grid positions; invert the shard's map to
    // validate membership and detect duplicates.
    let sub_of: std::collections::HashMap<u64, usize> = shard
        .index_map
        .iter()
        .enumerate()
        .map(|(sub, &full)| (full, sub))
        .collect();
    let mut slots: Vec<Option<usize>> = vec![None; n]; // sub index -> cells pos
    let mut cells: Vec<(usize, bool, SweepCell)> = Vec::with_capacity(n);
    loop {
        match recv_expected::<Response>(&mut reader)? {
            Response::ShardCell {
                index,
                cached,
                cell,
            } => {
                let sub = *sub_of.get(&index).ok_or_else(|| {
                    WireError::Protocol(format!("cell index {index} is not in this shard"))
                })?;
                if slots[sub].is_some() {
                    return Err(WireError::Protocol(format!("cell {index} streamed twice")));
                }
                slots[sub] = Some(cells.len());
                cells.push((index as usize, cached, cell));
            }
            Response::ShardDone {
                shard_index,
                report_digest,
                hits,
                misses,
            } => {
                if shard_index != shard.shard_index {
                    return Err(WireError::Protocol(format!(
                        "worker finished shard {shard_index}, we submitted {}",
                        shard.shard_index
                    )));
                }
                // Reassemble the slice in sub-spec expand order and verify
                // its digest against the worker's.
                let mut sub_cells = Vec::with_capacity(n);
                for (sub, slot) in slots.iter().enumerate() {
                    let &pos = slot.as_ref().ok_or_else(|| {
                        WireError::Protocol(format!(
                            "worker finished without streaming cell {} (sub index {sub})",
                            shard.index_map[sub]
                        ))
                    })?;
                    sub_cells.push(Some(cells[pos].2.clone()));
                }
                let sub_report = crate::plan::merge_report(&shard.spec, 1, sub_cells)
                    .map_err(WireError::Protocol)?;
                let digest = sub_report.digest();
                if digest != report_digest {
                    return Err(WireError::Protocol(format!(
                        "reassembled shard digest {digest:#018x} does not match the worker's {report_digest:#018x}"
                    )));
                }
                return Ok(ShardOutcome {
                    cells,
                    hits,
                    misses,
                });
            }
            Response::Error { message } => return Err(WireError::Server(message)),
            other => {
                return Err(WireError::Protocol(format!(
                    "expected ShardCell or ShardDone, got {other:?}"
                )))
            }
        }
    }
}

/// Server-side options for a connection.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Default worker threads for submissions that request 0.
    pub threads: usize,
    /// Result cache directory, if caching is enabled (opened per
    /// submission; [`ServeOptions::cache`] takes precedence when set).
    pub cache_dir: Option<PathBuf>,
    /// A pre-opened result cache shared across every connection — the
    /// concurrent [`serve`] loop opens [`ServeOptions::cache_dir`] once
    /// into this field so all connections share one store.
    pub cache: Option<Arc<ResultCache>>,
    /// Read/write deadline on each accepted stream (`None` = no deadline).
    /// A peer that stalls mid-frame longer than this gets a typed
    /// [`FrameError::TimedOut`] and its connection reaped — a slow-loris
    /// client can never hang a server thread.
    pub io_timeout: Option<Duration>,
    /// Retries for a panicking cell before it is recorded as a typed failed
    /// cell ([`crate::executor::ExecOptions::panic_retries`]).
    pub panic_retries: u32,
    /// Deterministic fault-injection plan for the outbound-frame and
    /// executor seams (tests only; `None` in production).
    pub fault: Option<Arc<FaultPlan>>,
    /// Cooperative cancellation for in-flight sweeps (graceful drain):
    /// when set, executors stop pulling new cell groups, in-flight cells
    /// finish and land in the cache, and the submission ends in a typed
    /// error frame.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Counter of successfully served submissions, bumped after each `Done`
    /// frame — [`serve`] arms this so its submission ceiling counts real
    /// service, never failed handshakes.
    pub served: Option<Arc<AtomicU64>>,
    /// Worker mode (`icfp-sweepd --worker`): advertise the `"worker"`
    /// capability in the handshake.  Advisory — the served message set is
    /// identical; coordinators use it to label their worker pools.
    pub worker: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 0,
            cache_dir: None,
            cache: None,
            io_timeout: None,
            panic_retries: DEFAULT_PANIC_RETRIES,
            fault: None,
            cancel: None,
            served: None,
            worker: false,
        }
    }
}

/// Per-connection summary returned by [`handle_conn`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnSummary {
    /// Sweeps executed on this connection.
    pub submits: u64,
    /// Total cells served from the result cache across them.
    pub hits: u64,
    /// Total cells computed across them.
    pub misses: u64,
}

/// Resolves a shard's trace columns on the worker side: a column with a
/// [`crate::plan::ColumnSpec::local_path`] opens that `icfp-trace/v1|v2`
/// container; anything else regenerates from the workload registry exactly
/// as a local executor would.  Every resolved source must match the
/// planner's content digest — traces never travel on the wire, so the
/// digest is the *only* thing binding the worker's trace to the
/// coordinator's, and any mismatch (stale file, skewed registry, wrong
/// seed) refuses the shard before a single cell runs.
fn resolve_shard_columns(
    shard: &SweepShard,
) -> Result<HashMap<String, Arc<dyn TraceSource>>, String> {
    shard.spec.validate_axes()?;
    if shard.index_map.len() != shard.spec.cell_count() {
        return Err(format!(
            "shard index map has {} entries for a {}-cell sub-spec",
            shard.index_map.len(),
            shard.spec.cell_count()
        ));
    }
    let mut columns: HashMap<String, Arc<dyn TraceSource>> = HashMap::new();
    for col in &shard.columns {
        let source: Arc<dyn TraceSource> = match &col.local_path {
            Some(path) => Arc::new(
                TraceFile::open_validated(path, col.trace_digest).map_err(|e| {
                    format!("shard column {:?}: container {path:?}: {e}", col.workload)
                })?,
            ),
            None => column_source(&shard.spec, &col.workload).ok_or_else(|| {
                format!(
                    "shard column {:?} is not a registry workload and carries no local container",
                    col.workload
                )
            })?,
        };
        let found = source.digest();
        if found != col.trace_digest {
            return Err(format!(
                "shard column {:?}: trace digest {found:#018x} does not match the planner's {:#018x}",
                col.workload, col.trace_digest
            ));
        }
        columns.insert(col.workload.clone(), source);
    }
    for w in &shard.spec.workloads {
        if !columns.contains_key(w) {
            return Err(format!("shard carries no trace column for workload {w:?}"));
        }
    }
    Ok(columns)
}

/// Serves one client connection: handshake, then any number of submissions,
/// until the client closes.  Every failure path answers with an `Error`
/// frame when the stream still works and returns a typed [`WireError`] —
/// a hostile or confused peer never panics the server.
///
/// # Errors
///
/// Any [`WireError`]; the caller (the `icfp-sweepd` accept loop) logs it
/// and moves on to the next connection.
pub fn handle_conn(stream: TcpStream, opts: &ServeOptions) -> Result<ConnSummary, WireError> {
    stream
        .set_read_timeout(opts.io_timeout)
        .map_err(WireError::Io)?;
    stream
        .set_write_timeout(opts.io_timeout)
        .map_err(WireError::Io)?;
    let fault = opts.fault.as_deref();
    let mut reader = BufReader::new(stream.try_clone().map_err(WireError::Io)?);
    let mut writer = BufWriter::new(stream);
    let mut summary = ConnSummary::default();

    // Handshake.  An undecodable first frame still gets an Error reply.
    let hello = match recv::<Request>(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return Ok(summary),
        Err(e) => {
            let _ = send(
                &mut writer,
                &Response::Error {
                    message: format!("bad handshake: {e}"),
                },
            );
            return Err(e);
        }
    };
    match hello {
        Request::Hello2 { ref version, .. } if version == WIRE_VERSION => {}
        // Version skew — a v1 `Hello`, or a future `Hello2` with a version
        // we don't speak — gets a typed refusal naming both versions, never
        // a decode failure or a confusing protocol error.
        Request::Hello { version } | Request::Hello2 { version, .. } => {
            let message =
                format!("server speaks {WIRE_VERSION:?}, client sent {version:?}");
            let _ = send(&mut writer, &Response::Error { message: message.clone() });
            return Err(WireError::UnsupportedVersion {
                ours: WIRE_VERSION.to_string(),
                theirs: version,
            });
        }
        other => {
            let message = format!("expected Hello2 first, got {other:?}");
            let _ = send(&mut writer, &Response::Error { message: message.clone() });
            return Err(WireError::Protocol(message));
        }
    }
    let mut features = base_features();
    if opts.worker {
        features.push("worker".to_string());
    }
    send_srv(
        &mut writer,
        &Response::Hello2 {
            version: WIRE_VERSION.to_string(),
            features,
        },
        fault,
    )?;

    // Submission loop: whole specs (`Submit`) and grid slices
    // (`ShardSubmit`) share the executor, the cache and the streaming
    // machinery; shards additionally carry pre-resolved trace columns and
    // translate cell indices back to full-grid positions.
    loop {
        let req = match recv::<Request>(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(summary),
            Err(e) => {
                let _ = send(
                    &mut writer,
                    &Response::Error {
                        message: format!("bad request: {e}"),
                    },
                );
                return Err(e);
            }
        };
        let (spec, threads, shard_meta) = match req {
            Request::Submit { spec, threads } => {
                if let Err(e) = spec.validate() {
                    // An invalid spec fails the submission, not the
                    // connection.
                    send(&mut writer, &Response::Error { message: e })?;
                    continue;
                }
                (spec, threads, None)
            }
            Request::ShardSubmit { shard, threads } => {
                // A malformed shard — bad axes, unknown column, digest
                // mismatch — likewise fails the submission only.
                match resolve_shard_columns(&shard) {
                    Ok(columns) => {
                        let crate::plan::SweepShard {
                            shard_index,
                            spec,
                            index_map,
                            ..
                        } = shard;
                        (spec, threads, Some((shard_index, index_map, columns)))
                    }
                    Err(e) => {
                        send(&mut writer, &Response::Error { message: e })?;
                        continue;
                    }
                }
            }
            other => {
                let message = format!("expected Submit or ShardSubmit, got {other:?}");
                let _ = send(&mut writer, &Response::Error { message: message.clone() });
                return Err(WireError::Protocol(message));
            }
        };
        let requested = if threads == 0 {
            opts.threads.max(1)
        } else {
            threads as usize
        };
        // Prefer the pre-opened shared cache; fall back to opening the
        // configured directory per submission.
        let opened;
        let cache: Option<&ResultCache> = if let Some(shared) = &opts.cache {
            Some(shared)
        } else {
            match &opts.cache_dir {
                Some(dir) => match ResultCache::open(dir) {
                    Ok(c) => {
                        // Arm the cache-write fault seam on the fallback
                        // open too, mirroring [`serve`]'s shared open.
                        opened = match &opts.fault {
                            Some(plan) => c.with_fault(Arc::clone(plan)),
                            None => c,
                        };
                        Some(&opened)
                    }
                    Err(e) => {
                        let message = format!("result cache unavailable: {e}");
                        let _ = send(&mut writer, &Response::Error { message: message.clone() });
                        return Err(WireError::Protocol(message));
                    }
                },
                None => None,
            }
        };

        // Mirror the executor's thread clamp so the Accepted message (which
        // the client copies into its reassembled report header) states the
        // worker count the report will actually record.
        let num_groups = crate::executor::plan_groups(
            spec.warm_fork || cache.is_some(),
            &spec.expand(),
        )
        .len();
        let workers = requested.clamp(1, num_groups.max(1));

        send_srv(
            &mut writer,
            &Response::Accepted {
                cells: spec.cell_count() as u64,
                threads: workers as u64,
            },
            fault,
        )?;

        // Stream cells as the executor completes them.  A send failure mid-
        // sweep is recorded and surfaced after the executor returns (the
        // callback itself must not unwind through the thread pool) — the
        // sweep still completes into the cache, so the client's re-submit
        // after reconnecting is served as hits.
        let mut send_err: Option<WireError> = None;
        let exec = ExecOptions {
            threads: workers,
            cache,
            panic_retries: opts.panic_retries,
            fault,
            cancel: opts.cancel.as_deref(),
            columns: shard_meta.as_ref().map(|(_, _, cols)| cols),
        };
        let outcome = run_sweep_streamed(&spec, &exec, |event| {
            if send_err.is_none() {
                // Shard cells go out under their *full-grid* index, so the
                // coordinator's merge needs no per-shard bookkeeping.
                let resp = match &shard_meta {
                    Some((_, index_map, _)) => Response::ShardCell {
                        index: index_map[event.index],
                        cached: event.cached,
                        cell: event.cell.clone(),
                    },
                    None => Response::Cell {
                        index: event.index as u64,
                        cached: event.cached,
                        cell: event.cell.clone(),
                    },
                };
                if let Err(e) = send_srv(&mut writer, &resp, fault) {
                    send_err = Some(e);
                }
            }
        });
        if let Some(e) = send_err {
            return Err(e);
        }
        // validate() passed, so the only executor failure left is a
        // graceful-drain cancellation: answer with a typed Error frame.
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                let _ = send(&mut writer, &Response::Error { message: e.clone() });
                return Err(WireError::Protocol(e));
            }
        };
        let finish = match &shard_meta {
            Some((shard_index, _, _)) => Response::ShardDone {
                shard_index: *shard_index,
                report_digest: outcome.report.digest(),
                hits: outcome.cache.hits,
                misses: outcome.cache.misses,
            },
            None => Response::Done {
                report_digest: outcome.report.digest(),
                hits: outcome.cache.hits,
                misses: outcome.cache.misses,
            },
        };
        send_srv(&mut writer, &finish, fault)?;
        summary.submits += 1;
        summary.hits += outcome.cache.hits;
        summary.misses += outcome.cache.misses;
        if let Some(counter) = &opts.served {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Options for the concurrent [`serve`] accept loop.
#[derive(Debug, Clone)]
pub struct AcceptOptions {
    /// Ceiling on simultaneously served connections; further connections
    /// queue in the OS accept backlog until a slot frees, so a cache-hit
    /// submission never waits behind a cold sweep as long as a slot is
    /// open.
    pub max_inflight: usize,
    /// Stop after this many *successfully served submissions* (`None` =
    /// serve forever).  Connections that fail the handshake or never
    /// complete a sweep don't count.
    pub max_submissions: Option<u64>,
    /// Graceful-shutdown flag (e.g. set by a SIGINT handler): when it goes
    /// true the loop stops accepting, in-flight connections drain, and
    /// [`serve`] returns.
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl Default for AcceptOptions {
    fn default() -> Self {
        AcceptOptions {
            max_inflight: 4,
            max_submissions: None,
            shutdown: None,
        }
    }
}

/// What [`serve`] did before returning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted and handed to a handler thread.
    pub connections: u64,
    /// Successfully served submissions across all of them.
    pub submissions: u64,
    /// Connections that ended in a typed error (failed handshakes, hostile
    /// frames, stalled peers, injected faults).
    pub failed: u64,
}

/// The concurrent accept loop: thread-per-connection over one shared
/// executor and result cache, bounded by [`AcceptOptions::max_inflight`].
///
/// Each accepted stream gets [`ServeOptions::io_timeout`] deadlines and its
/// own [`handle_conn`] thread; the loop itself never blocks on a
/// conversation, so a quick cache-hit submission runs beside a cold sweep.
/// The loop exits when [`AcceptOptions::max_submissions`] submissions have
/// been served or [`AcceptOptions::shutdown`] goes true, then *drains*:
/// every in-flight connection finishes (in-flight cells complete and land
/// in the cache) before [`serve`] returns.  A blocked `accept` is woken by
/// a loopback self-connection, so neither exit condition waits for a new
/// client.
///
/// `on_event` receives one human-readable line per lifecycle event (from
/// handler threads too, hence `Sync`).
pub fn serve(
    listener: TcpListener,
    opts: ServeOptions,
    accept: AcceptOptions,
    on_event: impl Fn(String) + Send + Sync,
) -> ServeSummary {
    let mut opts = opts;
    // Open the cache once; every connection shares it.
    if opts.cache.is_none() {
        if let Some(dir) = &opts.cache_dir {
            match ResultCache::open(dir) {
                Ok(c) => {
                    // Arm the cache-write fault seam on the shared store.
                    let c = match &opts.fault {
                        Some(plan) => c.with_fault(Arc::clone(plan)),
                        None => c,
                    };
                    opts.cache = Some(Arc::new(c));
                }
                Err(e) => {
                    on_event(format!("result cache unavailable, serving uncached: {e}"));
                    opts.cache_dir = None;
                }
            }
        }
    }
    let served = Arc::new(AtomicU64::new(0));
    opts.served = Some(Arc::clone(&served));
    let opts = Arc::new(opts);

    let connections = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let inflight = Mutex::new(0usize);
    let slot_freed = Condvar::new();
    let local = listener.local_addr().ok();
    let stop_waker = AtomicBool::new(false);

    let done = || {
        accept
            .shutdown
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
            || accept
                .max_submissions
                .is_some_and(|n| served.load(Ordering::Relaxed) >= n)
    };
    // Wakes a blocked `accept` by self-connecting; the dummy connection is
    // recognized and dropped by the `done()` re-check after accept.
    let wake = || {
        if let Some(addr) = local {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
    };

    std::thread::scope(|scope| {
        // The shutdown watcher: `accept` cannot observe a flag flipped by a
        // signal handler (glibc installs SA_RESTART semantics), so poll the
        // exit conditions and break the accept loop with a self-connection.
        if accept.shutdown.is_some() {
            scope.spawn(|| loop {
                if stop_waker.load(Ordering::Relaxed) {
                    return;
                }
                if done() {
                    wake();
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            });
        }
        loop {
            if done() {
                break;
            }
            {
                let mut n = inflight.lock().expect("inflight lock");
                while *n >= accept.max_inflight.max(1) {
                    n = slot_freed.wait(n).expect("inflight lock");
                }
            }
            if done() {
                break;
            }
            let (stream, peer) = match listener.accept() {
                Ok(x) => x,
                Err(e) => {
                    on_event(format!("accept failed: {e}"));
                    continue;
                }
            };
            if done() {
                // The waker's (or a late client's) connection arriving after
                // an exit condition: drop it and stop accepting.
                drop(stream);
                break;
            }
            connections.fetch_add(1, Ordering::Relaxed);
            *inflight.lock().expect("inflight lock") += 1;
            on_event(format!("connection from {peer}"));
            let opts = Arc::clone(&opts);
            let on_event = &on_event;
            let failed = &failed;
            let inflight = &inflight;
            let slot_freed = &slot_freed;
            let done = &done;
            let wake = &wake;
            scope.spawn(move || {
                match handle_conn(stream, &opts) {
                    Ok(summary) => on_event(format!(
                        "connection closed ({} sweeps, {} cache hits, {} computed)",
                        summary.submits, summary.hits, summary.misses
                    )),
                    Err(e) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                        on_event(format!("connection failed: {e}"));
                    }
                }
                *inflight.lock().expect("inflight lock") -= 1;
                slot_freed.notify_one();
                // This connection may have pushed the served count to the
                // ceiling while the accept loop is blocked: wake it.
                if done() {
                    wake();
                }
            });
        }
        stop_waker.store(true, Ordering::Relaxed);
        // Leaving the scope joins every handler thread: the drain.
    });

    ServeSummary {
        connections: connections.load(Ordering::Relaxed),
        submissions: served.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_sweep;
    use crate::testutil::tiny_spec;
    use std::net::TcpListener;

    /// Starts a one-connection-at-a-time server on an ephemeral port,
    /// returning its address and the accept-loop thread handle.
    fn spawn_server(
        opts: ServeOptions,
        conns: usize,
    ) -> (String, std::thread::JoinHandle<Vec<Result<ConnSummary, String>>>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || {
            let mut results = Vec::new();
            for _ in 0..conns {
                let (stream, _) = listener.accept().expect("accept");
                results.push(handle_conn(stream, &opts).map_err(|e| e.to_string()));
            }
            results
        });
        (addr, handle)
    }

    #[test]
    fn submitted_sweep_reassembles_byte_identical_to_a_local_run() {
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let spec = tiny_spec();
        let mut streamed = 0usize;
        let outcome = submit(&addr, &spec, 2, |_, cached, _| {
            assert!(!cached, "no cache configured");
            streamed += 1;
        })
        .expect("submit");
        assert_eq!(streamed, 32);
        assert_eq!(outcome.hits, 0);
        assert_eq!(outcome.misses, 32);

        // Digest-identical to a local run: every deterministic field agrees
        // (host-time figures are wall-clock measurements of two different
        // executions, so they are the one thing that can differ).
        let local = run_sweep(&spec, 2).expect("local run");
        assert_eq!(outcome.report.digest(), local.digest());
        assert_eq!(outcome.report.threads, local.threads);
        assert_eq!(outcome.report.workloads, local.workloads);
        for (a, b) in outcome.report.cells.iter().zip(&local.cells) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.ipc, b.ipc);
            assert_eq!(a.state_digest, b.state_digest);
        }

        let summaries = server.join().expect("server thread");
        assert_eq!(summaries, vec![Ok(ConnSummary { submits: 1, hits: 0, misses: 32 })]);
    }

    #[test]
    fn resubmission_is_served_from_the_server_cache_with_identical_report() {
        let dir = std::env::temp_dir().join(format!(
            "icfp-wire-test-cache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ServeOptions {
            threads: 2,
            cache_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };
        let (addr, server) = spawn_server(opts, 2);
        let mut spec = tiny_spec();
        spec.workloads.truncate(2);
        spec.l2_hit_latencies = vec![20];
        let n = spec.cell_count();

        let first = submit(&addr, &spec, 0, |_, _, _| {}).expect("first submit");
        assert_eq!(first.hits, 0);
        assert_eq!(first.misses, n as u64);
        let second = submit(&addr, &spec, 0, |_, cached, _| assert!(cached))
            .expect("second submit");
        assert_eq!(second.hits, n as u64, "fully served from cache");
        assert_eq!(second.misses, 0);
        assert_eq!(second.report, first.report);
        assert_eq!(second.report.to_json(), first.report.to_json());

        server.join().expect("server thread");

        // A *local* cached run over the same cache directory replays the
        // same stored figures: byte-identical to the wire reports, document
        // included — local and server runs are interchangeable.
        let cache = crate::ResultCache::open(&dir).expect("open cache");
        let local = crate::run_sweep_streamed(
            &spec,
            &crate::ExecOptions {
                threads: 2,
                cache: Some(&cache),
                ..crate::ExecOptions::default()
            },
            |_| {},
        )
        .expect("local cached run");
        assert_eq!(local.cache.hits, n as u64);
        assert_eq!(local.report, second.report);
        assert_eq!(local.report.to_json(), second.report.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_and_confused_clients_get_typed_errors_not_panics() {
        use std::io::Write as _;

        // 1. Garbage bytes that are a valid frame but not a Request.
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let mut stream = TcpStream::connect(&addr).expect("connect");
        write_frame(&mut stream, b"\xFF\xFF not a request").expect("frame");
        stream.flush().expect("flush");
        // The server answers with an Error frame, then drops the connection.
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        match recv::<Response>(&mut reader).expect("error frame") {
            Some(Response::Error { message }) => {
                assert!(message.contains("bad handshake"), "{message}");
            }
            other => panic!("expected Error frame, got {other:?}"),
        }
        let errs = server.join().expect("server thread");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].is_err(), "typed error, not a panic: {errs:?}");

        // 2. A hostile length prefix (4 GiB frame) — rejected by the
        //    transport without allocating; server survives to return.
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(&u32::MAX.to_le_bytes()).expect("prefix");
        drop(stream);
        let errs = server.join().expect("server thread");
        assert!(errs[0].as_ref().is_err());
        assert!(
            errs[0].as_ref().unwrap_err().contains("ceiling"),
            "hostile length is a framing error: {errs:?}"
        );

        // 3. Wrong protocol version.
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let mut stream = TcpStream::connect(&addr).expect("connect");
        send(
            &mut stream,
            &Request::Hello {
                version: "icfp-wire/v0".into(),
            },
        )
        .expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        match recv::<Response>(&mut reader).expect("reply") {
            Some(Response::Error { message }) => assert!(message.contains("icfp-wire/v0")),
            other => panic!("expected Error frame, got {other:?}"),
        }
        assert!(server.join().expect("join")[0].is_err());

        // 4. An invalid spec fails the submission but not the connection:
        //    a corrected spec on the same connection still runs.
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);
        send(
            &mut writer,
            &Request::Hello2 {
                version: WIRE_VERSION.into(),
                features: base_features(),
            },
        )
        .expect("hello");
        assert!(matches!(
            recv::<Response>(&mut reader).expect("hello back"),
            Some(Response::Hello2 { .. })
        ));
        let mut bad = tiny_spec();
        bad.workloads = vec!["no-such-workload".into()];
        send(
            &mut writer,
            &Request::Submit {
                spec: bad,
                threads: 1,
            },
        )
        .expect("submit bad");
        match recv::<Response>(&mut reader).expect("reply") {
            Some(Response::Error { message }) => {
                assert!(message.contains("no-such-workload"), "{message}")
            }
            other => panic!("expected Error frame, got {other:?}"),
        }
        let mut good = tiny_spec();
        good.workloads.truncate(1);
        good.slice_buffer_entries = vec![128];
        good.l2_hit_latencies = vec![20];
        send(
            &mut writer,
            &Request::Submit {
                spec: good.clone(),
                threads: 1,
            },
        )
        .expect("submit good");
        let mut done = false;
        let mut cells = 0;
        while !done {
            match recv::<Response>(&mut reader).expect("stream").expect("msg") {
                Response::Accepted { cells: n, .. } => assert_eq!(n, 2),
                Response::Cell { .. } => cells += 1,
                Response::Done { report_digest, .. } => {
                    assert_eq!(report_digest, run_sweep(&good, 1).unwrap().digest());
                    done = true;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(cells, 2);
        drop(writer);
        drop(reader);
        let summary = server.join().expect("join").remove(0).expect("clean close");
        assert_eq!(summary.submits, 1);

        // 5. Client-side: submitting an invalid spec never touches the
        //    network.
        let mut bad = tiny_spec();
        bad.insts = 0;
        match submit("127.0.0.1:1", &bad, 1, |_, _, _| {}) {
            Err(WireError::Spec(msg)) => assert!(msg.contains("instruction budget")),
            other => panic!("expected Spec error, got {other:?}"),
        }
    }

    #[test]
    fn version_skew_is_a_typed_refusal_in_both_directions() {
        // A v1 client against this (v2) server: the old Hello variant still
        // decodes (append-only enum encoding) and is answered with an Error
        // frame naming both versions, and a typed error server-side.
        let (addr, server) = spawn_server(ServeOptions::default(), 1);
        let mut stream = TcpStream::connect(&addr).expect("connect");
        send(
            &mut stream,
            &Request::Hello {
                version: WIRE_VERSION_V1.into(),
            },
        )
        .expect("send v1 hello");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        match recv::<Response>(&mut reader).expect("reply") {
            Some(Response::Error { message }) => {
                assert!(message.contains(WIRE_VERSION_V1), "{message}");
                assert!(message.contains(WIRE_VERSION), "{message}");
            }
            other => panic!("expected Error frame, got {other:?}"),
        }
        let err = server.join().expect("join").remove(0).unwrap_err();
        assert!(err.contains("unsupported protocol version"), "{err}");

        // A v2 client against a v1-style server (answers the handshake with
        // the old Hello): typed UnsupportedVersion, not retriable, never a
        // decode failure.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let v1_server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = BufWriter::new(stream);
            let _hello: Request = recv_expected(&mut reader).expect("Hello2 decodes");
            send(
                &mut writer,
                &Response::Hello {
                    version: WIRE_VERSION_V1.into(),
                },
            )
            .expect("reply v1 hello");
        });
        let err =
            submit(&addr, &small_spec(), 1, |_, _, _| {}).expect_err("skewed peer refused");
        assert!(!err.is_retriable(), "version skew retries cannot succeed");
        match err {
            WireError::UnsupportedVersion { ours, theirs } => {
                assert_eq!(ours, WIRE_VERSION);
                assert_eq!(theirs, WIRE_VERSION_V1);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        v1_server.join().expect("v1 server thread");
    }

    /// A small 2-cell spec for service-level tests.
    fn small_spec() -> SweepSpec {
        let mut spec = tiny_spec();
        spec.workloads.truncate(1);
        spec.slice_buffer_entries = vec![128];
        spec.l2_hit_latencies = vec![20];
        spec
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("icfp-wire-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            retries: 8,
            base_delay_ms: 100,
            max_delay_ms: 1_500,
            io_timeout_ms: 0,
        };
        let delays: Vec<u64> = (0..6)
            .map(|k| backoff_delay(&policy, k).as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![100, 200, 400, 800, 1_500, 1_500]);
        // Pure function: same inputs, same schedule.
        assert_eq!(backoff_delay(&policy, 3), backoff_delay(&policy, 3));
        assert!(policy.io_timeout().is_none());
        assert_eq!(
            RetryPolicy::default().io_timeout(),
            Some(Duration::from_secs(30))
        );
    }

    #[test]
    fn stalled_server_times_out_typed_and_stalled_client_is_reaped() {
        // Client side: a server that accepts and then never speaks.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let policy = RetryPolicy {
            retries: 0,
            base_delay_ms: 1,
            max_delay_ms: 1,
            io_timeout_ms: 50,
        };
        let spec = small_spec();
        match submit_with(&addr, &spec, 1, &policy, |_, _, _| {}) {
            Err(WireError::Frame(FrameError::TimedOut)) => {}
            other => panic!("expected typed timeout, got {other:?}"),
        }
        drop(hold.join());

        // Server side: a client that connects and then stalls mid-frame is
        // reaped with the same typed error — never a hung server thread.
        let (addr, server) = spawn_server(
            ServeOptions {
                io_timeout: Some(Duration::from_millis(50)),
                ..ServeOptions::default()
            },
            1,
        );
        let stream = TcpStream::connect(&addr).expect("connect");
        let errs = server.join().expect("server thread");
        assert!(
            errs[0].as_ref().unwrap_err().contains("deadline"),
            "stalled peer is a typed timeout: {errs:?}"
        );
        drop(stream);
    }

    #[test]
    fn client_retries_through_a_server_restart_with_identical_report() {
        let dir = tmp_dir("retry-resume");
        let spec = small_spec();
        let local = run_sweep(&spec, 1).expect("local run");

        // First server: armed to drop an outbound frame mid-stream (the
        // shape of a crash), then exits.  Its sweep still completes into
        // the shared cache.
        let fault = Arc::new(FaultPlan::new().with_frame_fault(crate::fault::FrameFault {
            // Frame 3 = Hello, Accepted, then mid-cell-stream.
            frame_index: 3,
            action: FrameAction::Drop,
        }));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let opts = ServeOptions {
            cache_dir: Some(dir.clone()),
            fault: Some(Arc::clone(&fault)),
            ..ServeOptions::default()
        };
        let first = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            handle_conn(stream, &opts)
        });
        // Second server on a new port — "restarted" on the same cache dir.
        let listener2 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr2 = listener2.local_addr().expect("addr").to_string();
        let opts2 = ServeOptions {
            cache_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };
        let second = std::thread::spawn(move || {
            let (stream, _) = listener2.accept().expect("accept");
            handle_conn(stream, &opts2)
        });

        // One `submit` against the faulted server fails retriably...
        let err = submit(&addr, &spec, 1, |_, _, _| {}).expect_err("server severed mid-stream");
        assert!(err.is_retriable(), "mid-stream sever retriable: {err}");
        assert!(fault.frame_fault_fired());
        first.join().expect("first server").expect_err("typed injected error");

        // ...and `submit_with` against the restarted server resumes: the
        // report is byte-identical to an uninterrupted local run, served
        // from the cache the interrupted sweep populated.
        let policy = RetryPolicy {
            retries: 2,
            base_delay_ms: 1,
            max_delay_ms: 5,
            io_timeout_ms: 30_000,
        };
        let outcome =
            submit_with(&addr2, &spec, 1, &policy, |_, _, _| {}).expect("resumed submit");
        assert_eq!(outcome.report.digest(), local.digest());
        assert_eq!(outcome.hits, spec.cell_count() as u64, "resumed from cache");
        assert_eq!(outcome.misses, 0);
        second.join().expect("second server").expect("clean close");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_counts_only_served_submissions_toward_the_ceiling() {
        // Satellite: a connection that fails the handshake must not count
        // toward --max-conns; only completed submissions do.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            serve(
                listener,
                ServeOptions::default(),
                AcceptOptions {
                    max_inflight: 2,
                    max_submissions: Some(1),
                    shutdown: None,
                },
                |_| {},
            )
        });

        // Hostile connection: garbage handshake — served, rejected, not
        // counted.
        {
            use std::io::Write as _;
            let mut stream = TcpStream::connect(&addr).expect("connect");
            write_frame(&mut stream, b"not a request").expect("frame");
            stream.flush().expect("flush");
            let mut reader = BufReader::new(stream);
            // Wait for the Error reply so the failure is fully processed
            // before the real submission below.
            match recv::<Response>(&mut reader).expect("reply") {
                Some(Response::Error { .. }) => {}
                other => panic!("expected Error, got {other:?}"),
            }
        }

        // A real submission reaches the ceiling and stops the server.
        let spec = small_spec();
        let outcome = submit(&addr, &spec, 1, |_, _, _| {}).expect("submit");
        assert_eq!(outcome.report.cells.len(), spec.cell_count());

        let summary = server.join().expect("serve returns");
        assert_eq!(summary.submissions, 1, "only the served submission counts");
        assert_eq!(summary.failed, 1, "the hostile conn is tallied as failed");
        assert_eq!(summary.connections, 2);
    }

    #[test]
    fn cache_hit_submission_is_not_blocked_behind_an_open_connection() {
        // Tentpole: thread-per-connection means a held-open connection (or a
        // long cold sweep) cannot serialize the whole service.  A sequential
        // accept loop would deadlock this test.
        let dir = tmp_dir("concurrent");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let opts = ServeOptions {
            threads: 1,
            cache_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };
        let server = std::thread::spawn(move || {
            serve(
                listener,
                opts,
                AcceptOptions {
                    max_inflight: 3,
                    max_submissions: Some(2),
                    shutdown: None,
                },
                |_| {},
            )
        });

        // Occupy one connection slot: handshake, then hold the conversation
        // open without submitting.
        let hold = TcpStream::connect(&addr).expect("connect");
        let mut hold_reader = BufReader::new(hold.try_clone().expect("clone"));
        let mut hold_writer = BufWriter::new(hold);
        send(
            &mut hold_writer,
            &Request::Hello2 {
                version: WIRE_VERSION.into(),
                features: base_features(),
            },
        )
        .expect("hello");
        assert!(matches!(
            recv::<Response>(&mut hold_reader).expect("hello back"),
            Some(Response::Hello2 { .. })
        ));

        // Both submissions complete while the first connection stays held.
        let spec = small_spec();
        let cold = submit(&addr, &spec, 1, |_, _, _| {}).expect("cold submit");
        assert_eq!(cold.misses, spec.cell_count() as u64);
        let warm = submit(&addr, &spec, 1, |_, _, _| {}).expect("warm submit");
        assert_eq!(warm.hits, spec.cell_count() as u64, "shared cache");
        assert_eq!(warm.report, cold.report);

        // Release the held slot so the drain can finish.
        drop(hold_writer);
        drop(hold_reader);
        let summary = server.join().expect("serve returns");
        assert_eq!(summary.submissions, 2);
        assert_eq!(summary.connections, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_flag_drains_and_stops_the_server() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let server = std::thread::spawn(move || {
            serve(
                listener,
                ServeOptions::default(),
                AcceptOptions {
                    max_inflight: 2,
                    max_submissions: None,
                    shutdown: Some(flag),
                },
                |_| {},
            )
        });
        // Serve one real submission first.
        let spec = small_spec();
        submit(&addr, &spec, 1, |_, _, _| {}).expect("submit");
        // Raise the flag; the watcher wakes the accept loop and serve
        // returns after the drain.
        shutdown.store(true, Ordering::Relaxed);
        let summary = server.join().expect("serve returns");
        assert_eq!(summary.submissions, 1);
        assert_eq!(summary.failed, 0);
    }
}
