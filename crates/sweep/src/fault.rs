//! Deterministic, seeded fault injection for the sweep service.
//!
//! A [`FaultPlan`] arms at most one fault per *seam* — the three places a
//! production sweep can break — and fires each fault exactly once, at a
//! deterministic point chosen either explicitly or derived from a seed:
//!
//! * **cache write** ([`FaultPlan::corrupt_cache_write`]): the *n*-th
//!   `.cell` entry written through a [`crate::ResultCache`] is torn at byte
//!   *k* before it reaches disk — the shape of a crash or full disk mid
//!   write (the atomic tmp+rename normally prevents torn entries, so the
//!   hook recreates what only a dying kernel could leave behind);
//! * **outbound frame** ([`FaultPlan::next_frame_action`]): the *n*-th
//!   `icfp-wire/v1` frame the server sends is dropped entirely (peer sees a
//!   clean close mid-conversation) or truncated at byte *k* (peer sees a
//!   torn frame) and the connection is severed — the shape of a server
//!   crash or network partition mid-stream;
//! * **executor job** ([`FaultPlan::injected_panic`]): the worker computing
//!   expand-index *j* panics on its first *m* attempts — the shape of a
//!   latent timing-model bug tripping on one grid point.
//!
//! Every counter is atomic and every fault fires at most once, so a plan is
//! safe to share across the executor pool and the server's connection
//! threads, and a given (plan, workload) pair always breaks at the same
//! point — the robustness test matrix replays the identical failure on
//! every run.  Production paths pass no plan and pay one `Option` check.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// One splitmix64 scramble step (deriving fault points from a seed).
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What to do with one outbound wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameAction {
    /// Send the frame normally.
    Pass,
    /// Drop the frame and sever the connection (clean close mid-stream).
    Drop,
    /// Send only the first `k` bytes of the frame, then sever the
    /// connection (torn frame).
    Truncate(usize),
}

/// A cache-write tear: entry write number `write_index` (0-based, counted
/// across the plan's lifetime) keeps only its first `keep_bytes` bytes.
#[derive(Debug, Clone, Copy)]
pub struct CacheTear {
    /// Which entry write to tear (0 = the first `.cell` written).
    pub write_index: u64,
    /// How many leading bytes of the encoded entry survive.
    pub keep_bytes: usize,
}

/// A frame fault: outbound frame number `frame_index` (0-based, counted
/// across the plan's lifetime) is dropped or truncated.
#[derive(Debug, Clone, Copy)]
pub struct FrameFault {
    /// Which outbound frame to break (0 = the Hello reply).
    pub frame_index: u64,
    /// Drop it entirely, or keep only the first `k` bytes.
    pub action: FrameAction,
}

/// An injected worker panic: the job at expand index `job_index` panics on
/// its first `attempts` executions, then runs cleanly.
#[derive(Debug, Clone, Copy)]
pub struct PanicJob {
    /// Expand index of the job to break.
    pub job_index: usize,
    /// How many consecutive attempts panic before the job succeeds
    /// (`u32::MAX` = never succeeds).
    pub attempts: u32,
}

/// A deterministic fault-injection plan; see the module docs.
#[derive(Debug, Default)]
pub struct FaultPlan {
    cache_tear: Option<CacheTear>,
    frame_fault: Option<FrameFault>,
    panic_job: Option<PanicJob>,
    cache_writes: AtomicU64,
    cache_fired: AtomicBool,
    frames: AtomicU64,
    frame_fired: AtomicBool,
    panics_fired: AtomicU32,
}

impl FaultPlan {
    /// An empty plan (no faults armed) — every seam check passes.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Derives a plan from a seed: one fault per seam, at pseudo-random but
    /// fully reproducible points within the given sweep shape.  Used by the
    /// randomized arm of the robustness matrix; targeted tests arm seams
    /// explicitly instead.
    pub fn from_seed(seed: u64, cells: usize, frames_per_run: u64) -> Self {
        let cells = cells.max(1) as u64;
        let r0 = splitmix(seed);
        let r1 = splitmix(r0);
        let r2 = splitmix(r1);
        FaultPlan::new()
            .with_cache_tear(CacheTear {
                write_index: r0 % cells,
                // Entries are ~100 bytes; keep 1..64 so the tear always lands
                // inside the container, never producing an empty (missing-
                // magic-only) file by accident of size.
                keep_bytes: 1 + (r0 >> 32) as usize % 63,
            })
            .with_frame_fault(FrameFault {
                frame_index: r1 % frames_per_run.max(1),
                action: if r1 & (1 << 32) == 0 {
                    FrameAction::Drop
                } else {
                    FrameAction::Truncate(1 + (r1 >> 33) as usize % 7)
                },
            })
            .with_panic_job(PanicJob {
                job_index: (r2 % cells) as usize,
                attempts: 1,
            })
    }

    /// Arms the cache-write seam.
    pub fn with_cache_tear(mut self, tear: CacheTear) -> Self {
        self.cache_tear = Some(tear);
        self
    }

    /// Arms the outbound-frame seam.
    pub fn with_frame_fault(mut self, fault: FrameFault) -> Self {
        self.frame_fault = Some(fault);
        self
    }

    /// Arms the executor seam.
    pub fn with_panic_job(mut self, panic: PanicJob) -> Self {
        self.panic_job = Some(panic);
        self
    }

    /// Cache-write seam: called by [`crate::ResultCache::store`] with the
    /// encoded entry about to be written.  Returns `true` (and truncates
    /// `bytes`) if this write is the armed one — fires at most once.
    pub fn corrupt_cache_write(&self, bytes: &mut Vec<u8>) -> bool {
        let Some(tear) = self.cache_tear else {
            return false;
        };
        let n = self.cache_writes.fetch_add(1, Ordering::Relaxed);
        if n != tear.write_index || self.cache_fired.swap(true, Ordering::Relaxed) {
            return false;
        }
        bytes.truncate(tear.keep_bytes.min(bytes.len().saturating_sub(1)).max(1));
        true
    }

    /// Outbound-frame seam: called by the server once per frame it is about
    /// to send.  Any non-[`FrameAction::Pass`] answer fires at most once.
    pub fn next_frame_action(&self) -> FrameAction {
        let Some(fault) = self.frame_fault else {
            return FrameAction::Pass;
        };
        let n = self.frames.fetch_add(1, Ordering::Relaxed);
        if n != fault.frame_index || self.frame_fired.swap(true, Ordering::Relaxed) {
            return FrameAction::Pass;
        }
        fault.action
    }

    /// Executor seam: called once per (job, attempt).  Returns the panic
    /// message to raise if this attempt of this job is armed to fail.
    pub fn injected_panic(&self, job_index: usize) -> Option<String> {
        let panic = self.panic_job?;
        if job_index != panic.job_index {
            return None;
        }
        let fired = self.panics_fired.fetch_add(1, Ordering::Relaxed);
        if fired >= panic.attempts {
            return None;
        }
        Some(format!(
            "injected fault: job {job_index} panics on attempt {} of {}",
            fired + 1,
            panic.attempts
        ))
    }

    /// Whether the cache-tear fault has fired.
    pub fn cache_tear_fired(&self) -> bool {
        self.cache_fired.load(Ordering::Relaxed)
    }

    /// Whether the frame fault has fired.
    pub fn frame_fault_fired(&self) -> bool {
        self.frame_fired.load(Ordering::Relaxed)
    }

    /// How many injected panics have been raised so far.
    pub fn panics_raised(&self) -> u32 {
        let Some(panic) = self.panic_job else { return 0 };
        self.panics_fired.load(Ordering::Relaxed).min(panic.attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_tear_fires_exactly_once_at_the_armed_write() {
        let plan = FaultPlan::new().with_cache_tear(CacheTear {
            write_index: 1,
            keep_bytes: 5,
        });
        let mut a = vec![0u8; 32];
        assert!(!plan.corrupt_cache_write(&mut a), "write 0 passes");
        assert_eq!(a.len(), 32);
        let mut b = vec![0u8; 32];
        assert!(plan.corrupt_cache_write(&mut b), "write 1 tears");
        assert_eq!(b.len(), 5);
        assert!(plan.cache_tear_fired());
        let mut c = vec![0u8; 32];
        assert!(!plan.corrupt_cache_write(&mut c), "fires once");
        assert_eq!(c.len(), 32);
    }

    #[test]
    fn tears_never_empty_an_entry_or_leave_it_whole() {
        for keep in [0usize, 1, 31, 100] {
            let plan = FaultPlan::new().with_cache_tear(CacheTear {
                write_index: 0,
                keep_bytes: keep,
            });
            let mut bytes = vec![0u8; 32];
            assert!(plan.corrupt_cache_write(&mut bytes));
            assert!(
                !bytes.is_empty() && bytes.len() < 32,
                "keep={keep} left {} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn frame_fault_fires_exactly_once() {
        let plan = FaultPlan::new().with_frame_fault(FrameFault {
            frame_index: 2,
            action: FrameAction::Truncate(3),
        });
        assert_eq!(plan.next_frame_action(), FrameAction::Pass);
        assert_eq!(plan.next_frame_action(), FrameAction::Pass);
        assert_eq!(plan.next_frame_action(), FrameAction::Truncate(3));
        assert!(plan.frame_fault_fired());
        for _ in 0..8 {
            assert_eq!(plan.next_frame_action(), FrameAction::Pass);
        }
    }

    #[test]
    fn injected_panics_stop_after_the_armed_attempts() {
        let plan = FaultPlan::new().with_panic_job(PanicJob {
            job_index: 7,
            attempts: 2,
        });
        assert!(plan.injected_panic(3).is_none(), "other jobs untouched");
        assert!(plan.injected_panic(7).is_some());
        assert!(plan.injected_panic(7).is_some());
        assert!(plan.injected_panic(7).is_none(), "attempt 3 succeeds");
        assert_eq!(plan.panics_raised(), 2);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_bounds() {
        for seed in 0..32u64 {
            let a = FaultPlan::from_seed(seed, 8, 10);
            let b = FaultPlan::from_seed(seed, 8, 10);
            let ta = a.cache_tear.unwrap();
            let tb = b.cache_tear.unwrap();
            assert_eq!(ta.write_index, tb.write_index);
            assert_eq!(ta.keep_bytes, tb.keep_bytes);
            assert!(ta.write_index < 8);
            assert!(ta.keep_bytes >= 1);
            let fa = a.frame_fault.unwrap();
            assert!(fa.frame_index < 10);
            if let FrameAction::Truncate(k) = fa.action {
                assert!(k >= 1);
            }
            assert!(a.panic_job.unwrap().job_index < 8);
        }
    }

    #[test]
    fn empty_plans_pass_every_seam() {
        let plan = FaultPlan::new();
        let mut bytes = vec![1u8; 8];
        assert!(!plan.corrupt_cache_write(&mut bytes));
        assert_eq!(plan.next_frame_action(), FrameAction::Pass);
        assert!(plan.injected_panic(0).is_none());
        assert_eq!(plan.panics_raised(), 0);
    }
}
