//! The shard planner: splitting a cartesian sweep grid by workload column
//! into independently executable shards, and the deterministic merge that
//! reassembles their streamed cells into one report.
//!
//! A [`SweepShard`] is a self-contained work description: a [`SweepSpec`]
//! whose workload axis is a contiguous slice of the full grid's, an index
//! map translating the sub-spec's expand order back into full-grid
//! positions, and — per column — the trace's content *digest*, never its
//! bytes.  Workers regenerate the column from the registry (the per-column
//! seed is a pure function of the spec seed and the workload name, so a
//! sub-spec reproduces the full grid's traces exactly) or open a local
//! `icfp-trace/v1|v2` container validated against the digest; either way a
//! shard costs a few hundred bytes on the wire regardless of how many
//! billions of instructions its columns carry.
//!
//! Splitting along the workload axis is deliberate: it is the innermost
//! expand axis (so a shard's jobs are exactly the full grid's jobs at mapped
//! indices), trace construction — the one expensive shared input — is
//! per-column (so no column is ever built twice across shards), and the
//! warm-fork/cache equivalence groups never span columns (so sharding never
//! breaks inert-axis sharing).

use crate::executor::column_source;
use crate::report::{SweepCell, SweepReport};
use crate::spec::SweepSpec;
use serde::{Deserialize, Serialize};

/// One workload column of a shard: the name plus the identity of the trace
/// the worker must execute against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSpec {
    /// Workload name (a registry name, or a label for a local container).
    pub workload: String,
    /// Content digest of the column's trace ([`icfp_isa::TraceSource::digest`]):
    /// the worker's regenerated or locally opened trace must match it
    /// exactly, or the shard is refused.
    pub trace_digest: u64,
    /// Optional path to a local `icfp-trace/v1|v2` container on the
    /// *worker's* filesystem.  When set the worker opens it (validated
    /// against `trace_digest`) instead of regenerating from the registry —
    /// the transport for columns that aren't registry workloads at all.
    pub local_path: Option<String>,
}

/// One independently executable slice of a sweep grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepShard {
    /// Position of this shard in the plan (0-based).
    pub shard_index: u64,
    /// The full spec with the workload axis narrowed to this shard's
    /// columns.  Every other field — seed above all — is unchanged, so the
    /// sub-spec expands to jobs identical to the full grid's at the mapped
    /// indices.
    pub spec: SweepSpec,
    /// `index_map[i]` = full-grid expand index of the sub-spec's job `i`.
    pub index_map: Vec<u64>,
    /// One entry per workload in [`SweepShard::spec`], same order.
    pub columns: Vec<ColumnSpec>,
}

impl SweepShard {
    /// Number of cells this shard executes.
    pub fn cell_count(&self) -> usize {
        self.spec.cell_count()
    }
}

/// Splits `spec` into (at most) `shards` shards along the workload axis —
/// contiguous, near-equal column ranges, every column in exactly one shard.
/// `shards` is clamped to `[1, workloads]`: columns are the unit of
/// distribution, so more shards than columns cannot help.
///
/// Each column's trace is built once here (exactly as the executor would
/// build it) to compute the digest that ships in place of the trace bytes.
///
/// # Errors
///
/// The [`SweepSpec::validate`] error, without planning anything.
pub fn plan_shards(spec: &SweepSpec, shards: usize) -> Result<Vec<SweepShard>, String> {
    spec.validate()?;
    let w = spec.workloads.len();
    let outer = spec.cell_count() / w;
    let shards = shards.clamp(1, w);
    let digests: Vec<u64> = spec
        .workloads
        .iter()
        .map(|name| {
            column_source(spec, name)
                .expect("workload validated by SweepSpec::validate")
                .digest()
        })
        .collect();
    let mut out = Vec::with_capacity(shards);
    for k in 0..shards {
        let lo = k * w / shards;
        let hi = (k + 1) * w / shards;
        let mut sub = spec.clone();
        sub.workloads = spec.workloads[lo..hi].to_vec();
        // Workload is the innermost expand axis: sub-job i decomposes as
        // i = outer_index * (hi - lo) + column_offset, and the same outer
        // point in the full grid sits at outer_index * w + (lo + offset).
        let mut index_map = Vec::with_capacity(outer * (hi - lo));
        for o in 0..outer {
            for c in lo..hi {
                index_map.push((o * w + c) as u64);
            }
        }
        let columns = (lo..hi)
            .map(|c| ColumnSpec {
                workload: spec.workloads[c].clone(),
                trace_digest: digests[c],
                local_path: None,
            })
            .collect();
        out.push(SweepShard {
            shard_index: k as u64,
            spec: sub,
            index_map,
            columns,
        });
    }
    Ok(out)
}

/// Reassembles per-cell results (indexed by full-grid expand position) into
/// the [`SweepReport`] a local run of `spec` would produce — the merge is a
/// pure function of the spec and the cells, so it is byte-identical
/// regardless of shard count, shard completion order, or which worker
/// executed what.  `threads` is the advisory header field (a distributed
/// run records its worker count there).
///
/// # Errors
///
/// Names the first missing cell — an incomplete distributed run must never
/// impersonate a complete report.
pub fn merge_report(
    spec: &SweepSpec,
    threads: usize,
    cells: Vec<Option<SweepCell>>,
) -> Result<SweepReport, String> {
    let n = spec.cell_count();
    if cells.len() != n {
        return Err(format!(
            "merge was handed {} cell slots for a {n}-cell spec",
            cells.len()
        ));
    }
    let mut assembled = Vec::with_capacity(n);
    for (k, c) in cells.into_iter().enumerate() {
        assembled.push(c.ok_or_else(|| format!("no shard produced cell {k} of {n}"))?);
    }
    Ok(SweepReport {
        threads,
        warm_fork: spec.warm_fork,
        insts: spec.insts,
        seed: spec.seed,
        reps: spec.reps.max(1),
        workloads: spec.workloads.clone(),
        cells: assembled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_spec;

    #[test]
    fn shard_plans_partition_the_grid_exactly() {
        let spec = tiny_spec();
        let n = spec.cell_count();
        let jobs = spec.expand();
        for shards in [1, 2, 3, 4, 16] {
            let plan = plan_shards(&spec, shards).unwrap();
            assert_eq!(plan.len(), shards.min(spec.workloads.len()));
            // Every full-grid index appears exactly once across shards.
            let mut seen = vec![false; n];
            for (k, shard) in plan.iter().enumerate() {
                assert_eq!(shard.shard_index, k as u64);
                assert_eq!(shard.index_map.len(), shard.cell_count());
                assert_eq!(shard.columns.len(), shard.spec.workloads.len());
                for &full in &shard.index_map {
                    assert!(!seen[full as usize], "index {full} planned twice");
                    seen[full as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "plan must cover the whole grid");
            // A shard's expanded jobs are the full grid's jobs at the mapped
            // indices: same model, workload, config and — critically — the
            // same per-column trace seed.
            for shard in &plan {
                for (i, sub) in shard.spec.expand().iter().enumerate() {
                    let full = &jobs[shard.index_map[i] as usize];
                    assert_eq!(sub.model, full.model);
                    assert_eq!(sub.workload, full.workload);
                    assert_eq!(sub.seed, full.seed);
                    assert_eq!(sub.fork_key(), full.fork_key());
                }
            }
        }
    }

    #[test]
    fn shard_columns_carry_the_executor_trace_digests() {
        let spec = tiny_spec();
        let plan = plan_shards(&spec, 4).unwrap();
        for shard in &plan {
            for col in &shard.columns {
                let src = column_source(&spec, &col.workload).unwrap();
                assert_eq!(col.trace_digest, src.digest(), "{}", col.workload);
                assert!(col.local_path.is_none());
            }
        }
        // Digests are backing-independent: a streamed planner agrees.
        let mut streamed = spec.clone();
        streamed.streamed = true;
        let splan = plan_shards(&streamed, 4).unwrap();
        for (a, b) in plan.iter().zip(&splan) {
            for (ca, cb) in a.columns.iter().zip(&b.columns) {
                assert_eq!(ca.trace_digest, cb.trace_digest);
            }
        }
    }

    #[test]
    fn shards_round_trip_through_the_wire_encoding() {
        let plan = plan_shards(&tiny_spec(), 3).unwrap();
        for shard in &plan {
            let bytes = serde::to_bytes(shard);
            let back: SweepShard = serde::from_bytes(&bytes).expect("decode");
            assert_eq!(&back, shard);
        }
    }

    #[test]
    fn planning_an_invalid_spec_is_refused() {
        let mut bad = tiny_spec();
        bad.workloads.push("no-such-workload".into());
        assert!(plan_shards(&bad, 2).unwrap_err().contains("no-such-workload"));
        let mut empty = tiny_spec();
        empty.models.clear();
        assert!(plan_shards(&empty, 2).is_err());
    }

    #[test]
    fn merge_refuses_holes_and_reproduces_the_local_header() {
        let spec = tiny_spec();
        let report = crate::run_sweep(&spec, 1).unwrap();
        let cells: Vec<Option<SweepCell>> = report.cells.iter().cloned().map(Some).collect();
        let merged = merge_report(&spec, 1, cells).unwrap();
        assert_eq!(merged.digest(), report.digest());
        assert_eq!(merged.to_json(), report.to_json());
        let mut holed: Vec<Option<SweepCell>> =
            report.cells.iter().cloned().map(Some).collect();
        holed[7] = None;
        let err = merge_report(&spec, 1, holed).unwrap_err();
        assert!(err.contains("cell 7"), "{err}");
    }
}
