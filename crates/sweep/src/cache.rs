//! The persistent content-addressed sweep result cache (`icfp-cache/v1`).
//!
//! Between the executor and the report sits an on-disk store of per-cell
//! deterministic figures, keyed by [`crate::SweepJob::cache_key`] — a digest
//! of everything a cell's outputs depend on (model, normalized
//! configuration, trace content digest, instruction budget).  Repeated or
//! overlapping grids are served from disk; a cache-hit report is
//! digest-identical to a cold one because entries store the *complete*
//! [`CellFigures`], host-time measurements included, so replay reproduces
//! the original report byte-for-byte rather than re-measuring.
//!
//! ## Container layout (one file per entry)
//!
//! ```text
//! offset  size  field
//! 0       13    magic "icfp-cache/v1"
//! 13      8     cache key, u64 LE (self-check against the file's name)
//! 21      8     payload length, u64 LE
//! 29      n     payload: vendored-serde encoding of CellFigures
//! 29+n    8     FNV-1a 64 digest of the payload, u64 LE
//! ```
//!
//! Entries are written first-write-wins via a temp file + atomic rename, so
//! concurrent sweeps over one cache directory never observe a torn entry.
//! Every load failure — wrong magic, truncation, key or digest mismatch,
//! undecodable payload — is a typed [`CacheError`], never a panic; the
//! executor treats a damaged entry as a miss and recomputes.

use crate::fault::FaultPlan;
use icfp_isa::fnv1a;
use icfp_sim::CellFigures;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The container magic (and version): bump to invalidate every entry.
pub const MAGIC: &[u8] = b"icfp-cache/v1";

/// Distinguishes concurrent writers' temp files within one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Typed failures loading or storing a cache entry.
#[derive(Debug)]
pub enum CacheError {
    /// Filesystem failure.
    Io(io::Error),
    /// The entry does not begin with [`MAGIC`] — foreign file or a future
    /// container version.
    BadMagic,
    /// The entry is shorter than its own framing claims.
    Truncated,
    /// The key recorded inside the entry is not the key it was looked up
    /// under (a renamed or misplaced entry file).
    KeyMismatch {
        /// The key the caller asked for.
        expected: u64,
        /// The key the entry records.
        found: u64,
    },
    /// The payload digest check failed — bit rot or a torn write.
    DigestMismatch {
        /// The digest the entry records.
        expected: u64,
        /// The digest the payload actually has.
        found: u64,
    },
    /// The payload would not decode as [`CellFigures`].
    Decode(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache i/o: {e}"),
            CacheError::BadMagic => write!(f, "not an icfp-cache/v1 entry"),
            CacheError::Truncated => write!(f, "cache entry is truncated"),
            CacheError::KeyMismatch { expected, found } => write!(
                f,
                "cache entry records key {found:#018x}, looked up as {expected:#018x}"
            ),
            CacheError::DigestMismatch { expected, found } => write!(
                f,
                "cache entry digest mismatch: recorded {expected:#018x}, payload has {found:#018x}"
            ),
            CacheError::Decode(e) => write!(f, "cache payload would not decode: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<io::Error> for CacheError {
    fn from(e: io::Error) -> Self {
        CacheError::Io(e)
    }
}

/// A persistent result cache rooted at one directory; one `.cell` file per
/// entry, named by the entry's key.  Cheap to clone conceptually (it holds
/// only the path) and safe to share across the executor's worker threads.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    /// Armed only by the fault-injection harness: tears the chosen entry
    /// write before it reaches disk (see [`FaultPlan::corrupt_cache_write`]).
    fault: Option<Arc<FaultPlan>>,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CacheError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir, fault: None })
    }

    /// Arms a [`FaultPlan`] on this cache's write path — the deterministic
    /// fault-injection seam the robustness matrix drives.  Production code
    /// never calls this.
    pub fn with_fault(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.cell"))
    }

    /// Encodes one entry's bytes (exposed for tests and tooling).
    pub fn encode_entry(key: u64, figures: &CellFigures) -> Vec<u8> {
        let payload = serde::to_bytes(figures);
        let mut out = Vec::with_capacity(MAGIC.len() + 24 + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out
    }

    /// Decodes and verifies one entry's bytes against the key it was looked
    /// up under.
    ///
    /// # Errors
    ///
    /// Any non-[`CacheError::Io`] variant, per the container checks.
    pub fn decode_entry(key: u64, bytes: &[u8]) -> Result<CellFigures, CacheError> {
        let rest = bytes.strip_prefix(MAGIC).ok_or(CacheError::BadMagic)?;
        if rest.len() < 16 {
            return Err(CacheError::Truncated);
        }
        let found_key = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
        if found_key != key {
            return Err(CacheError::KeyMismatch {
                expected: key,
                found: found_key,
            });
        }
        let payload_len = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        let rest = &rest[16..];
        // Overflow-safe: compare in u64 before casting the length down.
        if (rest.len() as u64) < 8 || (rest.len() as u64) - 8 < payload_len {
            return Err(CacheError::Truncated);
        }
        let payload_len = payload_len as usize;
        let (payload, tail) = rest.split_at(payload_len);
        if tail.len() != 8 {
            // Trailing garbage after the digest is as suspect as truncation.
            return Err(CacheError::Truncated);
        }
        let recorded = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        let actual = fnv1a(payload);
        if recorded != actual {
            return Err(CacheError::DigestMismatch {
                expected: recorded,
                found: actual,
            });
        }
        serde::from_bytes(payload).map_err(|e| CacheError::Decode(e.to_string()))
    }

    /// Loads the entry for `key`, if present and intact.
    ///
    /// # Errors
    ///
    /// Any [`CacheError`] for a present-but-damaged entry; a missing entry
    /// is `Ok(None)`, not an error.
    pub fn load(&self, key: u64) -> Result<Option<CellFigures>, CacheError> {
        let bytes = match fs::read(self.entry_path(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Self::decode_entry(key, &bytes).map(Some)
    }

    /// Stores an entry, first-write-wins: an existing entry is left alone
    /// (returns `Ok(false)`), otherwise the entry is written to a temp file
    /// and atomically renamed in (returns `Ok(true)`).
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] on filesystem failure.
    pub fn store(&self, key: u64, figures: &CellFigures) -> Result<bool, CacheError> {
        let path = self.entry_path(key);
        if path.exists() {
            return Ok(false);
        }
        let tmp = self.dir.join(format!(
            "{key:016x}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut bytes = Self::encode_entry(key, figures);
        if let Some(plan) = &self.fault {
            // The injection harness tears the write *before* the atomic
            // rename, reproducing what only a mid-write crash could leave.
            plan.corrupt_cache_write(&mut bytes);
        }
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)?;
        Ok(true)
    }

    /// Removes the entry for `key` (used by the executor to evict a damaged
    /// entry before recomputing, so first-write-wins can land the repair).
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] on filesystem failure; a missing entry is fine.
    pub fn remove(&self, key: u64) -> Result<(), CacheError> {
        match fs::remove_file(self.entry_path(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Number of entries on disk.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] if the directory cannot be read.
    pub fn entry_count(&self) -> Result<usize, CacheError> {
        let mut n = 0;
        for e in fs::read_dir(&self.dir)? {
            if e?.path().extension().is_some_and(|x| x == "cell") {
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figures() -> CellFigures {
        CellFigures {
            instructions: 600,
            cycles: 900,
            ipc: 600.0 / 900.0,
            l1d_mpki: 12.5,
            l2_mpki: 3.25,
            host_seconds: 0.001_25,
            mips: 480.0,
            state_digest: 0xFEED_FACE_CAFE_BEEF,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "icfp-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn entries_round_trip_and_first_write_wins() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let key = 0x0123_4567_89AB_CDEF;
        assert!(cache.load(key).unwrap().is_none(), "empty cache misses");
        assert!(cache.store(key, &figures()).unwrap(), "first write lands");
        let back = cache.load(key).unwrap().expect("hit");
        assert_eq!(back, figures());
        // Second store of the same key is a no-op (first write wins).
        let mut other = figures();
        other.cycles = 1;
        assert!(!cache.store(key, &other).unwrap());
        assert_eq!(cache.load(key).unwrap().unwrap(), figures());
        assert_eq!(cache.entry_count().unwrap(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_entries_are_typed_errors_not_panics() {
        let key = 0xAA55_AA55_AA55_AA55;
        let good = ResultCache::encode_entry(key, &figures());

        // Wrong magic (foreign file / future version).
        let mut bumped = good.clone();
        bumped[MAGIC.len() - 1] = b'2';
        assert!(matches!(
            ResultCache::decode_entry(key, &bumped),
            Err(CacheError::BadMagic)
        ));
        assert!(matches!(
            ResultCache::decode_entry(key, b"not a cache entry at all"),
            Err(CacheError::BadMagic)
        ));

        // Truncation at every boundary inside the container.
        for cut in [MAGIC.len(), MAGIC.len() + 4, MAGIC.len() + 16, good.len() - 1] {
            assert!(
                matches!(
                    ResultCache::decode_entry(key, &good[..cut]),
                    Err(CacheError::Truncated)
                ),
                "cut at {cut}"
            );
        }

        // Key mismatch (entry filed under the wrong name).
        assert!(matches!(
            ResultCache::decode_entry(key + 1, &good),
            Err(CacheError::KeyMismatch { .. })
        ));

        // Flipped payload bit: digest check catches it.
        let mut rotted = good.clone();
        rotted[MAGIC.len() + 20] ^= 0x01;
        assert!(matches!(
            ResultCache::decode_entry(key, &rotted),
            Err(CacheError::DigestMismatch { .. })
        ));

        // A hostile length field cannot read out of bounds.
        let mut hostile = good.clone();
        let at = MAGIC.len() + 8;
        hostile[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ResultCache::decode_entry(key, &hostile),
            Err(CacheError::Truncated)
        ));
    }

    #[test]
    fn damaged_files_on_disk_surface_as_load_errors() {
        let dir = tmp_dir("damage");
        let cache = ResultCache::open(&dir).unwrap();
        let key = 0x1111_2222_3333_4444;
        cache.store(key, &figures()).unwrap();
        let path = dir.join(format!("{key:016x}.cell"));
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(cache.load(key), Err(CacheError::Truncated)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_tears_the_armed_write_into_a_typed_load_error() {
        use crate::fault::{CacheTear, FaultPlan};
        let dir = tmp_dir("fault-tear");
        // Tear the second write at byte 17 (inside the key field).
        let plan = Arc::new(FaultPlan::new().with_cache_tear(CacheTear {
            write_index: 1,
            keep_bytes: 17,
        }));
        let cache = ResultCache::open(&dir)
            .unwrap()
            .with_fault(Arc::clone(&plan));
        cache.store(1, &figures()).unwrap();
        cache.store(2, &figures()).unwrap();
        cache.store(3, &figures()).unwrap();
        assert!(plan.cache_tear_fired());
        assert!(cache.load(1).unwrap().is_some(), "write 0 untouched");
        assert!(cache.load(2).is_err(), "write 1 torn → typed error");
        assert!(cache.load(3).unwrap().is_some(), "fault fires once");
        // Recovery: evict and re-store through the same (already fired)
        // faulted handle — the repair lands intact.
        cache.remove(2).unwrap();
        assert!(cache.store(2, &figures()).unwrap());
        assert_eq!(cache.load(2).unwrap().unwrap(), figures());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_discovery_of_a_damaged_entry_recovers_on_both_threads() {
        // Two workers hit the same torn `.cell` at once.  Both must recover
        // — evict (remove tolerates the other thread having unlinked first)
        // and recompute — without panicking or clobbering each other.
        let dir = tmp_dir("concurrent-evict");
        let cache = ResultCache::open(&dir).unwrap();
        let key = 0x5A5A_5A5A_5A5A_5A5A;
        cache.store(key, &figures()).unwrap();
        let path = dir.join(format!("{key:016x}.cell"));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let barrier = std::sync::Barrier::new(2);
        let damage_seen = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cache = cache.clone();
                    let barrier = &barrier;
                    let damage_seen = &damage_seen;
                    s.spawn(move || {
                        barrier.wait();
                        // The executor's damaged-entry protocol: typed error
                        // → evict → recompute → store.  A thread that loses
                        // the race may instead see the peer's repair, or a
                        // clean miss because the peer evicted first — a miss
                        // means "recompute", same as damage.
                        match cache.load(key) {
                            Ok(Some(f)) => return f,
                            Ok(None) => {}
                            Err(_) => {
                                damage_seen.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        cache.remove(key).expect("evict tolerates races");
                        cache.remove(key).expect("double-evict is harmless");
                        let _ = cache.store(key, &figures()).expect("repair");
                        // The peer may still be mid evict→store; the final
                        // mutation on the entry is always a store, so a
                        // bounded retry converges on the repaired bytes.
                        loop {
                            if let Some(f) = cache.load(key).expect("post-repair load") {
                                return f;
                            }
                            std::thread::yield_now();
                        }
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("no panic"), figures());
            }
        });
        assert!(
            damage_seen.load(Ordering::Relaxed) >= 1,
            "at least one thread hit the torn entry"
        );
        assert_eq!(cache.entry_count().unwrap(), 1);
        assert_eq!(cache.load(key).unwrap().unwrap(), figures());
        let _ = fs::remove_dir_all(&dir);
    }
}
