//! The sweep executor: a `std::thread` pool pulling fork groups from an
//! atomic counter, with optional warm-forking and an optional persistent
//! result cache, streaming cells to a callback as they finish.

use crate::cache::ResultCache;
use crate::fault::FaultPlan;
use crate::job::SweepJob;
use crate::report::{SweepCell, SweepReport};
use crate::spec::SweepSpec;
use icfp_isa::{ArenaSource, TraceSource, DEFAULT_BLOCK_INSTS};
use icfp_sim::{CellFigures, SimConfig, Simulator};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// How many times a panicking cell is retried before being recorded as a
/// typed failed cell (so one latent bug on one grid point costs that point,
/// not the sweep).
pub const DEFAULT_PANIC_RETRIES: u32 = 2;

/// Executor options beyond the spec itself.
#[derive(Clone, Copy)]
pub struct ExecOptions<'a> {
    /// Worker threads (0 or 1 = serial, in the calling thread).
    pub threads: usize,
    /// Persistent result cache to serve and populate, if any.
    pub cache: Option<&'a ResultCache>,
    /// Retries for a panicking cell before it is recorded as failed
    /// ([`DEFAULT_PANIC_RETRIES`] by default; 0 = fail on first panic).
    pub panic_retries: u32,
    /// Deterministic fault-injection plan (tests only; `None` in
    /// production).
    pub fault: Option<&'a FaultPlan>,
    /// Cooperative cancellation: when set, workers stop pulling new groups
    /// and the sweep returns a "cancelled" error instead of a report.  Used
    /// by the server's graceful-drain path; in-flight cells still finish
    /// (and land in the cache).
    pub cancel: Option<&'a AtomicBool>,
    /// Pre-built trace sources, one per workload column, overriding the
    /// executor's own construction — the shard-execution path, where a
    /// worker was handed digests (and possibly local containers) instead of
    /// registry names.  When set, every workload in the spec must have an
    /// entry, and workload names are exempt from registry validation.
    pub columns: Option<&'a HashMap<String, Arc<dyn TraceSource>>>,
}

impl std::fmt::Debug for ExecOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecOptions")
            .field("threads", &self.threads)
            .field("cache", &self.cache.is_some())
            .field("panic_retries", &self.panic_retries)
            .field("fault", &self.fault.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("columns", &self.columns.map(|c| c.len()))
            .finish()
    }
}

impl Default for ExecOptions<'_> {
    fn default() -> Self {
        ExecOptions {
            threads: 0,
            cache: None,
            panic_retries: DEFAULT_PANIC_RETRIES,
            fault: None,
            cancel: None,
            columns: None,
        }
    }
}

/// Builds one workload column's shared trace source the way the executor
/// would: a materialized arena by default, a resumable streaming generator
/// (bounded residency) when the spec streams columns
/// ([`SweepSpec::streams_columns`]).  Deterministic outputs — the trace
/// digest above all — are identical across backings, so the shard planner,
/// the worker and the local executor all derive the same column identity
/// from the same spec.  `None` for a workload name the registry doesn't
/// know.
pub fn column_source(spec: &SweepSpec, workload: &str) -> Option<Arc<dyn TraceSource>> {
    let seed = spec.workload_seed(workload);
    if spec.streams_columns() {
        icfp_workloads::source_by_name(workload, spec.insts, seed, DEFAULT_BLOCK_INSTS)
            .map(|s| Arc::new(s) as Arc<dyn TraceSource>)
    } else {
        icfp_workloads::by_name(workload, spec.insts, seed)
            .map(|t| Arc::new(ArenaSource::new(t)) as Arc<dyn TraceSource>)
    }
}

/// Renders a `catch_unwind` payload as the panic message it carries.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// Counters describing how a sweep's cells were produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells served from the on-disk cache.
    pub hits: u64,
    /// Cells computed (cache absent, cold, or entry damaged).
    pub misses: u64,
    /// Damaged entries encountered and treated as misses.
    pub invalid: u64,
    /// Entries newly written to the cache.
    pub stored: u64,
}

impl CacheStats {
    /// Percentage of cells served from cache (0 when no cells ran).
    pub fn hit_percent(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 * 100.0 / total as f64
        }
    }

    /// One-line human summary, e.g. `"32 hits, 0 misses (100% cache hits)"`.
    pub fn summary(&self) -> String {
        format!(
            "{} hits, {} misses ({:.0}% cache hits)",
            self.hits,
            self.misses,
            self.hit_percent()
        )
    }
}

/// A sweep's full outcome: the report plus how it was produced.  The cache
/// counters live *beside* the report, never inside it — a fully cached rerun
/// must reproduce the cold report (and its JSON document) byte-for-byte.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The assembled report, cells in [`SweepSpec::expand`] order.
    pub report: SweepReport,
    /// Cache counters for this execution.
    pub cache: CacheStats,
}

/// One finished cell, streamed to the [`run_sweep_streamed`] callback (on
/// the calling thread) as it completes — completion order, not index order.
#[derive(Debug)]
pub struct CellEvent<'a> {
    /// The cell's position in [`SweepSpec::expand`] order.
    pub index: usize,
    /// Whether the cell was served from the result cache.
    pub cached: bool,
    /// The finished cell.
    pub cell: &'a SweepCell,
}

/// A set of jobs executed from one simulation: the leader (first, lowest
/// expand index) runs — in warm-fork mode checkpointing at the column's
/// halfway point — and every member resumes from the leader's checkpoint
/// (or, in cached mode, replays the leader's figures).
pub(crate) struct ForkGroup {
    /// Expand indices, leader first (ascending).
    pub(crate) jobs: Vec<usize>,
}

/// Groups jobs by [`SweepJob::fork_key`] (`group_equivalent`) or one group
/// per job.  Group order follows the leaders' expand order, so the plan —
/// and therefore every deterministic output — is independent of thread
/// count and scheduling.
pub(crate) fn plan_groups(group_equivalent: bool, jobs: &[SweepJob]) -> Vec<ForkGroup> {
    if !group_equivalent {
        return jobs
            .iter()
            .map(|j| ForkGroup { jobs: vec![j.index] })
            .collect();
    }
    let mut by_key: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut groups: Vec<ForkGroup> = Vec::new();
    for job in jobs {
        match by_key.entry(job.fork_key()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                groups[*e.get()].jobs.push(job.index);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push(ForkGroup {
                    jobs: vec![job.index],
                });
            }
        }
    }
    groups
}

/// Executes one warm-fork group.
///
/// Singleton groups — cells nothing else can share — keep the cold path
/// (warmup + median-of-reps timing) and pay no checkpoint.  Groups with
/// members fork: the leader advances to the column's halfway instruction,
/// checkpoints, finishes; each member resumes from the checkpoint.  For the
/// incremental iCFP model that is a genuine mid-trace state (this arises
/// when a grid repeats a configuration); for the whole-trace comparison
/// models — today's only source of multi-member groups, via the inert slice
/// axis — the first step simulates the entire trace, so the checkpoint
/// captures the *finished, undrained* run and members replay its result
/// rather than re-simulating.  Either way the checkpoint round-trip is
/// bit-identical to an uninterrupted run and members share the leader's
/// fork key (identical deterministic inputs), so every produced cell equals
/// its cold-run counterpart in all digested fields.  Host-time figures of
/// forked cells are single-run estimates: each member is charged the
/// group's shared pre-checkpoint wall time plus its own post-resume time,
/// so its MIPS approximates a whole-trace rate instead of counting every
/// instruction against a fraction of the work.
fn run_fork_group(
    jobs: &[SweepJob],
    group: &ForkGroup,
    trace: &Arc<dyn TraceSource>,
) -> Vec<(usize, SweepCell)> {
    let leader = &jobs[group.jobs[0]];
    if group.jobs.len() == 1 {
        return vec![(leader.index, leader.run_with_source(&**trace))];
    }
    let mut sim = Simulator::new(SimConfig::with_config(leader.model, leader.config.clone()));
    sim.load(Arc::clone(trace));
    let t0 = std::time::Instant::now();
    if leader.fast_forward > 0 {
        // The group's fast-forward depth is part of its fork key, so every
        // member wants exactly this warmed state — seed it once, before the
        // timed advance, and the checkpoint hands it to every member.
        sim.fast_forward(leader.fast_forward)
            .expect("leader engine was just loaded and has done no work");
    }
    sim.advance_to_inst((trace.len() / 2).max(leader.fast_forward))
        .expect("leader trace was just loaded");
    let front_seconds = t0.elapsed().as_secs_f64();
    let ckpt = sim
        .checkpoint()
        .expect("engine is loaded and not drained at the fork point");
    let mut cells = Vec::with_capacity(group.jobs.len());
    let leader_report = sim.finish_loaded();
    cells.push((leader.index, leader.cell_from_report(&leader_report)));
    for &member in &group.jobs[1..] {
        let mut resumed = Simulator::resume(&ckpt, Arc::clone(trace))
            .expect("resuming against the checkpoint's own trace");
        let mut report = resumed.finish_loaded();
        report.host_seconds += front_seconds;
        report.mips = if report.host_seconds > 0.0 {
            report.instructions as f64 / report.host_seconds / 1.0e6
        } else {
            0.0
        };
        cells.push((member, jobs[member].cell_from_report(&report)));
    }
    cells
}

/// Per-execution cache counters, shared across the worker pool.
#[derive(Default)]
struct Tallies {
    hits: AtomicU64,
    misses: AtomicU64,
    invalid: AtomicU64,
    stored: AtomicU64,
}

impl Tallies {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
        }
    }
}

/// Executes one group against the result cache.  On a hit every cell of the
/// group replays the stored figures; on a miss the leader computes once
/// (cold timing protocol), the figures are stored first-write-wins, and
/// members replay them — cells sharing a cache key have identical
/// deterministic inputs, so replaying is exact, and sharing the leader's
/// host figures is what makes a later fully-cached rerun reproduce this
/// report byte-for-byte.  A damaged entry is counted and treated as a miss.
fn run_cached_group(
    jobs: &[SweepJob],
    group: &ForkGroup,
    trace: &Arc<dyn TraceSource>,
    cache: &ResultCache,
    tallies: &Tallies,
) -> (bool, Vec<(usize, SweepCell)>) {
    let leader = &jobs[group.jobs[0]];
    let key = leader.cache_key(trace.digest());
    match cache.load(key) {
        Ok(Some(figures)) => {
            tallies
                .hits
                .fetch_add(group.jobs.len() as u64, Ordering::Relaxed);
            let cells = group
                .jobs
                .iter()
                .map(|&j| (j, jobs[j].cell_from_figures(&figures)))
                .collect();
            return (true, cells);
        }
        Ok(None) => {}
        Err(_) => {
            // Damaged entry: count it, evict it so the recompute's store can
            // land, and fall through to the miss path.
            tallies.invalid.fetch_add(1, Ordering::Relaxed);
            let _ = cache.remove(key);
        }
    }
    let leader_cell = leader.run_with_source(&**trace);
    // Tally the miss only after the compute succeeds: a panicking attempt
    // unwinds past this point, so a retry never double-counts and the
    // hits + misses pair always totals the cell count.
    tallies
        .misses
        .fetch_add(group.jobs.len() as u64, Ordering::Relaxed);
    let figures = CellFigures {
        instructions: leader_cell.instructions,
        cycles: leader_cell.cycles,
        ipc: leader_cell.ipc,
        l1d_mpki: leader_cell.l1d_mpki,
        l2_mpki: leader_cell.l2_mpki,
        host_seconds: leader_cell.host_seconds,
        mips: leader_cell.mips,
        state_digest: leader_cell.state_digest,
    };
    if let Ok(true) = cache.store(key, &figures) {
        tallies.stored.fetch_add(1, Ordering::Relaxed);
    }
    let mut cells = Vec::with_capacity(group.jobs.len());
    cells.push((leader.index, leader_cell));
    for &member in &group.jobs[1..] {
        cells.push((member, jobs[member].cell_from_figures(&figures)));
    }
    (false, cells)
}

/// Executes a sweep on `threads` worker threads (1 = serial, in the calling
/// thread).  Each workload column's trace is generated once and shared via
/// `Arc` across every job; with [`SweepSpec::warm_fork`] set, fork groups of
/// equivalent cells resume from one checkpoint per group.  The report's
/// cells are in [`SweepSpec::expand`] order and its digest is independent of
/// `threads` and of warm-forking.
///
/// # Errors
///
/// Returns the [`SweepSpec::validate`] error without running anything.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Result<SweepReport, String> {
    run_sweep_streamed(
        spec,
        &ExecOptions {
            threads,
            ..ExecOptions::default()
        },
        |_| {},
    )
    .map(|outcome| outcome.report)
}

/// Executes a sweep, streaming each finished cell to `on_cell` (invoked on
/// the calling thread, in completion order — carry the event's index to
/// reassemble).  With [`ExecOptions::cache`] set, groups of cells with
/// identical deterministic inputs are served from, and populate, the
/// persistent result cache; the returned [`SweepOutcome::cache`] counters
/// say how many cells hit.  The report — cells, digest, JSON document — is
/// byte-identical across thread counts, cache states and transports.
///
/// # Errors
///
/// Returns the [`SweepSpec::validate`] error without running anything.
pub fn run_sweep_streamed(
    spec: &SweepSpec,
    opts: &ExecOptions<'_>,
    mut on_cell: impl FnMut(CellEvent<'_>),
) -> Result<SweepOutcome, String> {
    // One trace source per workload column, shared by reference everywhere.
    // Columns come pre-built on the shard path ([`ExecOptions::columns`],
    // names exempt from registry validation there); otherwise they are
    // built here — arenas by default, streamed sources past the budget
    // threshold.  Cells are backing-independent either way.
    let mut traces: HashMap<&str, Arc<dyn TraceSource>> = HashMap::new();
    if let Some(columns) = opts.columns {
        spec.validate_axes()?;
        for w in &spec.workloads {
            let src = columns
                .get(w)
                .ok_or_else(|| format!("no trace column supplied for workload {w:?}"))?;
            traces.entry(w.as_str()).or_insert_with(|| Arc::clone(src));
        }
    } else {
        spec.validate()?;
        for w in &spec.workloads {
            traces.entry(w.as_str()).or_insert_with(|| {
                column_source(spec, w).expect("workload validated by SweepSpec::validate")
            });
        }
    }
    let jobs = spec.expand();
    let n = jobs.len();

    // Warm-forking and caching share one equivalence relation (the fork
    // key), so either turns grouping on.
    let groups = plan_groups(spec.warm_fork || opts.cache.is_some(), &jobs);
    let num_groups = groups.len();
    let workers = opts.threads.clamp(1, num_groups.max(1));
    let mut cells: Vec<Option<SweepCell>> = (0..n).map(|_| None).collect();
    let tallies = Tallies::default();

    let run_group_once = |k: usize| -> (bool, Vec<(usize, SweepCell)>) {
        let group = &groups[k];
        // Executor fault seam: an armed job panics here, inside the
        // catch_unwind scope below — indistinguishable from a latent
        // timing-model bug tripping on this grid point.
        if let Some(plan) = opts.fault {
            for &j in &group.jobs {
                if let Some(msg) = plan.injected_panic(j) {
                    panic!("{msg}");
                }
            }
        }
        let leader = &jobs[group.jobs[0]];
        let trace = &traces[leader.workload.as_str()];
        if let Some(cache) = opts.cache {
            run_cached_group(&jobs, group, trace, cache, &tallies)
        } else {
            let batch = if spec.warm_fork {
                run_fork_group(&jobs, group, trace)
            } else {
                vec![(leader.index, leader.run_with_source(&**trace))]
            };
            // No cache: every computed cell counts as a miss (the
            // hits/misses pair always totals the cell count).  Tallied
            // after the compute so a panicking attempt never double-counts.
            tallies
                .misses
                .fetch_add(group.jobs.len() as u64, Ordering::Relaxed);
            (false, batch)
        }
    };

    // Crash-safe wrapper: a panicking group is retried up to
    // `panic_retries` times, then recorded as typed *failed cells* — the
    // sweep completes and reports the hole instead of unwinding a worker
    // and poisoning the whole run.
    let run_group = |k: usize| -> (bool, Vec<(usize, SweepCell)>) {
        let mut reason = String::new();
        for _ in 0..=opts.panic_retries {
            match catch_unwind(AssertUnwindSafe(|| run_group_once(k))) {
                Ok(done) => return done,
                Err(payload) => reason = panic_reason(payload),
            }
        }
        let group = &groups[k];
        // Failed cells were still *computed attempts*, not cache hits.
        tallies
            .misses
            .fetch_add(group.jobs.len() as u64, Ordering::Relaxed);
        let cells = group
            .jobs
            .iter()
            .map(|&j| (j, jobs[j].failed_cell(&reason)))
            .collect();
        (false, cells)
    };

    let cancelled = || opts.cancel.is_some_and(|c| c.load(Ordering::Relaxed));

    if workers == 1 {
        for k in 0..num_groups {
            if cancelled() {
                break;
            }
            let (cached, batch) = run_group(k);
            for (idx, cell) in batch {
                on_cell(CellEvent {
                    index: idx,
                    cached,
                    cell: &cell,
                });
                cells[idx] = Some(cell);
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(bool, Vec<(usize, SweepCell)>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let run_group = &run_group;
                let cancelled = &cancelled;
                scope.spawn(move || loop {
                    if cancelled() {
                        break;
                    }
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= num_groups {
                        break;
                    }
                    // A send only fails if the receiver is gone (sweep
                    // abandoned): stop pulling work.
                    if tx.send(run_group(k)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (cached, batch) in rx {
                for (idx, cell) in batch {
                    on_cell(CellEvent {
                        index: idx,
                        cached,
                        cell: &cell,
                    });
                    cells[idx] = Some(cell);
                }
            }
        });
    }

    // A cancelled sweep leaves holes: report the cancellation as a typed
    // error instead of panicking on them.  (Absent cancellation every group
    // posts exactly one batch, failed or not, so the report is complete.)
    let done = cells.iter().filter(|c| c.is_some()).count();
    if done < n {
        return Err(format!("sweep cancelled after {done}/{n} cells"));
    }

    Ok(SweepOutcome {
        report: SweepReport {
            threads: workers,
            warm_fork: spec.warm_fork,
            insts: spec.insts,
            seed: spec.seed,
            reps: spec.reps.max(1),
            workloads: spec.workloads.clone(),
            cells: cells
                .into_iter()
                .map(|c| c.expect("completeness checked above"))
                .collect(),
        },
        cache: tallies.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PanicJob;
    use crate::testutil::tiny_spec;
    use icfp_core::CoreModel;
    use std::fs;
    use std::path::PathBuf;

    #[test]
    fn same_spec_twice_gives_identical_digests() {
        let spec = tiny_spec();
        let a = run_sweep(&spec, 1).unwrap();
        let b = run_sweep(&spec, 1).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.cycles, cb.cycles);
            assert_eq!(ca.state_digest, cb.state_digest);
        }
    }

    #[test]
    fn serial_and_eight_thread_pools_agree_byte_for_byte() {
        // The acceptance grid: 2 models × 4 configs × 4 workloads.
        let spec = tiny_spec();
        let serial = run_sweep(&spec, 1).unwrap();
        let pooled = run_sweep(&spec, 8).unwrap();
        assert_eq!(serial.digest(), pooled.digest());
        assert_eq!(serial.cells.len(), pooled.cells.len());
        for (cs, cp) in serial.cells.iter().zip(&pooled.cells) {
            assert_eq!(cs.model, cp.model);
            assert_eq!(cs.workload, cp.workload);
            assert_eq!(cs.cycles, cp.cycles, "{} {}", cs.model, cs.workload);
            assert_eq!(cs.ipc, cp.ipc);
            assert_eq!(cs.state_digest, cp.state_digest);
        }
    }

    #[test]
    fn streamed_columns_are_digest_identical_and_share_the_cache() {
        // The streamed flag swaps every column's backing (materialized
        // arena -> resumable streamed source) without touching what is
        // simulated, so reports and cache keys must be identical.
        let arena = tiny_spec();
        let mut streamed = tiny_spec();
        streamed.streamed = true;
        assert!(streamed.streams_columns());
        let a = run_sweep(&arena, 2).unwrap();
        let s = run_sweep(&streamed, 2).unwrap();
        assert_eq!(a.digest(), s.digest());

        // Cache interop: a streamed run against a cache an arena run wrote
        // is served entirely from disk (the trace digest, and therefore the
        // cache key, is backing-independent).
        let dir = tmp_cache("streamed");
        let cache = ResultCache::open(&dir).unwrap();
        let cold = run_sweep_streamed(
            &arena,
            &ExecOptions {
                threads: 1,
                cache: Some(&cache),
                ..ExecOptions::default()
            },
            |_| {},
        )
        .unwrap();
        let warm = run_sweep_streamed(
            &streamed,
            &ExecOptions {
                threads: 1,
                cache: Some(&cache),
                ..ExecOptions::default()
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(warm.cache.misses, 0);
        assert_eq!(warm.cache.hits, arena.cell_count() as u64);
        assert_eq!(warm.report.digest(), cold.report.digest());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Per-cell deterministic fields (everything in the digest) must match.
    fn assert_deterministically_equal(a: &SweepReport, b: &SweepReport) {
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.model, cb.model);
            assert_eq!(ca.workload, cb.workload);
            assert_eq!(ca.slice_buffer_entries, cb.slice_buffer_entries);
            assert_eq!(ca.mshr_count, cb.mshr_count);
            assert_eq!(ca.l2_hit_latency, cb.l2_hit_latency);
            assert_eq!(ca.seed, cb.seed);
            assert_eq!(ca.instructions, cb.instructions);
            assert_eq!(ca.cycles, cb.cycles, "{} {}", ca.model, ca.workload);
            assert_eq!(ca.ipc, cb.ipc);
            assert_eq!(ca.l1d_mpki, cb.l1d_mpki);
            assert_eq!(ca.l2_mpki, cb.l2_mpki);
            assert_eq!(ca.state_digest, cb.state_digest);
        }
    }

    #[test]
    fn warm_fork_groups_cells_along_inert_axes_only() {
        let spec = {
            let mut s = tiny_spec();
            s.warm_fork = true;
            s
        };
        let jobs = spec.expand();
        let groups = plan_groups(true, &jobs);
        // icfp reads the slice axis: its 4 configs × 4 workloads stay
        // singleton groups (16).  in-order ignores it: {sb 64, sb 128}
        // collapse per (l2 latency, workload) — 2 × 4 = 8 groups of two.
        assert_eq!(jobs.len(), 32);
        assert_eq!(groups.len(), 16 + 8, "grouping changed unexpectedly");
        let pairs = groups.iter().filter(|g| g.jobs.len() == 2).count();
        assert_eq!(pairs, 8);
        for g in &groups {
            assert!(
                g.jobs.windows(2).all(|w| w[0] < w[1]),
                "leader is lowest index"
            );
            let leader = &jobs[g.jobs[0]];
            for &m in &g.jobs[1..] {
                assert_eq!(jobs[m].model, leader.model);
                assert_eq!(jobs[m].workload, leader.workload);
                assert!(!jobs[m].model.reads_slice_buffer());
            }
        }
        // Cold mode: no grouping at all.
        assert_eq!(plan_groups(false, &jobs).len(), jobs.len());
    }

    #[test]
    fn warm_fork_report_is_deterministically_identical_to_cold_run() {
        // The PR 3 acceptance grid: 2 models × 4 configs × 4 workloads.
        let cold_spec = tiny_spec();
        let warm_spec = {
            let mut s = tiny_spec();
            s.warm_fork = true;
            s
        };
        let cold = run_sweep(&cold_spec, 1).unwrap();
        let warm_serial = run_sweep(&warm_spec, 1).unwrap();
        let warm_pooled = run_sweep(&warm_spec, 8).unwrap();
        assert!(warm_serial.warm_fork && !cold.warm_fork);
        assert_deterministically_equal(&cold, &warm_serial);
        assert_deterministically_equal(&cold, &warm_pooled);
        assert_deterministically_equal(&warm_serial, &warm_pooled);
    }

    #[test]
    fn fast_forward_sweeps_keep_digests_shrink_cycles_and_key_separately() {
        let base_spec = tiny_spec();
        let ff_spec = {
            let mut s = tiny_spec();
            s.fast_forward = 300; // half of the 600-inst budget
            s
        };
        let base = run_sweep(&base_spec, 1).unwrap();
        let ff = run_sweep(&ff_spec, 1).unwrap();
        assert_eq!(base.cells.len(), ff.cells.len());
        for (b, f) in base.cells.iter().zip(&ff.cells) {
            // Architectural execution is timing-independent: skipping the
            // timing model for the first half must not move the final state.
            assert_eq!(b.state_digest, f.state_digest, "{} {}", b.model, b.workload);
            assert_eq!(b.instructions, f.instructions);
            // The timed region shrank; cycles cannot grow.
            assert!(f.cycles <= b.cycles, "{} {}", f.model, f.workload);
        }
        // Warm-forked fast-forward cells agree with cold-path ones on every
        // deterministic field — the leader seeds once and every member
        // inherits the warmed state through the checkpoint.
        let ff_forked = {
            let mut s = ff_spec.clone();
            s.warm_fork = true;
            run_sweep(&s, 1).unwrap()
        };
        assert_deterministically_equal(&ff, &ff_forked);

        // Fast-forward is part of the cell identity: different depths never
        // share a warm-fork checkpoint or a result-cache entry.
        let j0 = base_spec.expand();
        let j1 = ff_spec.expand();
        assert_ne!(j0[0].fork_key(), j1[0].fork_key());
        assert_ne!(j0[0].cache_key(0xD1CE), j1[0].cache_key(0xD1CE));

        // A fast-forward that leaves no timed region is rejected up front.
        let mut bad = tiny_spec();
        bad.fast_forward = bad.insts;
        assert!(bad.validate().unwrap_err().contains("timed region"));
    }

    #[test]
    fn l2_latency_axis_moves_cycles_monotonically() {
        let mut spec = tiny_spec();
        spec.models = vec![CoreModel::InOrder];
        spec.slice_buffer_entries = vec![128];
        spec.workloads = vec!["pointer-chase".into()];
        spec.l2_hit_latencies = vec![10, 40];
        let r = run_sweep(&spec, 2).unwrap();
        assert_eq!(r.cells.len(), 2);
        assert!(
            r.cells[0].cycles <= r.cells[1].cycles,
            "higher L2 latency cannot be faster: {} vs {}",
            r.cells[0].cycles,
            r.cells[1].cycles
        );
        // Same trace either way.
        assert_eq!(r.cells[0].state_digest, r.cells[1].state_digest);
    }

    fn tmp_cache(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "icfp-sweep-exec-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn cold_then_cached_runs_reproduce_the_report_byte_for_byte() {
        let dir = tmp_cache("cold-warm");
        let cache = ResultCache::open(&dir).unwrap();
        let spec = tiny_spec();
        let opts = ExecOptions {
            threads: 1,
            cache: Some(&cache),
            ..ExecOptions::default()
        };

        let mut events = 0usize;
        let cold = run_sweep_streamed(&spec, &opts, |e| {
            assert!(!e.cached, "fresh cache cannot hit");
            events += 1;
        })
        .unwrap();
        assert_eq!(events, 32);
        assert_eq!(cold.cache.hits, 0);
        assert_eq!(cold.cache.misses, 32);
        assert!(cold.cache.stored > 0);

        // Second submission: everything served from disk, report identical
        // to the last byte of the JSON document.
        let mut seen = [false; 32];
        let warm = run_sweep_streamed(&spec, &opts, |e| {
            assert!(e.cached, "warm cache must hit");
            assert!(!seen[e.index], "cell streamed twice");
            seen[e.index] = true;
        })
        .unwrap();
        assert!(seen.iter().all(|&s| s));
        assert_eq!(warm.cache.hits, 32);
        assert_eq!(warm.cache.misses, 0);
        assert_eq!(warm.cache.stored, 0);
        assert_eq!(warm.report, cold.report);
        assert_eq!(warm.report.to_json(), cold.report.to_json());

        // Threaded cached run: digest-identical too (host figures replay).
        let warm8 = run_sweep_streamed(
            &spec,
            &ExecOptions {
                threads: 8,
                cache: Some(&cache),
                ..ExecOptions::default()
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(warm8.cache.hits, 32);
        assert_deterministically_equal(&cold.report, &warm8.report);
        // Only the advisory thread count differs.
        assert_eq!(warm8.report.cells, cold.report.cells);

        // And cached runs agree with an uncached cold run on every
        // deterministic field.
        let uncached = run_sweep(&spec, 1).unwrap();
        assert_deterministically_equal(&uncached, &warm.report);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn inert_axis_cells_share_one_cache_entry() {
        let dir = tmp_cache("inert");
        let cache = ResultCache::open(&dir).unwrap();
        // in-order never reads the slice buffer: two slice sizes, one of
        // everything else ⇒ 2 cells, 1 fork group, 1 cache entry.
        let mut spec = tiny_spec();
        spec.models = vec![CoreModel::InOrder];
        spec.slice_buffer_entries = vec![64, 128];
        spec.l2_hit_latencies = vec![20];
        spec.workloads = vec!["pointer-chase".into()];
        let opts = ExecOptions {
            threads: 1,
            cache: Some(&cache),
            ..ExecOptions::default()
        };
        let cold = run_sweep_streamed(&spec, &opts, |_| {}).unwrap();
        assert_eq!(cold.report.cells.len(), 2);
        assert_eq!(cold.cache.misses, 2);
        assert_eq!(cold.cache.stored, 1, "one entry for the whole group");
        assert_eq!(cache.entry_count().unwrap(), 1);
        // Both cells carry their own axis labels but identical figures.
        let [a, b] = &cold.report.cells[..] else {
            panic!("two cells")
        };
        assert_ne!(a.slice_buffer_entries, b.slice_buffer_entries);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.state_digest, b.state_digest);
        assert_eq!(a.host_seconds, b.host_seconds, "members replay figures");

        let warm = run_sweep_streamed(&spec, &opts, |_| {}).unwrap();
        assert_eq!(warm.cache.hits, 2);
        assert_eq!(warm.report, cold.report);

        // The icfp model *reads* the slice axis: same grid stores two
        // entries and never collapses cells.
        let mut icfp_spec = spec.clone();
        icfp_spec.models = vec![CoreModel::Icfp];
        let icfp = run_sweep_streamed(&icfp_spec, &opts, |_| {}).unwrap();
        assert_eq!(icfp.cache.misses, 2, "no grouping for a live axis");
        assert_eq!(icfp.cache.stored, 2, "one entry per distinct key");
        assert_eq!(cache.entry_count().unwrap(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_cache_entries_are_recomputed_not_trusted() {
        let dir = tmp_cache("damaged");
        let cache = ResultCache::open(&dir).unwrap();
        let mut spec = tiny_spec();
        spec.models = vec![CoreModel::Icfp];
        spec.slice_buffer_entries = vec![128];
        spec.l2_hit_latencies = vec![20];
        spec.workloads = vec!["branchy".into()];
        let opts = ExecOptions {
            threads: 1,
            cache: Some(&cache),
            ..ExecOptions::default()
        };
        let cold = run_sweep_streamed(&spec, &opts, |_| {}).unwrap();
        assert_eq!(cold.cache.stored, 1);

        // Truncate the single entry on disk.
        let entry = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "cell"))
            .expect("one entry");
        let bytes = fs::read(&entry).unwrap();
        fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();

        let redo = run_sweep_streamed(&spec, &opts, |e| assert!(!e.cached)).unwrap();
        assert_eq!(redo.cache.hits, 0);
        assert_eq!(redo.cache.invalid, 1, "damage is counted");
        assert_eq!(redo.cache.misses, 1);
        assert_eq!(redo.cache.stored, 1, "the evicted entry is re-stored");
        assert_deterministically_equal(&cold.report, &redo.report);

        // The recompute evicted and replaced the damaged entry, so the cache
        // self-heals: a third run is fully served from disk again.
        let third = run_sweep_streamed(&spec, &opts, |_| {}).unwrap();
        assert_eq!(third.cache.hits, 1);
        assert_eq!(third.report, redo.report);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A 2-cell grid small enough for fault tests.
    fn two_cell_spec() -> SweepSpec {
        let mut spec = tiny_spec();
        spec.models = vec![CoreModel::InOrder];
        spec.slice_buffer_entries = vec![128];
        spec.l2_hit_latencies = vec![20];
        spec.workloads = vec!["branchy".into(), "pointer-chase".into()];
        spec
    }

    #[test]
    fn a_panicking_cell_is_retried_and_the_report_matches_fault_free() {
        let spec = two_cell_spec();
        let clean = run_sweep(&spec, 1).unwrap();
        // Job 1 panics twice; the default retry budget absorbs both.
        let plan = FaultPlan::new().with_panic_job(PanicJob {
            job_index: 1,
            attempts: 2,
        });
        let faulted = run_sweep_streamed(
            &spec,
            &ExecOptions {
                threads: 1,
                fault: Some(&plan),
                ..ExecOptions::default()
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(plan.panics_raised(), 2);
        assert!(faulted.report.cells.iter().all(|c| c.failed.is_none()));
        // Digest equality covers every deterministic field; the advisory
        // host-time figures legitimately differ between runs.
        assert_eq!(faulted.report.digest(), clean.digest());
        assert_eq!(
            faulted.cache.hits + faulted.cache.misses,
            clean.cells.len() as u64,
            "retries must not double-count tallies"
        );
    }

    #[test]
    fn an_exhausted_panicking_cell_is_recorded_as_failed_not_fatal() {
        let spec = two_cell_spec();
        let clean = run_sweep(&spec, 1).unwrap();
        let plan = FaultPlan::new().with_panic_job(PanicJob {
            job_index: 0,
            attempts: u32::MAX,
        });
        let outcome = run_sweep_streamed(
            &spec,
            &ExecOptions {
                threads: 1,
                panic_retries: 1,
                fault: Some(&plan),
                ..ExecOptions::default()
            },
            |_| {},
        )
        .unwrap();
        let [failed, ok] = &outcome.report.cells[..] else {
            panic!("two cells")
        };
        let reason = failed.failed.as_deref().expect("job 0 exhausted retries");
        assert!(reason.contains("injected fault"), "{reason:?}");
        assert_eq!(failed.cycles, 0);
        assert_eq!(failed.state_digest, 0);
        assert!(ok.failed.is_none(), "other cells unaffected");
        assert_eq!(ok.cycles, clean.cells[1].cycles);
        // The failure is digested — a holed report can't impersonate a
        // complete one — and survives the JSON round trip.
        assert_ne!(outcome.report.digest(), clean.digest());
        let json = outcome.report.to_json();
        assert!(json.contains("\"failed\": \"injected fault"), "{json}");
        let back = crate::schema::parse(&json).expect("parse");
        assert_eq!(back.cells[0].failed, outcome.report.cells[0].failed);
        assert_eq!(crate::schema::to_json(&back), json);
        // The matrix shows the hole.
        assert!(outcome.report.render_matrix().unwrap().contains("fail"));
        // Accounting stays whole: the failed cell counts as a miss.
        assert_eq!(
            outcome.cache.hits + outcome.cache.misses,
            outcome.report.cells.len() as u64
        );
    }

    #[test]
    fn a_cancelled_sweep_is_a_typed_error_not_a_panic() {
        let flag = AtomicBool::new(true);
        for threads in [1, 4] {
            let err = run_sweep_streamed(
                &tiny_spec(),
                &ExecOptions {
                    threads,
                    cancel: Some(&flag),
                    ..ExecOptions::default()
                },
                |_| {},
            )
            .expect_err("pre-cancelled sweep cannot complete");
            assert!(err.contains("cancelled"), "{err}");
            assert!(err.contains("0/32"), "{err}");
        }
    }
}
