//! Sweep specifications: cartesian grids over models × config axes ×
//! workloads, expanded into deterministic job lists.

use crate::job::SweepJob;
use icfp_core::CoreModel;
use serde::{Deserialize, Serialize};

/// One splitmix64 scramble step (for deriving per-workload trace seeds).
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A cartesian sweep specification: models × config axes × workloads.
///
/// Serializable (vendored-serde) so a spec travels whole over the
/// `icfp-wire/v1` protocol — the server expands and validates the identical
/// grid the client described.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Core models to sweep (rows of the matrix).
    pub models: Vec<CoreModel>,
    /// Slice-buffer capacities to sweep (Table 1 default: 128).
    pub slice_buffer_entries: Vec<usize>,
    /// MSHR counts to sweep (Table 1 default: 64).
    pub mshr_counts: Vec<usize>,
    /// L2 hit latencies to sweep (the Figure 6 axis; Table 1 default: 20).
    pub l2_hit_latencies: Vec<u64>,
    /// Workload names (columns; resolved via [`icfp_workloads::by_name`]).
    pub workloads: Vec<String>,
    /// Dynamic instruction budget per workload trace.
    pub insts: usize,
    /// Base seed; per-workload trace seeds are derived from it.
    pub seed: u64,
    /// Timing repetitions per cell (the median host time is reported).
    pub reps: u32,
    /// Functional fast-forward: every cell architecturally executes this many
    /// leading instructions without the timing model (registers + memory
    /// only) and times the remainder from a cold microarchitectural state
    /// (0 = fully cold).  Part of every cell's deterministic identity: it is
    /// folded into both the warm-fork key and the result-cache key, so cells
    /// with different fast-forward depths never share a checkpoint or a cache
    /// entry.
    pub fast_forward: usize,
    /// Warm-fork execution: fork groups of equivalent cells resume from one
    /// checkpoint per group instead of re-simulating from cycle zero (see the
    /// crate docs).  Deterministic outputs are unchanged; host-time figures
    /// measure only the work actually performed.
    pub warm_fork: bool,
    /// Stream workload columns instead of materializing them: each column is
    /// backed by a resumable [`icfp_workloads::WorkloadSource`] generator
    /// (bounded block residency) rather than a whole-trace arena, so columns
    /// whose instruction budgets dwarf RAM still sweep.  Deterministic
    /// outputs are backing-independent — digests, cache keys and fork keys
    /// are identical either way.  Columns also stream automatically once
    /// [`SweepSpec::insts`] reaches [`STREAM_COLUMN_THRESHOLD`]; see
    /// [`SweepSpec::streams_columns`].
    pub streamed: bool,
}

/// Instruction budget at which workload columns stream automatically even
/// without [`SweepSpec::streamed`]: past this point a materialized arena's
/// footprint (tens of bytes per instruction, one arena per column) stops
/// being a sensible default.
pub const STREAM_COLUMN_THRESHOLD: usize = 2_000_000;

impl SweepSpec {
    /// A spec over `models` × `workloads` at the paper-default configuration
    /// point (single value on every axis).
    pub fn new(models: Vec<CoreModel>, workloads: Vec<String>, insts: usize, seed: u64) -> Self {
        SweepSpec {
            models,
            slice_buffer_entries: vec![128],
            mshr_counts: vec![64],
            l2_hit_latencies: vec![20],
            workloads,
            insts,
            seed,
            reps: 1,
            fast_forward: 0,
            warm_fork: false,
            streamed: false,
        }
    }

    /// Whether workload columns are backed by a streaming generator instead
    /// of a materialized arena: explicitly via [`SweepSpec::streamed`], or
    /// automatically once the instruction budget reaches
    /// [`STREAM_COLUMN_THRESHOLD`].
    pub fn streams_columns(&self) -> bool {
        self.streamed || self.insts >= STREAM_COLUMN_THRESHOLD
    }

    /// Number of grid cells the spec expands to.
    pub fn cell_count(&self) -> usize {
        self.models.len()
            * self.slice_buffer_entries.len()
            * self.mshr_counts.len()
            * self.l2_hit_latencies.len()
            * self.workloads.len()
    }

    /// Validates the spec: every axis non-empty, every workload known.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_axes()?;
        for w in &self.workloads {
            icfp_workloads::by_name_or_err(w, 1, 0)?;
        }
        Ok(())
    }

    /// Validates everything *except* workload-name resolution — the check a
    /// shard executor with externally supplied trace columns (see
    /// [`crate::plan::SweepShard`]) can still apply when its column names are
    /// not in the registry.
    ///
    /// # Errors
    ///
    /// As [`SweepSpec::validate`].
    pub fn validate_axes(&self) -> Result<(), String> {
        if self.models.is_empty() {
            return Err("sweep spec has no models".into());
        }
        if self.workloads.is_empty() {
            return Err("sweep spec has no workloads".into());
        }
        if self.slice_buffer_entries.is_empty()
            || self.mshr_counts.is_empty()
            || self.l2_hit_latencies.is_empty()
        {
            return Err("sweep spec has an empty configuration axis".into());
        }
        if self.insts == 0 {
            return Err("sweep spec has a zero instruction budget".into());
        }
        if self.fast_forward >= self.insts {
            return Err(format!(
                "fast-forward ({}) must leave a timed region (insts = {})",
                self.fast_forward, self.insts
            ));
        }
        Ok(())
    }

    /// The deterministic trace seed for a workload column: a pure function of
    /// the spec seed and the workload name, so every cell in the column
    /// simulates the identical trace regardless of job order or thread count.
    pub fn workload_seed(&self, workload: &str) -> u64 {
        splitmix(self.seed ^ icfp_isa::fnv1a(workload.as_bytes()))
    }

    /// Expands the grid into jobs, in deterministic row-major order
    /// (model, slice buffer, MSHRs, L2 latency, workload — workload
    /// innermost, so each matrix row is a contiguous run of jobs).
    pub fn expand(&self) -> Vec<SweepJob> {
        let mut jobs = Vec::with_capacity(self.cell_count());
        for &model in &self.models {
            for &slice in &self.slice_buffer_entries {
                for &mshrs in &self.mshr_counts {
                    for &l2 in &self.l2_hit_latencies {
                        for workload in &self.workloads {
                            let mut config = model.default_config();
                            config.slice_buffer_entries = slice;
                            config.mem.max_outstanding_misses = mshrs;
                            config.mem.l2_hit_latency = l2;
                            jobs.push(SweepJob {
                                index: jobs.len(),
                                model,
                                config,
                                workload: workload.clone(),
                                insts: self.insts,
                                seed: self.workload_seed(workload),
                                reps: self.reps.max(1),
                                fast_forward: self.fast_forward,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_sweep;
    use crate::testutil::tiny_spec;

    #[test]
    fn expand_is_cartesian_and_ordered() {
        let spec = tiny_spec();
        let jobs = spec.expand();
        assert_eq!(jobs.len(), spec.cell_count());
        assert_eq!(jobs.len(), 32);
        for (k, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, k);
        }
        // Workload is the innermost axis: the first four jobs share a config.
        assert_eq!(jobs[0].workload, "pointer-chase");
        assert_eq!(jobs[3].workload, "streaming");
        assert_eq!(
            jobs[0].config.slice_buffer_entries,
            jobs[3].config.slice_buffer_entries
        );
        // Same workload column ⇒ same trace seed, across models and configs.
        let seed0 = jobs[0].seed;
        for j in jobs.iter().filter(|j| j.workload == "pointer-chase") {
            assert_eq!(j.seed, seed0);
        }
        // Different workloads get different seeds.
        assert_ne!(jobs[0].seed, jobs[1].seed);
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = tiny_spec();
        s.workloads.push("nope".into());
        assert!(run_sweep(&s, 1).is_err());
        let mut s = tiny_spec();
        s.models.clear();
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.l2_hit_latencies.clear();
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.insts = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn specs_round_trip_through_the_wire_encoding() {
        let mut spec = tiny_spec();
        spec.reps = 3;
        spec.warm_fork = true;
        let bytes = serde::to_bytes(&spec);
        let back: SweepSpec = serde::from_bytes(&bytes).expect("decode");
        assert_eq!(back, spec);
    }
}
