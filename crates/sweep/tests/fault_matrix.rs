//! The robustness matrix: seeded [`FaultPlan`]s arm all three failure seams
//! at once — a torn cache write, a dropped or truncated wire frame, and a
//! panicking worker — and the full client/server stack must absorb every
//! combination: the injected frame fault fails one attempt with a typed
//! error, the client's deterministic backoff reconnects and re-submits, the
//! damaged cache entry is evicted and recomputed, the panicking cell is
//! retried, and the report the client finally assembles is digest-identical
//! to a fault-free local run.  No seed may escape as a panic on either side.

use icfp_sweep::{
    run_sweep, serve, submit_with, AcceptOptions, FaultPlan, RetryPolicy, ServeOptions, SweepSpec,
};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn matrix_spec() -> SweepSpec {
    SweepSpec::new(
        vec![icfp_core::CoreModel::Icfp, icfp_core::CoreModel::InOrder],
        vec!["streaming".to_string(), "branchy".to_string()],
        400,
        0xFA117,
    )
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("icfp-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn seeded_fault_plans_end_in_typed_errors_and_identical_reports() {
    let spec = matrix_spec();
    let cells = spec.cell_count();
    // One complete submission sends Hello + Accepted + one frame per cell
    // + Done, so every seeded frame fault fires during the first attempt.
    let frames_per_run = cells as u64 + 3;
    let baseline = run_sweep(&spec, 1).expect("fault-free baseline");

    for seed in 0..6u64 {
        let plan = Arc::new(FaultPlan::from_seed(seed, cells, frames_per_run));
        let dir = tmp_dir(&format!("seed{seed}"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();

        let server = {
            let plan = Arc::clone(&plan);
            let dir = dir.clone();
            std::thread::spawn(move || {
                serve(
                    listener,
                    ServeOptions {
                        threads: 2,
                        cache_dir: Some(dir),
                        io_timeout: Some(Duration::from_secs(10)),
                        fault: Some(plan),
                        ..ServeOptions::default()
                    },
                    AcceptOptions {
                        max_inflight: 2,
                        max_submissions: Some(1),
                        shutdown: None,
                    },
                    |_| {},
                )
            })
        };

        let policy = RetryPolicy {
            retries: 4,
            base_delay_ms: 10,
            max_delay_ms: 50,
            io_timeout_ms: 10_000,
        };
        let outcome = submit_with(&addr, &spec, 1, &policy, |_, _, _| {})
            .unwrap_or_else(|e| panic!("seed {seed}: submission never recovered: {e}"));

        // The reassembled report matches the fault-free run in every
        // deterministic field, and no cell surfaced as failed: the injected
        // panic was absorbed by the retry budget.
        assert_eq!(
            outcome.report.digest(),
            baseline.digest(),
            "seed {seed}: recovered report diverged from fault-free baseline"
        );
        assert!(
            outcome.report.cells.iter().all(|c| c.failed.is_none()),
            "seed {seed}: a retried cell leaked a failure marker"
        );
        assert_eq!(outcome.report.cells.len(), baseline.cells.len());

        // Every armed seam actually fired — the matrix exercised a torn
        // cache write, a broken frame, and an injected panic, not a clean
        // run that vacuously matched.
        assert!(plan.cache_tear_fired(), "seed {seed}: cache tear never fired");
        assert!(plan.frame_fault_fired(), "seed {seed}: frame fault never fired");
        assert_eq!(plan.panics_raised(), 1, "seed {seed}: injected panic never fired");

        // The server drained cleanly: the faulted attempt ended in a typed
        // connection error (never a panic — `serve` would have unwound the
        // thread and this join would fail), and exactly one submission was
        // ultimately served.
        let summary = server.join().expect("server must not panic");
        assert_eq!(summary.submissions, 1, "seed {seed}");
        assert!(
            summary.failed >= 1,
            "seed {seed}: the injected frame fault must fail one connection"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_stalled_client_cannot_wedge_the_drain() {
    // A client that handshakes and then goes silent is reaped by the
    // server's I/O deadline, so a submission ceiling still terminates
    // `serve` even with a wedged peer occupying a slot.
    let spec = matrix_spec();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || {
        serve(
            listener,
            ServeOptions {
                threads: 1,
                io_timeout: Some(Duration::from_millis(200)),
                ..ServeOptions::default()
            },
            AcceptOptions {
                max_inflight: 2,
                max_submissions: Some(1),
                shutdown: None,
            },
            |_| {},
        )
    });

    // The wedged peer: connect and say nothing, holding the stream open.
    let wedged = std::net::TcpStream::connect(&addr).expect("connect");

    let policy = RetryPolicy {
        retries: 2,
        base_delay_ms: 10,
        max_delay_ms: 50,
        io_timeout_ms: 5_000,
    };
    let outcome = submit_with(&addr, &spec, 1, &policy, |_, _, _| {}).expect("live client served");
    assert_eq!(outcome.report.cells.len(), spec.cell_count());

    let summary = server.join().expect("server must not panic");
    assert_eq!(summary.submissions, 1);
    assert!(summary.failed >= 1, "the stalled peer ends as a typed failure");
    drop(wedged);
}
