//! Distributed sweep sharding, end to end: a [`RemoteBackend`] driving real
//! `icfp-sweepd`-shaped worker processes (the same [`serve`] loop the binary
//! runs) over loopback TCP.  The contract under test is the tentpole
//! invariant: the merged report's deterministic content is digest-identical
//! to a serial in-process run of the same spec — regardless of shard count,
//! worker count, completion order, or a worker dying mid-shard and its
//! shard being reassigned — and a shard ships column trace *digests*, never
//! trace bytes, with the worker refusing any column it cannot reproduce
//! exactly.

use icfp_sweep::wire::{base_features, ServeOptions};
use icfp_sweep::{
    plan_shards, run_sweep, serve, submit_shard, AcceptOptions, ColumnSpec, ExecBackend,
    ExecOptions, FaultPlan, FrameAction, FrameFault, RemoteBackend, RetryPolicy, SweepShard,
    SweepSpec, WireError,
};
use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The PR 3 acceptance grid: 2 models × (2 slice × 1 mshr × 2 l2 = 4
/// configs) × 4 workloads = 32 cells.
fn acceptance_spec() -> SweepSpec {
    let mut s = SweepSpec::new(
        vec![icfp_core::CoreModel::Icfp, icfp_core::CoreModel::InOrder],
        icfp_workloads::STANDARD_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
        600,
        0xC0DE,
    );
    s.slice_buffer_entries = vec![64, 128];
    s.l2_hit_latencies = vec![10, 20];
    s
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        retries: 2,
        base_delay_ms: 5,
        max_delay_ms: 25,
        io_timeout_ms: 30_000,
    }
}

/// One in-process worker: the exact [`serve`] loop `icfp-sweepd --worker`
/// runs, on an ephemeral loopback port, stopped via its shutdown flag.
struct Worker {
    addr: String,
    shutdown: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<icfp_sweep::ServeSummary>,
}

fn spawn_worker(
    cache_dir: Option<std::path::PathBuf>,
    fault: Option<Arc<FaultPlan>>,
) -> Worker {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("addr").to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            serve(
                listener,
                ServeOptions {
                    threads: 2,
                    cache_dir,
                    io_timeout: Some(Duration::from_secs(30)),
                    fault,
                    worker: true,
                    ..ServeOptions::default()
                },
                AcceptOptions {
                    max_inflight: 4,
                    max_submissions: None,
                    shutdown: Some(shutdown),
                },
                |_| {},
            )
        })
    };
    Worker {
        addr,
        shutdown,
        handle,
    }
}

impl Worker {
    fn stop(self) -> icfp_sweep::ServeSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle.join().expect("worker thread must not panic")
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("icfp-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn sharded_runs_are_digest_identical_to_serial_at_every_shard_count() {
    let spec = acceptance_spec();
    let serial = run_sweep(&spec, 1).expect("serial local run");
    for shards in [1, 2, 4] {
        let workers: Vec<Worker> = (0..2).map(|_| spawn_worker(None, None)).collect();
        let backend = RemoteBackend {
            workers: workers.iter().map(|w| w.addr.clone()).collect(),
            shards,
            threads: 2,
            policy: fast_policy(),
        };
        let mut streamed = vec![false; spec.cell_count()];
        let outcome = backend
            .run_streamed(&spec, &mut |e| {
                assert!(!streamed[e.index], "cell {} streamed twice", e.index);
                streamed[e.index] = true;
            })
            .unwrap_or_else(|e| panic!("{shards}-shard run failed: {e}"));
        assert!(streamed.iter().all(|&s| s), "{shards} shards: every cell streams once");

        // Digest-identical to the serial run: every deterministic field of
        // every cell, in expand order.  (Host-time figures and the advisory
        // thread-count header are the only legitimate differences.)
        assert_eq!(outcome.report.digest(), serial.digest(), "{shards} shards");
        assert_eq!(outcome.report.cells.len(), serial.cells.len());
        for (a, b) in outcome.report.cells.iter().zip(&serial.cells) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.cycles, b.cycles, "{} {}", a.model, a.workload);
            assert_eq!(a.ipc, b.ipc);
            assert_eq!(a.state_digest, b.state_digest);
        }
        for w in workers {
            let summary = w.stop();
            assert_eq!(summary.failed, 0, "{shards} shards: no failed connections");
        }
    }
}

#[test]
fn a_worker_killed_mid_shard_is_reassigned_and_the_report_is_unchanged() {
    let spec = acceptance_spec();
    let serial = run_sweep(&spec, 1).expect("serial local run");

    // Worker A is armed to die mid-shard: outbound frame 3 (Hello2,
    // Accepted, cell, *cell*) is dropped and the connection severed — the
    // shape of a SIGKILL mid-stream.  The backend must retry the shard on
    // the next worker in the pool, and the half-streamed attempt must
    // contribute nothing to the merge.
    let fault = Arc::new(FaultPlan::new().with_frame_fault(FrameFault {
        frame_index: 3,
        action: FrameAction::Drop,
    }));
    let a = spawn_worker(None, Some(Arc::clone(&fault)));
    let b = spawn_worker(None, None);
    let backend = RemoteBackend {
        workers: vec![a.addr.clone(), b.addr.clone()],
        shards: 2,
        threads: 2,
        policy: fast_policy(),
    };
    let mut streamed = vec![false; spec.cell_count()];
    let outcome = backend
        .run_streamed(&spec, &mut |e| {
            assert!(!streamed[e.index], "cell {} streamed twice", e.index);
            streamed[e.index] = true;
        })
        .expect("reassignment must recover the sweep");
    assert!(fault.frame_fault_fired(), "the injected death never fired");
    assert!(streamed.iter().all(|&s| s));
    assert_eq!(outcome.report.digest(), serial.digest());

    let a_summary = a.stop();
    assert!(
        a_summary.failed >= 1,
        "worker A's severed connection ends as a typed failure: {a_summary:?}"
    );
    b.stop();
}

#[test]
fn a_restarted_workers_cache_makes_reassignment_cheap_and_identical() {
    // PR 7's crash-safe cache, composed with sharding: a worker that died
    // and came back re-serves the cells its first attempt already computed.
    let spec = acceptance_spec();
    let serial = run_sweep(&spec, 1).expect("serial local run");
    let dir_a = tmp_dir("cache-a");
    let dir_b = tmp_dir("cache-b");

    let a = spawn_worker(Some(dir_a.clone()), None);
    let b = spawn_worker(Some(dir_b.clone()), None);
    let backend = RemoteBackend {
        workers: vec![a.addr.clone(), b.addr.clone()],
        shards: 2,
        threads: 2,
        policy: fast_policy(),
    };
    let cold = backend.run(&spec).expect("cold distributed run");
    assert_eq!(cold.report.digest(), serial.digest());
    assert_eq!(cold.cache.hits + cold.cache.misses, spec.cell_count() as u64);

    // Same pool, same grid again: every cell is a cache hit on its worker,
    // and the report is still digest-identical.
    let warm = backend.run(&spec).expect("warm distributed run");
    assert_eq!(warm.cache.misses, 0, "{:?}", warm.cache);
    assert_eq!(warm.cache.hits, spec.cell_count() as u64);
    assert_eq!(warm.report.digest(), serial.digest());

    a.stop();
    b.stop();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn a_worker_refuses_a_shard_whose_column_digest_it_cannot_reproduce() {
    let spec = acceptance_spec();
    let worker = spawn_worker(None, None);

    // Tamper one column digest: the worker regenerates the column, sees the
    // mismatch, and refuses the *submission* with a typed error — the
    // connection (and the worker) stay healthy, and the refusal is not
    // retriable-forever transport noise.
    let mut shards = plan_shards(&spec, 2).expect("plan");
    shards[0].columns[0].trace_digest ^= 1;
    let err = submit_shard(
        &worker.addr,
        &shards[0],
        1,
        Some(Duration::from_secs(30)),
    )
    .expect_err("tampered digest must be refused");
    match &err {
        WireError::Server(message) => {
            assert!(message.contains("digest"), "{message}");
        }
        other => panic!("expected a typed server refusal, got {other:?}"),
    }
    assert!(!err.is_retriable(), "a digest mismatch never heals by retrying");

    // The untampered shard still runs on the same worker afterwards.
    let good = plan_shards(&spec, 2).expect("plan");
    let outcome = submit_shard(
        &worker.addr,
        &good[0],
        1,
        Some(Duration::from_secs(30)),
    )
    .expect("clean shard served after the refusal");
    assert_eq!(outcome.cells.len(), good[0].cell_count());
    worker.stop();
}

#[test]
fn a_local_container_column_is_opened_validated_and_simulated() {
    // A column whose workload is NOT in the registry travels as a
    // `local_path` container: the worker opens the file, validates it
    // against the shipped digest, and simulates it — digests instead of
    // trace bytes, but the trace itself never crosses the wire either way.
    let dir = tmp_dir("container");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("custom.trace");
    let trace = icfp_workloads::by_name("pointer-chase", 600, 0xBEEF).expect("trace");
    let summary =
        icfp_isa::TraceFileWriter::write_trace(&path, &trace, 128).expect("write container");
    assert_eq!(summary.digest, trace.digest());

    let mut spec = SweepSpec::new(
        vec![icfp_core::CoreModel::Icfp],
        vec!["custom-column".to_string()],
        600,
        0xBEEF,
    );
    spec.slice_buffer_entries = vec![64, 128];
    let n = spec.cell_count();
    let shard = SweepShard {
        shard_index: 0,
        spec: spec.clone(),
        index_map: (0..n as u64).collect(),
        columns: vec![ColumnSpec {
            workload: "custom-column".to_string(),
            trace_digest: summary.digest,
            local_path: Some(path.display().to_string()),
        }],
    };

    let worker = spawn_worker(None, None);
    let outcome = submit_shard(&worker.addr, &shard, 1, Some(Duration::from_secs(30)))
        .expect("local-container shard served");
    assert_eq!(outcome.cells.len(), n);

    // The served cells equal a local run over the same supplied column.
    let mut columns: HashMap<String, Arc<dyn icfp_isa::TraceSource>> = HashMap::new();
    columns.insert(
        "custom-column".to_string(),
        Arc::new(icfp_isa::ArenaSource::new(trace)),
    );
    let local = icfp_sweep::run_sweep_streamed(
        &spec,
        &ExecOptions {
            threads: 1,
            columns: Some(&columns),
            ..ExecOptions::default()
        },
        |_| {},
    )
    .expect("local run over the supplied column");
    for (index, _cached, cell) in &outcome.cells {
        let reference = &local.report.cells[*index];
        assert_eq!(cell.cycles, reference.cycles);
        assert_eq!(cell.state_digest, reference.state_digest);
    }

    // A container that doesn't match the shipped digest is refused — the
    // worker provably opened and validated the file.
    let other = icfp_workloads::by_name("branchy", 600, 0xBEEF).expect("trace");
    icfp_isa::TraceFileWriter::write_trace(&path, &other, 128).expect("overwrite");
    let err = submit_shard(&worker.addr, &shard, 1, Some(Duration::from_secs(30)))
        .expect_err("mismatched container must be refused");
    match err {
        WireError::Server(message) => assert!(message.contains("digest"), "{message}"),
        other => panic!("expected a typed server refusal, got {other:?}"),
    }

    worker.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workers_advertise_the_worker_capability() {
    let worker = spawn_worker(None, None);
    // The client-visible handshake: submit a whole spec (allowed on
    // workers too) and observe the negotiated features via submit_shard's
    // requirement being satisfied — plus the raw capability list.
    let spec = acceptance_spec();
    let shard = plan_shards(&spec, spec.workloads.len())
        .expect("plan")
        .remove(0);
    submit_shard(&worker.addr, &shard, 1, Some(Duration::from_secs(30)))
        .expect("a worker accepts shard submissions");
    assert!(base_features().iter().any(|f| f == "shard"));
    worker.stop();
}
