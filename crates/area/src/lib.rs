//! placeholder
