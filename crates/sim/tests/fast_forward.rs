//! Functional fast-forward equivalence: a run whose first N instructions are
//! executed architecturally (no timing model) must agree with the cold full
//! run on every final architectural figure — registers, memory, state
//! digest, instruction count — for every core model, whether the warmed
//! state is used directly, threaded through a checkpoint, or resumed on
//! another simulator.  Cycle counts legitimately differ: they cover only the
//! timed region, which is the fast-forward methodology.

use icfp_isa::TraceCursor;
use icfp_sim::{functional_warmup, CkptError, CoreModel, SimCheckpoint, SimConfig, Simulator};

const INSTS: usize = 3_000;
const SEED: u64 = 0xFF_C0DE;

fn trace_for(workload: &str) -> icfp_isa::Trace {
    icfp_workloads::by_name(workload, INSTS, SEED).expect("standard workload")
}

#[test]
fn functional_warmup_clamps_and_counts() {
    let t = trace_for("pointer-chase");
    let cur = TraceCursor::from_trace(&t);
    assert_eq!(functional_warmup(&cur, 0).instructions, 0);
    assert_eq!(functional_warmup(&cur, 7).instructions, 7);
    assert_eq!(functional_warmup(&cur, t.len()).instructions, t.len() as u64);
    // Requests past the end clamp instead of spinning or panicking.
    assert_eq!(
        functional_warmup(&cur, t.len() * 3).instructions,
        t.len() as u64
    );
    // Pure function of (trace, n).
    assert_eq!(functional_warmup(&cur, 100), functional_warmup(&cur, 100));
}

#[test]
fn fast_forwarded_runs_match_cold_runs_on_final_architectural_state() {
    for wl in ["pointer-chase", "streaming"] {
        let t = trace_for(wl);
        for model in CoreModel::ALL {
            let config = SimConfig::new(model);
            let cold = Simulator::new(config.clone()).run(&t);
            for ff in [1, t.len() / 3, t.len() / 2 + 17, t.len()] {
                let warm = Simulator::new(config.clone()).run_ff(&t, ff);
                assert_eq!(
                    warm.state_digest, cold.state_digest,
                    "{model:?}/{wl} ff={ff}: architectural execution is \
                     timing-independent, digests must agree"
                );
                assert_eq!(warm.instructions, cold.instructions);
                assert_eq!(
                    warm.result.final_regs, cold.result.final_regs,
                    "{model:?}/{wl} ff={ff}"
                );
                assert_eq!(warm.result.final_mem, cold.result.final_mem);
                assert!(
                    warm.cycles <= cold.cycles,
                    "{model:?}/{wl} ff={ff}: the timed region shrank, cycles \
                     cannot grow ({} vs {})",
                    warm.cycles,
                    cold.cycles
                );
            }
        }
    }
}

#[test]
fn fast_forward_zero_is_exactly_the_cold_run() {
    let t = trace_for("branchy");
    for model in CoreModel::ALL {
        let config = SimConfig::new(model);
        let cold = Simulator::new(config.clone()).run(&t);
        let ff0 = Simulator::new(config).run_ff(&t, 0);
        assert_eq!(ff0.cycles, cold.cycles, "{model:?}: ff=0 must not seed");
        assert_eq!(ff0.state_digest, cold.state_digest);
        assert_eq!(ff0.instructions, cold.instructions);
    }
}

#[test]
fn checkpoints_minted_after_fast_forward_resume_into_the_cold_digest() {
    let t = trace_for("pointer-chase");
    let ff = t.len() / 2;
    for model in CoreModel::ALL {
        let config = SimConfig::new(model);
        let cold = Simulator::new(config.clone()).run(&t);

        let mut sim = Simulator::new(config);
        sim.load(t.clone());
        let skipped = sim.fast_forward(ff).expect("fresh loaded engine seeds");
        assert_eq!(skipped, ff as u64);
        // Mint the checkpoint at the fast-forward point itself and push it
        // through the full icfp-ckpt/v2 byte encoding.
        let ckpt = sim.checkpoint().expect("undrained engine checkpoints");
        let ckpt = SimCheckpoint::from_bytes(&ckpt.to_bytes()).expect("container round-trip");

        let mut resumed = Simulator::resume(&ckpt, t.clone()).expect("resume own trace");
        let resumed_report = resumed.finish_loaded();
        let direct_report = sim.finish_loaded();

        for (label, report) in [("resumed", &resumed_report), ("direct", &direct_report)] {
            assert_eq!(
                report.state_digest, cold.state_digest,
                "{model:?} {label}: digest must equal the cold full run"
            );
            assert_eq!(report.instructions, cold.instructions, "{model:?} {label}");
        }
        // The fork members replay exactly the leader's timed region.
        assert_eq!(resumed_report.cycles, direct_report.cycles, "{model:?}");
    }
}

#[test]
fn fast_forward_requires_a_fresh_loaded_engine() {
    let t = trace_for("streaming");
    // No trace loaded: typed status, not a panic.
    let mut idle = Simulator::new(SimConfig::new(CoreModel::Icfp));
    assert!(matches!(idle.fast_forward(10), Err(CkptError::NotLoaded)));
    // An engine that has already done timed work refuses a seed.
    for model in CoreModel::ALL {
        let mut sim = Simulator::new(SimConfig::new(model));
        sim.load(t.clone());
        sim.advance_to_inst(t.len() / 4).expect("loaded");
        assert!(
            matches!(sim.fast_forward(10), Err(CkptError::Engine(_))),
            "{model:?}: seeding mid-run must be rejected"
        );
        // The refused seed left the run intact.
        let report = sim.finish_loaded();
        let cold = Simulator::new(SimConfig::new(model)).run(&t);
        assert_eq!(report.cycles, cold.cycles, "{model:?}");
        assert_eq!(report.state_digest, cold.state_digest);
    }
}

#[test]
fn fast_forward_throughput_dwarfs_timed_simulation() {
    // The tentpole bar is high double-digit MIPS on real grids; CI machines
    // vary wildly, so the test asserts the structural property — functional
    // execution is at least an order of magnitude faster than timed
    // simulation of a miss-heavy workload — and leaves absolute MIPS to the
    // bench harness (`icfp-bench --fast-forward`).
    let t = icfp_workloads::by_name("pointer-chase", 200_000, SEED).expect("workload");
    let cur = TraceCursor::from_trace(&t);
    let t0 = std::time::Instant::now();
    let warm = functional_warmup(&cur, t.len());
    let ff_secs = t0.elapsed().as_secs_f64();
    assert_eq!(warm.instructions, t.len() as u64);

    let t1 = std::time::Instant::now();
    let _ = Simulator::new(SimConfig::new(CoreModel::Icfp)).run(&t);
    let timed_secs = t1.elapsed().as_secs_f64();
    let ff_mips = warm.instructions as f64 / ff_secs / 1.0e6;
    assert!(
        ff_secs * 10.0 < timed_secs,
        "functional warmup took {ff_secs:.4}s ({ff_mips:.1} MIPS) vs \
         {timed_secs:.4}s timed — less than 10x apart"
    );
}
