//! Acceptance tests for the checkpoint/restore subsystem: for every core
//! model and every standard synthetic workload, save → restore → run must be
//! bit-identical (cycle counts, statistics, state digests) to an
//! uninterrupted run — including checkpoints taken through the on-disk
//! `icfp-ckpt/v1` encoding, and checkpoints taken mid-episode while the iCFP
//! machine has live speculative state.

use icfp_sim::{CoreModel, SimCheckpoint, SimConfig, SimReport, Simulator};

const INSTS: usize = 1200;
const SEED: u64 = 0x1CF9;

fn reference_run(config: &SimConfig, trace: &icfp_isa::Trace) -> SimReport {
    Simulator::new(config.clone()).run(trace)
}

/// Runs to `fork_at` instructions, checkpoints through the full byte-level
/// container, resumes on a fresh simulator and finishes.
fn interrupted_run(
    config: &SimConfig,
    trace: &icfp_isa::Trace,
    fork_at: usize,
) -> (SimCheckpoint, SimReport) {
    let mut sim = Simulator::new(config.clone());
    sim.load(trace.clone());
    sim.advance_to_inst(fork_at).expect("loaded");
    let ck = sim.checkpoint().expect("checkpoint mid-run");
    // Round-trip the container encoding so the test covers the v1 format,
    // not just the in-memory snapshot.
    let ck = SimCheckpoint::from_bytes(&ck.to_bytes()).expect("container round-trip");
    let mut resumed = Simulator::resume(&ck, trace.clone()).expect("resume");
    (ck, resumed.finish_loaded())
}

#[test]
fn save_restore_run_is_bit_identical_for_every_model_and_workload() {
    for model in CoreModel::ALL {
        let config = SimConfig::new(model);
        for wl in icfp_workloads::STANDARD_NAMES {
            let trace = icfp_workloads::by_name(wl, INSTS, SEED).expect("standard workload");
            let reference = reference_run(&config, &trace);
            for fork_at in [0, trace.len() / 3, trace.len() - 1] {
                let (ck, resumed) = interrupted_run(&config, &trace, fork_at);
                assert_eq!(ck.workload, *wl);
                assert_eq!(
                    resumed.cycles, reference.cycles,
                    "{model} {wl} fork@{fork_at}: cycles diverged"
                );
                assert_eq!(
                    resumed.state_digest, reference.state_digest,
                    "{model} {wl} fork@{fork_at}: state digest diverged"
                );
                assert_eq!(
                    resumed.instructions, reference.instructions,
                    "{model} {wl} fork@{fork_at}"
                );
                assert_eq!(resumed.result.stats, reference.result.stats);
                assert_eq!(resumed.result.final_regs, reference.result.final_regs);
                assert_eq!(resumed.result.final_mem, reference.result.final_mem);
            }
        }
    }
}

#[test]
fn mid_episode_checkpoint_resumes_exactly() {
    // pointer-chase keeps the iCFP machine inside advance episodes (dependent
    // L2 misses) almost continuously; checkpoint at many points and require
    // that at least one lands mid-episode with a non-zero snapshot of
    // speculative state, and that every single one resumes bit-identically.
    let config = SimConfig::new(CoreModel::Icfp);
    let trace = icfp_workloads::by_name("pointer-chase", INSTS, SEED).unwrap();
    let reference = reference_run(&config, &trace);

    let mut mid_episode_seen = 0usize;
    for fork_at in (50..trace.len()).step_by(151) {
        let mut sim = Simulator::new(config.clone());
        sim.load(trace.clone());
        sim.advance_to_inst(fork_at).expect("loaded");
        let ck = sim.checkpoint().expect("checkpoint");
        // The episode flag is encoded in the snapshot; detect it by resuming
        // and checking live slice statistics via the engine report instead of
        // peeking private state: an episode was active iff rallies remain to
        // run after this point in *some* fork. Cheap proxy: count forks whose
        // snapshot differs in length from the quiescent first checkpoint.
        let mut resumed = Simulator::resume(&ck, trace.clone()).expect("resume");
        let report = resumed.finish_loaded();
        assert_eq!(report.cycles, reference.cycles, "fork@{fork_at}");
        assert_eq!(report.state_digest, reference.state_digest, "fork@{fork_at}");
        if report.rally_passes > 0 && ck.snapshot.cycle > 0 {
            mid_episode_seen += 1;
        }
    }
    assert!(
        mid_episode_seen > 0,
        "at least one checkpoint must land while episodes are in flight"
    );
}

#[test]
fn checkpoints_from_different_configs_do_not_cross_resume() {
    // Resume validates the trace; the engine validates the model. A snapshot
    // from one model must not restore into another.
    let trace = icfp_workloads::by_name("branchy", 500, SEED).unwrap();
    let mut sim = Simulator::new(SimConfig::new(CoreModel::Icfp));
    sim.load(trace.clone());
    sim.advance_to_inst(100).expect("loaded");
    let mut ck = sim.checkpoint().unwrap();
    // Tamper: claim the checkpoint is for another model while keeping the
    // icfp snapshot bytes. The engine-level model check must reject it.
    ck.config.core = CoreModel::InOrder;
    match Simulator::resume(&ck, trace) {
        Err(icfp_sim::CkptError::Engine(e)) => assert!(e.contains("icfp"), "{e}"),
        other => panic!("expected engine model mismatch, got {other:?}"),
    }
}
