//! Acceptance tests for the streaming trace subsystem: simulating a workload
//! through a block-streamed [`icfp_isa::TraceSource`] must be bit-identical
//! — cycle counts, statistics, state digests — to simulating the fully
//! materialized arena, for every core model and every standard workload,
//! including checkpoints taken *mid-block* and resumed against the streamed
//! source.

use icfp_isa::{ArenaSource, TraceCursor, TraceSource};
use icfp_sim::{CoreModel, SimCheckpoint, SimConfig, Simulator};
use std::sync::Arc;

const INSTS: usize = 1500;
const SEED: u64 = 0x57AE;
/// Deliberately tiny blocks so the run crosses many boundaries.
const BLOCK: usize = 96;

#[test]
fn streamed_and_arena_runs_are_bit_identical_for_all_models_and_workloads() {
    for spec in &icfp_workloads::STANDARD {
        let arena = spec.trace(INSTS, SEED);
        let streamed = spec.source(INSTS, SEED, BLOCK);
        assert_eq!(streamed.digest(), arena.digest(), "{}", spec.name);
        for model in CoreModel::ALL {
            let config = SimConfig::new(model);
            let a = Simulator::new(config.clone()).run(&arena);
            let s = Simulator::new(config).run_source(&streamed);
            assert_eq!(a.cycles, s.cycles, "{model} {}: cycles diverged", spec.name);
            assert_eq!(
                a.state_digest, s.state_digest,
                "{model} {}: state digest diverged",
                spec.name
            );
            assert_eq!(a.instructions, s.instructions, "{model} {}", spec.name);
            assert_eq!(a.result.stats, s.result.stats, "{model} {}", spec.name);
            assert_eq!(a.result.final_regs, s.result.final_regs);
            assert_eq!(a.result.final_mem, s.result.final_mem);
        }
        // Streaming held only a bounded number of blocks resident even
        // though five models replayed the whole trace: the source's MRU
        // cache plus the one block the batched driver pins as the active
        // slice (rally faults can evict it from the cache while pinned).
        let peak = streamed.residency().expect("streamed source counts").peak();
        assert!(peak <= 5, "{}: peak resident blocks {peak}", spec.name);
    }
}

#[test]
fn mid_block_checkpoint_from_streamed_source_resumes_digest_identical() {
    for spec in &icfp_workloads::STANDARD {
        let arena = spec.trace(INSTS, SEED);
        for model in [CoreModel::Icfp, CoreModel::InOrder] {
            let config = SimConfig::new(model);
            let reference = Simulator::new(config.clone()).run(&arena);

            // Fork at an instruction that is NOT a block boundary.
            let fork_at = BLOCK + BLOCK / 3;
            assert!(!fork_at.is_multiple_of(BLOCK));
            let streamed: Arc<dyn TraceSource> = spec.source(INSTS, SEED, BLOCK).into();
            let mut sim = Simulator::new(config.clone());
            sim.load(Arc::clone(&streamed));
            sim.advance_to_inst(fork_at).expect("loaded");
            let ckpt = sim.checkpoint().expect("mid-block checkpoint");
            assert_eq!(ckpt.block_size, BLOCK as u64);

            // Round-trip the container bytes, then resume against a *fresh*
            // streamed source (nothing shared with the one checkpointed).
            let ckpt = SimCheckpoint::from_bytes(&ckpt.to_bytes()).expect("container");
            let fresh: Arc<dyn TraceSource> = spec.source(INSTS, SEED, BLOCK).into();
            let mut resumed = Simulator::resume(&ckpt, fresh).expect("resume streamed");
            let report = resumed.finish_loaded();
            assert_eq!(report.cycles, reference.cycles, "{model} {}", spec.name);
            assert_eq!(
                report.state_digest, reference.state_digest,
                "{model} {}",
                spec.name
            );

            // The same checkpoint also resumes against the arena (identity
            // is content, not backing) when block geometry matches.
            let arena_src = ArenaSource::with_block_size(arena.clone(), BLOCK);
            let mut resumed = Simulator::resume(&ckpt, arena_src).expect("resume arena");
            assert_eq!(resumed.finish_loaded().state_digest, reference.state_digest);
        }
    }
}

#[test]
fn resume_block_digest_mismatch_is_rejected() {
    let spec = &icfp_workloads::STANDARD[0];
    let streamed: Arc<dyn TraceSource> = spec.source(INSTS, SEED, BLOCK).into();
    let mut sim = Simulator::new(SimConfig::new(CoreModel::Icfp));
    sim.load(Arc::clone(&streamed));
    sim.advance_to_inst(BLOCK * 2 + 7).expect("loaded");
    let mut ckpt = sim.checkpoint().expect("checkpoint");
    ckpt.resume_block_digest ^= 1;
    let fresh: Arc<dyn TraceSource> = spec.source(INSTS, SEED, BLOCK).into();
    match Simulator::resume(&ckpt, fresh) {
        Err(icfp_sim::CkptError::BlockMismatch { block, .. }) => {
            assert_eq!(block, ckpt.resume_block);
        }
        other => panic!("expected block mismatch, got {other:?}"),
    }
}

#[test]
fn batched_stepping_streams_through_block_boundaries() {
    let spec = &icfp_workloads::STANDARD[1]; // dcache-thrash: misses + stores
    let arena = spec.trace(INSTS, SEED);
    let reference = Simulator::new(SimConfig::new(CoreModel::Icfp)).run(&arena);

    let streamed: Arc<dyn TraceSource> = spec.source(INSTS, SEED, BLOCK).into();
    let mut sim = Simulator::new(SimConfig::new(CoreModel::Icfp));
    sim.load(streamed);
    let report = loop {
        match sim.step_n(250) {
            icfp_sim::StepStatus::Running { .. } => {}
            icfp_sim::StepStatus::Done(r) => break r,
            icfp_sim::StepStatus::NotLoaded => unreachable!("trace was just loaded"),
        }
    };
    assert_eq!(report.cycles, reference.cycles);
    assert_eq!(report.state_digest, reference.state_digest);
}

#[test]
fn golden_model_agrees_across_backings() {
    // The functional golden model, evaluated through a streamed cursor,
    // matches the arena evaluation (exercises cursor random access too).
    let spec = &icfp_workloads::STANDARD[0];
    let arena = spec.trace(800, 9);
    let streamed = spec.source(800, 9, 64);
    let (regs_a, mem_a) = icfp_core::common::golden_final_state(&arena);
    let (regs_s, mem_s) =
        icfp_core::common::golden_final_state_cursor(&TraceCursor::new(&streamed));
    assert_eq!(regs_a, regs_s);
    assert_eq!(mem_a, mem_s);
}
