//! # icfp-sim — the cycle-driven simulation engine
//!
//! [`Simulator`] is the top-level driver the rest of the workspace (the
//! benchmark harness, the quickstart example, future sweep tooling) talks to.
//! It owns the selected core model — and, through it, the pipeline substrate
//! and memory hierarchy — and exposes two ways to run a trace:
//!
//! * [`Simulator::run`] — simulate a whole trace, returning a [`SimReport`]
//!   with timing statistics *and* simulation-throughput figures (host
//!   seconds, simulated MIPS);
//! * [`Simulator::load`] + [`Simulator::step_n`] — batched stepping with a
//!   cycle budget, for interleaving simulation with other work (progress
//!   reporting, multi-config round-robin, cancellation).
//!
//! ## Throughput
//!
//! The engine's inner loop is allocation-free in steady state: the iCFP
//! machine reuses rally/drain scratch buffers, the MSHR outcome table is a
//! flat slot-indexed array, and the trace is decoded once into a contiguous
//! arena (`Vec<DynInst>` inside [`icfp_isa::Trace`]) that every pass replays
//! by reference.  `BENCH_sim.json` (written by `icfp-bench`) tracks the
//! resulting simulated-instructions-per-host-second so regressions are caught
//! in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icfp_core::{
    Core, CoreConfig, IcfpCore, IcfpMachine, InOrderCore, MultipassCore, RunaheadCore, SltpCore,
};
use icfp_isa::{Cycle, Trace};
use icfp_pipeline::RunResult;
use std::fmt;
use std::time::Instant;

/// Which core model the simulator drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreModel {
    /// Vanilla in-order baseline.
    InOrder,
    /// Runahead execution.
    Runahead,
    /// Multipass pipelining.
    Multipass,
    /// SLTP.
    Sltp,
    /// iCFP (the paper's mechanism; supports incremental stepping).
    Icfp,
}

impl CoreModel {
    /// All models, in the paper's presentation order.
    pub const ALL: [CoreModel; 5] = [
        CoreModel::InOrder,
        CoreModel::Runahead,
        CoreModel::Multipass,
        CoreModel::Sltp,
        CoreModel::Icfp,
    ];

    /// The model's short name (matches `RunResult::core`).
    pub fn name(self) -> &'static str {
        match self {
            CoreModel::InOrder => "in-order",
            CoreModel::Runahead => "runahead",
            CoreModel::Multipass => "multipass",
            CoreModel::Sltp => "sltp",
            CoreModel::Icfp => "icfp",
        }
    }

    /// Parses a model name (accepts the short names above).
    pub fn parse(s: &str) -> Option<CoreModel> {
        Self::ALL.into_iter().find(|m| m.name() == s)
    }

    /// The paper's per-design default configuration for this model.
    pub fn default_config(self) -> CoreConfig {
        match self {
            CoreModel::InOrder | CoreModel::Icfp => CoreConfig::paper_default(),
            CoreModel::Runahead => CoreConfig::runahead_default(),
            CoreModel::Multipass => CoreConfig::multipass_default(),
            CoreModel::Sltp => CoreConfig::sltp_default(),
        }
    }
}

impl fmt::Display for CoreModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a [`Simulator`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Core model to drive.
    pub core: CoreModel,
    /// Microarchitectural configuration.
    pub cfg: CoreConfig,
}

impl SimConfig {
    /// The paper-default configuration for `core`.
    pub fn new(core: CoreModel) -> Self {
        SimConfig {
            cfg: core.default_config(),
            core,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(CoreModel::Icfp)
    }
}

/// The result of simulating one trace, including simulation-throughput
/// figures for the benchmark harness.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Core model name.
    pub core: String,
    /// Workload name.
    pub workload: String,
    /// Committed instructions.
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions per simulated cycle.
    pub ipc: f64,
    /// L1 data-cache misses per 1000 instructions.
    pub l1d_mpki: f64,
    /// L2 misses per 1000 instructions.
    pub l2_mpki: f64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
    /// Loads forwarded from a store buffer.
    pub store_forwards: u64,
    /// Advance episodes entered.
    pub advance_episodes: u64,
    /// Rally passes performed.
    pub rally_passes: u64,
    /// Peak slice-buffer occupancy (iCFP/SLTP).
    pub slice_peak: u64,
    /// Host wall-clock seconds spent simulating (excludes trace generation).
    pub host_seconds: f64,
    /// Simulated instructions per host second, in millions.
    pub mips: f64,
    /// FNV-1a digest of the final architectural state (registers + memory),
    /// for cheap determinism / cross-model equivalence checks.
    pub state_digest: u64,
    /// The full run result (final state, all counters).
    pub result: RunResult,
}

impl SimReport {
    fn from_result(result: RunResult, host_seconds: f64) -> Self {
        let s = &result.stats;
        SimReport {
            core: result.core.clone(),
            workload: result.workload.clone(),
            instructions: s.instructions,
            cycles: s.cycles,
            ipc: s.ipc(),
            l1d_mpki: s.l1d_mpki(),
            l2_mpki: s.l2_mpki(),
            branch_mispredicts: s.branch_mispredicts,
            store_forwards: s.store_forwards,
            advance_episodes: s.advance_episodes,
            rally_passes: s.rally_passes,
            slice_peak: s.slice_peak,
            host_seconds,
            mips: if host_seconds > 0.0 {
                s.instructions as f64 / host_seconds / 1.0e6
            } else {
                0.0
            },
            state_digest: state_digest(&result),
            result,
        }
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<14} {:<10} {:>9} inst {:>10} cyc  ipc {:>5.2}  l1d-mpki {:>6.1}  l2-mpki {:>5.1}  {:>8.2} MIPS",
            self.workload,
            self.core,
            self.instructions,
            self.cycles,
            self.ipc,
            self.l1d_mpki,
            self.l2_mpki,
            self.mips
        )
    }
}

/// FNV-1a over the final architectural state of a run.
pub fn state_digest(r: &RunResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for &v in &r.final_regs {
        eat(v);
    }
    for &(a, v) in &r.final_mem {
        eat(a);
        eat(v);
    }
    h
}

/// Progress of a batched [`Simulator::step_n`] call.
#[derive(Debug, Clone)]
pub enum StepStatus {
    /// The cycle budget was consumed; the run continues.
    Running {
        /// Current simulated cycle.
        cycle: Cycle,
        /// Dynamic instructions processed so far (first pass).
        processed: usize,
    },
    /// The trace retired; the report is final.
    Done(Box<SimReport>),
}

enum Backend {
    Idle,
    /// Incremental iCFP machine plus the loaded trace and accumulated host
    /// simulation time.
    Stepping {
        machine: Box<IcfpMachine>,
        trace: Trace,
        host_seconds: f64,
    },
    /// A loaded trace for a whole-trace-sweep model (everything but iCFP);
    /// the first `step_n` call simulates it to completion.
    Pending { trace: Trace },
}

/// The top-level simulation driver.  See the crate docs for the two usage
/// modes.
pub struct Simulator {
    config: SimConfig,
    backend: Backend,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator {
            config,
            backend: Backend::Idle,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn run_model(&self, trace: &Trace) -> RunResult {
        match self.config.core {
            CoreModel::InOrder => InOrderCore::new(self.config.cfg.clone()).run(trace),
            CoreModel::Runahead => RunaheadCore::new(self.config.cfg.clone()).run(trace),
            CoreModel::Multipass => MultipassCore::new(self.config.cfg.clone()).run(trace),
            CoreModel::Sltp => SltpCore::new(self.config.cfg.clone()).run(trace),
            CoreModel::Icfp => IcfpCore::new(self.config.cfg.clone()).run(trace),
        }
    }

    /// Simulates `trace` to completion and reports timing plus throughput.
    pub fn run(&mut self, trace: &Trace) -> SimReport {
        let t0 = Instant::now();
        let result = self.run_model(trace);
        SimReport::from_result(result, t0.elapsed().as_secs_f64())
    }

    /// Loads a trace for batched stepping.  The iCFP model steps
    /// incrementally; the other models — whole-trace sweeps in the seed —
    /// simulate to completion on the first [`Simulator::step_n`] call.
    pub fn load(&mut self, trace: Trace) {
        self.backend = match self.config.core {
            CoreModel::Icfp => Backend::Stepping {
                machine: Box::new(IcfpMachine::new(&self.config.cfg)),
                trace,
                host_seconds: 0.0,
            },
            _ => Backend::Pending { trace },
        };
    }

    /// Advances the loaded run by (at least) `cycles` simulated cycles, or to
    /// completion, whichever comes first.  Granularity is one instruction /
    /// rally pass, so the machine may overshoot the budget slightly.
    ///
    /// # Panics
    ///
    /// Panics if no trace is loaded.
    pub fn step_n(&mut self, cycles: Cycle) -> StepStatus {
        match &mut self.backend {
            Backend::Idle => panic!("step_n without a loaded trace; call Simulator::load first"),
            Backend::Pending { .. } => {
                let Backend::Pending { trace } =
                    std::mem::replace(&mut self.backend, Backend::Idle)
                else {
                    unreachable!()
                };
                let t0 = Instant::now();
                let result = self.run_model(&trace);
                StepStatus::Done(Box::new(SimReport::from_result(
                    result,
                    t0.elapsed().as_secs_f64(),
                )))
            }
            Backend::Stepping {
                machine,
                trace,
                host_seconds,
            } => {
                let t0 = Instant::now();
                let target = machine.cycle().saturating_add(cycles);
                let mut alive = true;
                while machine.cycle() < target {
                    if !machine.step(trace) {
                        alive = false;
                        break;
                    }
                }
                *host_seconds += t0.elapsed().as_secs_f64();
                if alive {
                    return StepStatus::Running {
                        cycle: machine.cycle(),
                        processed: machine.processed(),
                    };
                }
                let Backend::Stepping {
                    machine,
                    trace,
                    host_seconds,
                } = std::mem::replace(&mut self.backend, Backend::Idle)
                else {
                    unreachable!()
                };
                let result = machine.finish(&trace);
                StepStatus::Done(Box::new(SimReport::from_result(result, host_seconds)))
            }
        }
    }

    /// True if a batched run is in progress.
    pub fn is_loaded(&self) -> bool {
        !matches!(self.backend, Backend::Idle)
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("core", &self.config.core)
            .field("loaded", &self.is_loaded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfp_isa::{DynInst, Op, Reg, TraceBuilder};

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new("sim-test");
        for k in 0..20u64 {
            b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000 + k * 0x4000));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
            b.push(DynInst::store(Reg::int(3), Reg::int(4), 0x8000 + k * 8));
            for j in 0..5u64 {
                b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(5), j));
            }
        }
        b.build()
    }

    #[test]
    fn run_produces_consistent_report() {
        let mut sim = Simulator::new(SimConfig::default());
        let r = sim.run(&small_trace());
        assert_eq!(r.core, "icfp");
        assert_eq!(r.instructions, small_trace().len() as u64);
        assert!(r.cycles > 0);
        assert!(r.ipc > 0.0);
        assert!(r.host_seconds >= 0.0);
    }

    #[test]
    fn all_models_agree_on_final_state() {
        let t = small_trace();
        let digests: Vec<(_, _)> = CoreModel::ALL
            .into_iter()
            .map(|m| {
                let mut sim = Simulator::new(SimConfig::new(m));
                (m.name(), sim.run(&t).state_digest)
            })
            .collect();
        for w in digests.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "{} and {} disagree on final state",
                w[0].0, w[1].0
            );
        }
    }

    #[test]
    fn step_n_reaches_the_same_result_as_run() {
        let t = small_trace();
        let mut whole = Simulator::new(SimConfig::default());
        let full = whole.run(&t);

        let mut stepped = Simulator::new(SimConfig::default());
        stepped.load(t);
        let mut batches = 0;
        let report = loop {
            match stepped.step_n(100) {
                StepStatus::Running { .. } => batches += 1,
                StepStatus::Done(r) => break r,
            }
            assert!(batches < 10_000, "stepping did not terminate");
        };
        assert!(batches > 1, "budget of 100 cycles should take several batches");
        assert_eq!(report.cycles, full.cycles);
        assert_eq!(report.state_digest, full.state_digest);
        assert!(!stepped.is_loaded());
    }

    #[test]
    fn non_steppable_models_finish_on_first_step() {
        let t = small_trace();
        let mut sim = Simulator::new(SimConfig::new(CoreModel::InOrder));
        sim.load(t);
        match sim.step_n(1) {
            StepStatus::Done(r) => assert_eq!(r.core, "in-order"),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn model_parsing_round_trips() {
        for m in CoreModel::ALL {
            assert_eq!(CoreModel::parse(m.name()), Some(m));
        }
        assert_eq!(CoreModel::parse("bogus"), None);
    }
}
