//! # icfp-sim — the cycle-driven simulation engine
//!
//! [`Simulator`] is the top-level driver the rest of the workspace (the
//! benchmark harness, the sweep executor, the quickstart example) talks to.
//! It owns a [`icfp_core::CoreEngine`] obtained from the model registry
//! ([`CoreModel::engine`]) — there is no per-model dispatch here — and
//! exposes two ways to run a trace:
//!
//! * [`Simulator::run`] — simulate a whole trace, returning a [`SimReport`]
//!   with timing statistics *and* simulation-throughput figures (host
//!   seconds, simulated MIPS);
//! * [`Simulator::load`] + [`Simulator::step_n`] — batched stepping with a
//!   cycle budget, for interleaving simulation with other work (progress
//!   reporting, multi-config round-robin, cancellation).
//!
//! ## Throughput
//!
//! The engine's inner loop is allocation-free in steady state: the iCFP
//! machine reuses rally/drain scratch buffers, the MSHR outcome table is a
//! flat slot-indexed array, poison state is packed into word-level planes,
//! and the trace is decoded once into a contiguous arena (`Vec<DynInst>`
//! inside [`icfp_isa::Trace`]) that every pass replays by reference.
//! `BENCH_sim.json` (written by `icfp-bench`) tracks the resulting
//! simulated-instructions-per-host-second so regressions are caught in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckpt;

pub use ckpt::{CkptError, SimCheckpoint};
pub use icfp_core::{CoreEngine, CoreModel, EngineSnapshot};

use icfp_core::CoreConfig;
use icfp_isa::{exec::ArchState, Cycle, Trace, TraceCursor, TraceSource};
use icfp_pipeline::RunResult;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a [`Simulator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Core model to drive.
    pub core: CoreModel,
    /// Microarchitectural configuration.
    pub cfg: CoreConfig,
}

impl SimConfig {
    /// The paper-default configuration for `core`.
    pub fn new(core: CoreModel) -> Self {
        SimConfig {
            cfg: core.default_config(),
            core,
        }
    }

    /// A configuration with an explicit microarchitecture (sweep cells).
    pub fn with_config(core: CoreModel, cfg: CoreConfig) -> Self {
        SimConfig { core, cfg }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(CoreModel::Icfp)
    }
}

/// The result of simulating one trace, including simulation-throughput
/// figures for the benchmark harness.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Core model name.
    pub core: String,
    /// Workload name.
    pub workload: String,
    /// Committed instructions.
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions per simulated cycle.
    pub ipc: f64,
    /// L1 data-cache misses per 1000 instructions.
    pub l1d_mpki: f64,
    /// L2 misses per 1000 instructions.
    pub l2_mpki: f64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
    /// Loads forwarded from a store buffer.
    pub store_forwards: u64,
    /// Advance episodes entered.
    pub advance_episodes: u64,
    /// Rally passes performed.
    pub rally_passes: u64,
    /// Peak slice-buffer occupancy (iCFP/SLTP).
    pub slice_peak: u64,
    /// Host wall-clock seconds spent simulating (excludes trace generation).
    pub host_seconds: f64,
    /// Simulated instructions per host second, in millions.
    pub mips: f64,
    /// FNV-1a digest of the final architectural state (registers + memory),
    /// for cheap determinism / cross-model equivalence checks.
    pub state_digest: u64,
    /// The full run result (final state, all counters).
    pub result: RunResult,
}

/// The per-cell figures of one finished run, in serializable form — the
/// payload the sweep result cache persists (`icfp-cache/v1`) and the wire
/// protocol streams, shared here so every consumer of a cell result encodes
/// it identically.  Everything except `host_seconds`/`mips` is deterministic;
/// the host figures record the measurement the figures were produced by, so
/// replaying a cached cell reproduces the original report byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFigures {
    /// Committed instructions.
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions per simulated cycle.
    pub ipc: f64,
    /// L1 data-cache misses per 1000 instructions.
    pub l1d_mpki: f64,
    /// L2 misses per 1000 instructions.
    pub l2_mpki: f64,
    /// Host wall-clock seconds of the run that produced the figures.
    pub host_seconds: f64,
    /// Simulated MIPS of that run.
    pub mips: f64,
    /// FNV-1a digest of the final architectural state.
    pub state_digest: u64,
}

impl SimReport {
    /// This run's figures in the shared serializable form.
    pub fn figures(&self) -> CellFigures {
        CellFigures {
            instructions: self.instructions,
            cycles: self.cycles,
            ipc: self.ipc,
            l1d_mpki: self.l1d_mpki,
            l2_mpki: self.l2_mpki,
            host_seconds: self.host_seconds,
            mips: self.mips,
            state_digest: self.state_digest,
        }
    }

    fn from_result(result: RunResult, host_seconds: f64) -> Self {
        let s = &result.stats;
        SimReport {
            core: result.core.clone(),
            workload: result.workload.clone(),
            instructions: s.instructions,
            cycles: s.cycles,
            ipc: s.ipc(),
            l1d_mpki: s.l1d_mpki(),
            l2_mpki: s.l2_mpki(),
            branch_mispredicts: s.branch_mispredicts,
            store_forwards: s.store_forwards,
            advance_episodes: s.advance_episodes,
            rally_passes: s.rally_passes,
            slice_peak: s.slice_peak,
            host_seconds,
            mips: if host_seconds > 0.0 {
                s.instructions as f64 / host_seconds / 1.0e6
            } else {
                0.0
            },
            state_digest: result.state_digest(),
            result,
        }
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<14} {:<10} {:>9} inst {:>10} cyc  ipc {:>5.2}  l1d-mpki {:>6.1}  l2-mpki {:>5.1}  {:>8.2} MIPS",
            self.workload,
            self.core,
            self.instructions,
            self.cycles,
            self.ipc,
            self.l1d_mpki,
            self.l2_mpki,
            self.mips
        )
    }
}

/// Runs `trace` under `config`: one untimed warmup (host caches, branch
/// history, allocator), then `reps` timed repetitions, returning the run
/// with the *median* host time.  Median-of-N is robust to one-sided host
/// noise in both directions, unlike best-of-N.  This is the one timing
/// protocol shared by the bench harness and the sweep executor.
pub fn median_run(config: &SimConfig, trace: &Trace, reps: u32) -> SimReport {
    median_protocol(reps, || Simulator::new(config.clone()).run(trace))
}

/// [`median_run`] with a functional fast-forward prefix of `ff` instructions
/// per repetition (0 = fully cold; see [`Simulator::run_source_ff`]).
pub fn median_run_ff(config: &SimConfig, trace: &Trace, ff: usize, reps: u32) -> SimReport {
    median_protocol(reps, || Simulator::new(config.clone()).run_ff(trace, ff))
}

/// [`median_run`] over any block-based source — the entry point for sweep
/// columns (one shared `Arc<dyn TraceSource>` per workload) and for
/// `--trace-file` benches whose traces never fully materialize.
pub fn median_run_source(config: &SimConfig, source: &dyn TraceSource, reps: u32) -> SimReport {
    median_protocol(reps, || Simulator::new(config.clone()).run_source(source))
}

/// [`median_run_source`] with a functional fast-forward prefix: each
/// repetition architecturally executes the first `ff` instructions (no
/// timing model) and runs the rest timed from a cold microarchitectural
/// state (0 = fully cold; see [`Simulator::run_source_ff`]).
pub fn median_run_source_ff(
    config: &SimConfig,
    source: &dyn TraceSource,
    ff: usize,
    reps: u32,
) -> SimReport {
    median_protocol(reps, || {
        Simulator::new(config.clone()).run_source_ff(source, ff)
    })
}

/// Functionally executes the first `n` instructions of the trace behind the
/// cursor — architectural registers and memory only, no timing model — and
/// returns the warmed [`ArchState`].  This is pure computation over decoded
/// blocks (no caches, predictors or issue scheduling), so it proceeds at
/// functional-simulation speed: two orders of magnitude above timed
/// simulation.  The warm-up primitive behind [`Simulator::fast_forward`].
pub fn functional_warmup(trace: &TraceCursor<'_>, n: usize) -> ArchState {
    let n = n.min(trace.len());
    let mut st = ArchState::new();
    trace.for_each_block_from(0, |first, insts| {
        let take = (n - first).min(insts.len());
        for inst in &insts[..take] {
            st.exec(inst);
        }
        first + take < n
    });
    st
}

fn median_protocol(reps: u32, mut one_run: impl FnMut() -> SimReport) -> SimReport {
    let reps = reps.max(1);
    if reps > 1 {
        let _ = one_run(); // untimed warmup
    }
    let mut reports: Vec<SimReport> = (0..reps).map(|_| one_run()).collect();
    debug_assert!(
        reports
            .windows(2)
            .all(|w| w[0].state_digest == w[1].state_digest),
        "repetitions of a deterministic run diverged"
    );
    reports.sort_by(|a, b| a.host_seconds.total_cmp(&b.host_seconds));
    reports.swap_remove(reports.len() / 2)
}

/// Progress of a batched [`Simulator::step_n`] call.
#[derive(Debug, Clone)]
pub enum StepStatus {
    /// The cycle budget was consumed; the run continues.
    Running {
        /// Current simulated cycle.
        cycle: Cycle,
        /// Dynamic instructions processed so far (first pass).
        processed: usize,
    },
    /// The trace retired; the report is final.
    Done(Box<SimReport>),
    /// No trace is loaded: [`Simulator::load`] was never called, or a
    /// previous [`StepStatus::Done`] already unloaded the backend.
    NotLoaded,
}

/// Feeds `engine` block-sized instruction slices — the whole remaining arena
/// for in-memory sources — until the cycle budget `until` is reached,
/// `inst_limit` first-pass instructions have been processed, or the run
/// completes.  This is the batched-stepping driver behind every run mode:
/// one [`CoreEngine::step_block`] call per block replaces one virtual call
/// plus one cursor fetch per instruction.
///
/// The block handle is held here (an `Arc`, not a borrow through the
/// cursor's interior state), so engines remain free to fault older blocks
/// through the same cursor mid-slice (iCFP rally passes do).
///
/// Returns `true` while the engine still has work.
fn drive_blocks(
    engine: &mut Box<dyn CoreEngine>,
    trace: &TraceCursor<'_>,
    until: Cycle,
    inst_limit: usize,
) -> bool {
    let len = trace.len();
    // Whole-trace models walk the cursor themselves and ignore a fed slice;
    // pinning blocks for them would only raise streamed-source residency.
    let batched = engine.model().steps_incrementally();
    loop {
        if engine.cycle() >= until {
            return true;
        }
        let i = engine.processed();
        if i >= inst_limit {
            return true;
        }
        let alive = if !batched || i >= len {
            // First pass complete (or not batchable): one unit at a time.
            engine.step_block(trace, &[], i, until)
        } else if let Some(s) = trace.arena_slice() {
            engine.step_block(trace, &s[i..inst_limit.min(len)], i, until)
        } else {
            let b = trace.pin_block(i);
            let end = inst_limit.min(b.end());
            engine.step_block(trace, &b.insts()[i - b.first..end - b.first], i, until)
        };
        if !alive {
            return false;
        }
    }
}

enum Backend {
    Idle,
    /// An engine from the registry plus the loaded trace source and
    /// accumulated host simulation time.  The source is reference-counted so
    /// sweep columns share one backing (decoded arena, open trace file,
    /// generator) across many concurrent simulators; per-call cursors read
    /// through it, and streamed backings keep their decoded-block caches
    /// across batched-stepping calls.
    Loaded {
        engine: Box<dyn CoreEngine>,
        source: Arc<dyn TraceSource>,
        host_seconds: f64,
    },
}

/// The top-level simulation driver.  See the crate docs for the two usage
/// modes.
pub struct Simulator {
    config: SimConfig,
    backend: Backend,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator {
            config,
            backend: Backend::Idle,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates `trace` to completion and reports timing plus throughput.
    pub fn run(&mut self, trace: &Trace) -> SimReport {
        self.run_cursor(&TraceCursor::from_trace(trace))
    }

    /// [`Simulator::run`] with a functional fast-forward prefix (see
    /// [`Simulator::run_source_ff`]).
    pub fn run_ff(&mut self, trace: &Trace, ff: usize) -> SimReport {
        self.run_cursor_ff(&TraceCursor::from_trace(trace), ff)
    }

    /// Simulates the trace behind any block-based source to completion —
    /// arena-backed sources take the cursor's zero-cost fast path; streamed
    /// sources (trace files, generators) stay bounded to a handful of
    /// resident blocks however long the trace is.
    pub fn run_source(&mut self, source: &dyn TraceSource) -> SimReport {
        self.run_cursor(&TraceCursor::new(source))
    }

    /// [`Simulator::run_source`] with a functional fast-forward prefix: the
    /// first `ff` instructions execute architecturally only (registers and
    /// memory, no timing model); the remainder runs under the timing model
    /// from a cold microarchitectural state.  The report's final
    /// architectural state and `state_digest` equal the cold full run's by
    /// construction; `cycles` covers only the timed region — that asymmetry
    /// is the fast-forward methodology, not an accident.
    pub fn run_source_ff(&mut self, source: &dyn TraceSource, ff: usize) -> SimReport {
        self.run_cursor_ff(&TraceCursor::new(source), ff)
    }

    fn run_cursor(&mut self, trace: &TraceCursor<'_>) -> SimReport {
        self.run_cursor_ff(trace, 0)
    }

    fn run_cursor_ff(&mut self, trace: &TraceCursor<'_>, ff: usize) -> SimReport {
        let t0 = Instant::now();
        let mut engine = self.config.core.engine(&self.config.cfg);
        if ff > 0 {
            let warm = functional_warmup(trace, ff);
            engine
                .seed(&warm)
                .expect("a just-built engine accepts a seed");
        }
        let alive = drive_blocks(&mut engine, trace, Cycle::MAX, usize::MAX);
        debug_assert!(!alive, "an unbounded drive must finish the trace");
        let result = engine.drain(trace);
        SimReport::from_result(result, t0.elapsed().as_secs_f64())
    }

    /// Loads a trace for batched stepping.  The iCFP model steps
    /// incrementally; the other models — whole-trace designs — simulate to
    /// completion on the first [`Simulator::step_n`] call.
    ///
    /// Accepts anything convertible to a shared [`TraceSource`]: an owned
    /// [`Trace`] (wrapped in an arena source), an
    /// [`icfp_isa::ArenaSource`], an open [`icfp_isa::TraceFile`], a
    /// generator-backed `icfp_workloads::WorkloadSource`, or an
    /// `Arc<dyn TraceSource>` already shared across simulators (sweep
    /// columns).
    pub fn load(&mut self, source: impl Into<Arc<dyn TraceSource>>) {
        self.backend = Backend::Loaded {
            engine: self.config.core.engine(&self.config.cfg),
            source: source.into(),
            host_seconds: 0.0,
        };
    }

    /// Functionally fast-forwards the loaded run: executes the first `n`
    /// instructions architecturally (registers and memory only, no timing
    /// model) and seeds the engine with the warmed state, leaving every
    /// timing structure — caches, MSHRs, slice buffer — cold.  The run then
    /// continues under the timing model from instruction `n`, and a
    /// [`Simulator::checkpoint`] afterwards mints an ordinary
    /// `icfp-ckpt/v2` checkpoint at that position, so warm-fork members
    /// inherit the fast-forwarded state for free.  Returns the number of
    /// instructions skipped (clamped to the trace length).
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::NotLoaded`] if no trace is loaded, and
    /// [`CkptError::Engine`] if the engine has already done work —
    /// fast-forward replaces the *initial* state only.
    pub fn fast_forward(&mut self, n: usize) -> Result<u64, CkptError> {
        let Backend::Loaded {
            engine,
            source,
            host_seconds,
        } = &mut self.backend
        else {
            return Err(CkptError::NotLoaded);
        };
        let trace = TraceCursor::new(&**source);
        let t0 = Instant::now();
        let warm = functional_warmup(&trace, n);
        engine.seed(&warm).map_err(CkptError::Engine)?;
        *host_seconds += t0.elapsed().as_secs_f64();
        Ok(warm.instructions)
    }

    /// Advances the loaded run by (at least) `cycles` simulated cycles, or to
    /// completion, whichever comes first.  Granularity is one instruction /
    /// rally pass, so the machine may overshoot the budget slightly.
    ///
    /// Returns [`StepStatus::NotLoaded`] if no trace is loaded (call
    /// [`Simulator::load`] first) — never panics.
    pub fn step_n(&mut self, cycles: Cycle) -> StepStatus {
        let Backend::Loaded {
            engine,
            source,
            host_seconds,
        } = &mut self.backend
        else {
            return StepStatus::NotLoaded;
        };
        let trace = TraceCursor::new(&**source);
        let t0 = Instant::now();
        let target = engine.cycle().saturating_add(cycles);
        let alive = drive_blocks(engine, &trace, target, usize::MAX);
        *host_seconds += t0.elapsed().as_secs_f64();
        if alive {
            return StepStatus::Running {
                cycle: engine.cycle(),
                processed: engine.processed(),
            };
        }
        drop(trace);
        let Backend::Loaded {
            mut engine,
            source,
            mut host_seconds,
        } = std::mem::replace(&mut self.backend, Backend::Idle)
        else {
            unreachable!()
        };
        let trace = TraceCursor::new(&*source);
        let t1 = Instant::now();
        let result = engine.drain(&trace);
        host_seconds += t1.elapsed().as_secs_f64();
        StepStatus::Done(Box::new(SimReport::from_result(result, host_seconds)))
    }

    /// Advances the loaded run until at least `target` dynamic instructions
    /// have been processed (first pass), or the engine has fully stepped the
    /// trace, whichever comes first.  Unlike [`Simulator::step_n`] this never
    /// drains the engine, so a [`Simulator::checkpoint`] can follow — this is
    /// the warm-fork primitive the sweep executor builds on.
    ///
    /// Returns `Ok(true)` while the engine still has work (more instructions
    /// or pending rallies), `Ok(false)` once fully stepped (still undrained).
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::NotLoaded`] if no trace is loaded (call
    /// [`Simulator::load`] first) — never panics.
    pub fn advance_to_inst(&mut self, target: usize) -> Result<bool, CkptError> {
        let Backend::Loaded {
            engine,
            source,
            host_seconds,
        } = &mut self.backend
        else {
            return Err(CkptError::NotLoaded);
        };
        let trace = TraceCursor::new(&**source);
        let t0 = Instant::now();
        let alive = drive_blocks(engine, &trace, Cycle::MAX, target);
        *host_seconds += t0.elapsed().as_secs_f64();
        Ok(alive)
    }

    /// Captures the loaded run as a [`SimCheckpoint`]: the engine's complete
    /// serialized state plus the identity (name, length, digest) of the trace
    /// it was simulating and the block coordinates of the resume point (block
    /// geometry, resume block index, that block's digest), so a resume can
    /// validate and seek *directly* to the right block of a streamed source
    /// without touching anything before it.  The simulator keeps running —
    /// checkpointing is non-destructive.
    ///
    /// # Errors
    ///
    /// Fails if no trace is loaded, the engine cannot serialize (already
    /// drained), or the source cannot produce the resume block's digest.
    pub fn checkpoint(&self) -> Result<SimCheckpoint, CkptError> {
        let Backend::Loaded { engine, source, .. } = &self.backend else {
            return Err(CkptError::NotLoaded);
        };
        let snapshot = engine.save().map_err(CkptError::Engine)?;
        let block_size = source.block_size().max(1) as u64;
        let (resume_block, resume_block_digest) = if source.is_empty() {
            (0, 0)
        } else {
            let blk = (engine.processed() / block_size as usize)
                .min(source.block_count() - 1);
            let digest = source
                .block_digest(blk)
                .map_err(|e| CkptError::Source(e.to_string()))?;
            (blk as u64, digest)
        };
        Ok(SimCheckpoint {
            config: self.config.clone(),
            workload: source.name().to_string(),
            trace_len: source.len() as u64,
            trace_digest: source.digest(),
            block_size,
            resume_block,
            resume_block_digest,
            snapshot,
        })
    }

    /// Reconstructs a loaded simulator from a checkpoint and the trace it was
    /// taken against.  Continuing the run (via [`Simulator::step_n`] /
    /// [`Simulator::advance_to_inst`]) produces cycle counts, statistics and
    /// state digests bit-identical to the uninterrupted run.
    ///
    /// Validation is two-level: the trace identity (name, length,
    /// whole-trace digest — O(1) for arenas with a cached digest and for
    /// trace files, whose header records it), and, when the source's block
    /// geometry matches the checkpoint's, the *resume block's* digest.  The
    /// resume block is then fetched, which seeks a streamed source directly
    /// to the right offset — nothing before it is read, let alone decoded.
    ///
    /// # Errors
    ///
    /// Fails if the trace's identity or resume-block digest do not match
    /// what the checkpoint recorded, or if the snapshot cannot be restored.
    pub fn resume(
        ckpt: &SimCheckpoint,
        source: impl Into<Arc<dyn TraceSource>>,
    ) -> Result<Simulator, CkptError> {
        let source: Arc<dyn TraceSource> = source.into();
        if source.name() != ckpt.workload
            || source.len() as u64 != ckpt.trace_len
            || source.digest() != ckpt.trace_digest
        {
            return Err(CkptError::TraceMismatch {
                expected: format!("{} ({} insts, {:#018x})", ckpt.workload, ckpt.trace_len, ckpt.trace_digest),
                found: format!("{} ({} insts, {:#018x})", source.name(), source.len(), source.digest()),
            });
        }
        if !source.is_empty() && source.block_size() as u64 == ckpt.block_size {
            let blk = ckpt.resume_block as usize;
            let found = source
                .block_digest(blk)
                .map_err(|e| CkptError::Source(e.to_string()))?;
            if found != ckpt.resume_block_digest {
                return Err(CkptError::BlockMismatch {
                    block: ckpt.resume_block,
                    expected: ckpt.resume_block_digest,
                    found,
                });
            }
            if source.as_arena().is_none() {
                // Seek: pull the resume block into the streamed source's
                // cache so the first step after resume pays no fault.
                source
                    .block(blk)
                    .map_err(|e| CkptError::Source(e.to_string()))?;
            }
        }
        let mut engine = ckpt.config.core.engine(&ckpt.config.cfg);
        engine.restore(&ckpt.snapshot).map_err(CkptError::Engine)?;
        Ok(Simulator {
            config: ckpt.config.clone(),
            backend: Backend::Loaded {
                engine,
                source,
                host_seconds: 0.0,
            },
        })
    }

    /// Runs the loaded trace to completion and returns the final report
    /// (convenience wrapper over [`Simulator::step_n`] with an unbounded
    /// budget — used after [`Simulator::resume`]).
    ///
    /// # Panics
    ///
    /// Panics if no trace is loaded.
    pub fn finish_loaded(&mut self) -> SimReport {
        match self.step_n(Cycle::MAX) {
            StepStatus::Done(r) => *r,
            StepStatus::Running { .. } => unreachable!("unbounded budget must finish"),
            StepStatus::NotLoaded => {
                panic!("finish_loaded without a loaded trace; call Simulator::load first")
            }
        }
    }

    /// True if a batched run is in progress.
    pub fn is_loaded(&self) -> bool {
        !matches!(self.backend, Backend::Idle)
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("core", &self.config.core)
            .field("loaded", &self.is_loaded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfp_isa::{DynInst, Op, Reg, TraceBuilder};

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new("sim-test");
        for k in 0..20u64 {
            b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000 + k * 0x4000));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
            b.push(DynInst::store(Reg::int(3), Reg::int(4), 0x8000 + k * 8));
            for j in 0..5u64 {
                b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(5), j));
            }
        }
        b.build()
    }

    #[test]
    fn run_produces_consistent_report() {
        let mut sim = Simulator::new(SimConfig::default());
        let r = sim.run(&small_trace());
        assert_eq!(r.core, "icfp");
        assert_eq!(r.instructions, small_trace().len() as u64);
        assert!(r.cycles > 0);
        assert!(r.ipc > 0.0);
        assert!(r.host_seconds >= 0.0);
    }

    #[test]
    fn all_models_agree_on_final_state() {
        let t = small_trace();
        let digests: Vec<(_, _)> = CoreModel::ALL
            .into_iter()
            .map(|m| {
                let mut sim = Simulator::new(SimConfig::new(m));
                (m.name(), sim.run(&t).state_digest)
            })
            .collect();
        for w in digests.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "{} and {} disagree on final state",
                w[0].0, w[1].0
            );
        }
    }

    #[test]
    fn step_n_reaches_the_same_result_as_run() {
        let t = small_trace();
        let mut whole = Simulator::new(SimConfig::default());
        let full = whole.run(&t);

        let mut stepped = Simulator::new(SimConfig::default());
        stepped.load(t);
        let mut batches = 0;
        let report = loop {
            match stepped.step_n(100) {
                StepStatus::Running { .. } => batches += 1,
                StepStatus::Done(r) => break r,
                StepStatus::NotLoaded => unreachable!("trace was just loaded"),
            }
            assert!(batches < 10_000, "stepping did not terminate");
        };
        assert!(batches > 1, "budget of 100 cycles should take several batches");
        assert_eq!(report.cycles, full.cycles);
        assert_eq!(report.state_digest, full.state_digest);
        assert!(!stepped.is_loaded());
    }

    #[test]
    fn stepping_without_a_loaded_trace_is_a_typed_status_not_a_panic() {
        let mut sim = Simulator::new(SimConfig::default());
        assert!(matches!(sim.step_n(100), StepStatus::NotLoaded));
        assert!(matches!(
            sim.advance_to_inst(10),
            Err(CkptError::NotLoaded)
        ));
        // A completed run unloads the backend; further stepping reports it.
        sim.load(small_trace());
        let StepStatus::Done(_) = sim.step_n(Cycle::MAX) else {
            panic!("unbounded budget must finish");
        };
        assert!(matches!(sim.step_n(100), StepStatus::NotLoaded));
    }

    #[test]
    fn step_n_over_a_streamed_source_matches_the_arena_run() {
        // Small blocks force the batched driver across many block
        // boundaries; the result must be bit-identical to the arena run.
        let t = small_trace();
        let full = Simulator::new(SimConfig::default()).run(&t);
        let streamed = icfp_isa::ArenaSource::with_block_size(t, 16);
        let mut sim = Simulator::new(SimConfig::default());
        sim.load(streamed);
        let report = loop {
            match sim.step_n(200) {
                StepStatus::Running { .. } => {}
                StepStatus::Done(r) => break r,
                StepStatus::NotLoaded => unreachable!("trace was just loaded"),
            }
        };
        assert_eq!(report.cycles, full.cycles);
        assert_eq!(report.state_digest, full.state_digest);
    }

    #[test]
    fn non_steppable_models_finish_on_first_step() {
        let t = small_trace();
        let mut sim = Simulator::new(SimConfig::new(CoreModel::InOrder));
        sim.load(t);
        match sim.step_n(1) {
            StepStatus::Done(r) => assert_eq!(r.core, "in-order"),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn model_parsing_round_trips() {
        for m in CoreModel::ALL {
            assert_eq!(CoreModel::parse(m.name()), Some(m));
        }
        assert_eq!(CoreModel::parse("bogus"), None);
    }

    #[test]
    fn explicit_config_overrides_are_honoured() {
        let t = small_trace();
        let mut cfg = CoreModel::Icfp.default_config();
        cfg.mem.l2_hit_latency = 40;
        let slow = Simulator::new(SimConfig::with_config(CoreModel::Icfp, cfg)).run(&t);
        let fast = Simulator::new(SimConfig::new(CoreModel::Icfp)).run(&t);
        assert_eq!(slow.state_digest, fast.state_digest);
        assert!(
            slow.cycles >= fast.cycles,
            "higher L2 latency cannot be faster: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }
}
