//! The `icfp-ckpt/v2` checkpoint format.
//!
//! A [`SimCheckpoint`] captures a running [`Simulator`](crate::Simulator) —
//! the core engine's complete serialized state (register file and poison
//! planes, slice and store buffers, caches, MSHRs, bus, prefetcher,
//! statistics) plus the identity of the trace it was simulating — so long
//! runs can pause/resume and sweeps can fork many configurations from one
//! warmed column.  Resuming and finishing a checkpointed run is bit-identical
//! (cycles, statistics, state digest) to never having paused.
//!
//! ## On-disk container
//!
//! ```text
//! offset  size  field
//! 0       12    magic: the ASCII bytes "icfp-ckpt/v2"
//! 12      8     payload length (u64 LE)
//! 20      n     payload: SimCheckpoint in the vendored-serde binary format
//! 20+n    8     FNV-1a digest of the payload (u64 LE)
//! ```
//!
//! The digest is validated on load, the magic pins the format version, and
//! the payload itself embeds the trace's name/length/digest — so a resume
//! against corrupt bytes, a future incompatible format, or the wrong trace
//! all fail loudly instead of silently diverging.
//!
//! v2 (the block-streaming release) extends the payload with the resume
//! point's *block coordinates* — block size, resume block index and that
//! block's content digest — so resuming against a block-based source
//! ([`icfp_isa::TraceSource`]) validates and seeks directly to the resume
//! block instead of re-reading the trace from the start.  v1 containers
//! (which predate block geometry) are rejected by magic.

use crate::SimConfig;
use icfp_core::EngineSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Magic prefix of the on-disk container (also the format version).
pub const CKPT_MAGIC: &[u8; 12] = b"icfp-ckpt/v2";

/// A captured simulation: engine snapshot plus trace identity.  Produced by
/// [`Simulator::checkpoint`](crate::Simulator::checkpoint), consumed by
/// [`Simulator::resume`](crate::Simulator::resume).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCheckpoint {
    /// The simulator configuration (model + microarchitecture) of the run.
    pub config: SimConfig,
    /// Name of the trace the run was simulating.
    pub workload: String,
    /// Length of that trace in dynamic instructions.
    pub trace_len: u64,
    /// [`Trace::digest`](icfp_isa::Trace::digest) of that trace (equal to
    /// [`icfp_isa::TraceSource::digest`] of any backing with this content).
    pub trace_digest: u64,
    /// Block size of the source the checkpoint was taken against
    /// (instructions per block).
    pub block_size: u64,
    /// Index of the block holding the next unprocessed instruction — where
    /// resume seeks to.
    pub resume_block: u64,
    /// [`icfp_isa::block_digest_of`] the resume block, validated on resume
    /// when the source's block geometry matches.
    pub resume_block_digest: u64,
    /// The engine's serialized state.
    pub snapshot: EngineSnapshot,
}

/// Errors from checkpoint capture, encoding and resume.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptError {
    /// `checkpoint()` was called on a simulator with no loaded trace.
    NotLoaded,
    /// The engine refused to save/restore (e.g. already drained, model
    /// mismatch, undecodable snapshot bytes).
    Engine(String),
    /// The container does not start with [`CKPT_MAGIC`] (wrong file or a
    /// future format version).
    BadMagic,
    /// The container is shorter than its header/length field promises.
    Truncated,
    /// The payload digest does not match — the bytes were corrupted.
    DigestMismatch {
        /// Digest recorded in the container.
        expected: u64,
        /// Digest of the payload actually present.
        found: u64,
    },
    /// The payload digest matched but the payload did not decode (internal
    /// inconsistency or a hand-edited file).
    Decode(String),
    /// `resume()` was handed a trace that is not the one the checkpoint was
    /// taken against.
    TraceMismatch {
        /// Trace identity recorded in the checkpoint.
        expected: String,
        /// Identity of the trace supplied to `resume`.
        found: String,
    },
    /// The resume block's content digest does not match the checkpoint
    /// (same trace identity but different block content — a damaged or
    /// inconsistent source).
    BlockMismatch {
        /// The resume block index.
        block: u64,
        /// Digest recorded in the checkpoint.
        expected: u64,
        /// Digest the source reports.
        found: u64,
    },
    /// The trace source failed while producing resume-point block data
    /// (I/O error, container corruption).
    Source(String),
    /// Filesystem error while reading/writing a checkpoint file.
    Io(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::NotLoaded => write!(f, "no trace loaded; nothing to checkpoint"),
            CkptError::Engine(e) => write!(f, "engine snapshot: {e}"),
            CkptError::BadMagic => {
                write!(f, "not an icfp-ckpt/v1 container (bad magic)")
            }
            CkptError::Truncated => write!(f, "checkpoint container is truncated"),
            CkptError::DigestMismatch { expected, found } => write!(
                f,
                "checkpoint payload digest mismatch (recorded {expected:#018x}, found {found:#018x})"
            ),
            CkptError::Decode(e) => write!(f, "checkpoint payload does not decode: {e}"),
            CkptError::TraceMismatch { expected, found } => write!(
                f,
                "checkpoint was taken against trace {expected}, resume got {found}"
            ),
            CkptError::BlockMismatch {
                block,
                expected,
                found,
            } => write!(
                f,
                "resume block {block} digest mismatch (checkpoint {expected:#018x}, source {found:#018x})"
            ),
            CkptError::Source(e) => write!(f, "trace source: {e}"),
            CkptError::Io(e) => write!(f, "checkpoint i/o: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

use icfp_isa::fnv1a;

impl SimCheckpoint {
    /// Encodes the checkpoint as an `icfp-ckpt/v1` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = serde::to_bytes(self);
        let mut out = Vec::with_capacity(CKPT_MAGIC.len() + 16 + payload.len());
        out.extend_from_slice(CKPT_MAGIC);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let digest = fnv1a(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    /// Decodes an `icfp-ckpt/v1` container, validating magic, length and
    /// payload digest.
    ///
    /// # Errors
    ///
    /// See [`CkptError`] — every malformation is distinguished.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        if bytes.len() < CKPT_MAGIC.len() + 8 {
            return if bytes.starts_with(&CKPT_MAGIC[..bytes.len().min(CKPT_MAGIC.len())]) {
                Err(CkptError::Truncated)
            } else {
                Err(CkptError::BadMagic)
            };
        }
        let (magic, rest) = bytes.split_at(CKPT_MAGIC.len());
        if magic != CKPT_MAGIC {
            return Err(CkptError::BadMagic);
        }
        let (len_bytes, rest) = rest.split_at(8);
        let payload_len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes"));
        // Compare in u64 without adding to the (possibly hostile, near-MAX)
        // recorded length — `payload_len + 8` could overflow.
        if (rest.len() as u64) < 8 || (rest.len() as u64) - 8 < payload_len {
            return Err(CkptError::Truncated);
        }
        let payload_len = payload_len as usize;
        let (payload, tail) = rest.split_at(payload_len);
        let expected = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
        let found = fnv1a(payload);
        if found != expected {
            return Err(CkptError::DigestMismatch { expected, found });
        }
        serde::from_bytes(payload).map_err(|e| CkptError::Decode(e.to_string()))
    }

    /// Writes the container to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Io`] on filesystem failure.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), CkptError> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| CkptError::Io(format!("{}: {e}", path.as_ref().display())))
    }

    /// Reads and validates a container from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Io`] on filesystem failure, or any
    /// [`SimCheckpoint::from_bytes`] validation error.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, CkptError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| CkptError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreModel, SimConfig, Simulator};
    use icfp_isa::{DynInst, Op, Reg, TraceBuilder};

    fn trace() -> icfp_isa::Trace {
        let mut b = TraceBuilder::new("ckpt-test");
        for k in 0..30u64 {
            b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000 + k * 0x4000));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
            b.push(DynInst::store(Reg::int(3), Reg::int(4), 0x8000 + k * 8));
        }
        b.build()
    }

    fn checkpoint_mid_run() -> (SimCheckpoint, icfp_isa::Trace) {
        let t = trace();
        let mut sim = Simulator::new(SimConfig::new(CoreModel::Icfp));
        sim.load(t.clone());
        assert!(sim.advance_to_inst(t.len() / 2).expect("loaded"));
        (sim.checkpoint().expect("mid-run checkpoint"), t)
    }

    #[test]
    fn container_round_trips() {
        let (ck, _) = checkpoint_mid_run();
        let bytes = ck.to_bytes();
        assert!(bytes.starts_with(CKPT_MAGIC));
        let back = SimCheckpoint::from_bytes(&bytes).expect("decode");
        assert_eq!(back, ck);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (ck, _) = checkpoint_mid_run();
        let mut bytes = ck.to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(SimCheckpoint::from_bytes(&bytes), Err(CkptError::BadMagic));
        assert_eq!(SimCheckpoint::from_bytes(b"xx"), Err(CkptError::BadMagic));
    }

    #[test]
    fn corruption_is_caught_by_the_payload_digest() {
        let (ck, _) = checkpoint_mid_run();
        let mut bytes = ck.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match SimCheckpoint::from_bytes(&bytes) {
            Err(CkptError::DigestMismatch { .. }) => {}
            other => panic!("expected digest mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let (ck, _) = checkpoint_mid_run();
        let bytes = ck.to_bytes();
        for cut in [CKPT_MAGIC.len(), bytes.len() - 1, bytes.len() - 9] {
            assert_eq!(
                SimCheckpoint::from_bytes(&bytes[..cut]),
                Err(CkptError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn hostile_length_field_is_an_error_not_a_panic() {
        // magic + length u64::MAX + some tail: `len + 8` must not overflow.
        let mut bytes = CKPT_MAGIC.to_vec();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(SimCheckpoint::from_bytes(&bytes), Err(CkptError::Truncated));
        // A merely-too-large (non-overflowing) length is also truncation.
        let mut bytes = CKPT_MAGIC.to_vec();
        bytes.extend_from_slice(&1_000_000u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        assert_eq!(SimCheckpoint::from_bytes(&bytes), Err(CkptError::Truncated));
    }

    #[test]
    fn file_round_trip_via_tempdir() {
        let (ck, _) = checkpoint_mid_run();
        let path = std::env::temp_dir().join(format!(
            "icfp-ckpt-test-{}.ckpt",
            std::process::id()
        ));
        ck.write_file(&path).expect("write");
        let back = SimCheckpoint::read_file(&path).expect("read");
        assert_eq!(back, ck);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_the_wrong_trace() {
        let (ck, _) = checkpoint_mid_run();
        let mut b = TraceBuilder::new("ckpt-test"); // same name, different body
        for _ in 0..10 {
            b.push(DynInst::nop());
        }
        match Simulator::resume(&ck, b.build()) {
            Err(CkptError::TraceMismatch { .. }) => {}
            other => panic!("expected trace mismatch, got {other:?}"),
        }
    }
}
