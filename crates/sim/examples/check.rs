use icfp_sim::{CoreModel, SimConfig, Simulator};
fn main() {
    for t in icfp_workloads::standard_suite(8000, 7) {
        let mut line = format!("{:<14}", t.name());
        let mut digests = vec![];
        for m in CoreModel::ALL {
            let r = Simulator::new(SimConfig::new(m)).run(&t);
            line += &format!(" {}={:>8}", m.name(), r.cycles);
            digests.push((m.name(), r.state_digest));
        }
        let ok = digests.windows(2).all(|w| w[0].1 == w[1].1);
        println!("{line}  state-match={ok}");
        if !ok { println!("  digests: {digests:?}"); }
    }
}
