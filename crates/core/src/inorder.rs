//! The baseline 2-way in-order pipeline.
//!
//! This is the reference point every figure in the paper normalises to.  It
//! stalls at the first instruction that needs the result of a pending cache
//! miss (not at the miss itself), exactly as the paper describes, because
//! issue is in order: a stalled instruction blocks everything younger.

use crate::common::{seed_start, Engine};
use crate::config::CoreConfig;
use crate::Core;
use icfp_isa::{exec::ArchState, Cycle, OpClass, TraceCursor};
use icfp_pipeline::RunResult;
use std::collections::VecDeque;

/// The vanilla in-order core.
#[derive(Debug)]
pub struct InOrderCore {
    cfg: CoreConfig,
}

impl InOrderCore {
    /// Creates a baseline core with the given configuration.
    pub fn new(cfg: CoreConfig) -> Self {
        InOrderCore { cfg }
    }
}

impl Core for InOrderCore {
    fn name(&self) -> &'static str {
        "in-order"
    }

    fn run_cursor_from(&mut self, trace: &TraceCursor<'_>, warm: Option<&ArchState>) -> RunResult {
        let mut eng = Engine::new(&self.cfg);
        let start = seed_start(&mut eng, warm, trace.len());
        // Outstanding (not yet drained) stores: (drain completion, word addr).
        let mut store_q: VecDeque<(Cycle, u64)> = VecDeque::new();
        let sb_capacity = self.cfg.pipeline.baseline_store_buffer;
        let l1_lat = self.cfg.mem.l1_hit_latency;

        // Walk the trace block by block: the per-instruction work reads a
        // plain slice, so streamed sources pay the cursor's RefCell dispatch
        // once per block instead of once per instruction.
        trace.for_each_block_from(start, |first, insts| {
            for (off, inst) in insts.iter().enumerate() {
                let idx = first + off;
            let seq = idx as u64;
            let fetch_ready = eng.fetch.next_issue_ready();
            let mut earliest = fetch_ready.max(eng.src_ready(inst));

            // A full store buffer stalls the pipeline until the oldest store
            // drains.
            if inst.is_store() {
                while store_q.len() >= sb_capacity {
                    let (done, _) = store_q.pop_front().expect("non-empty");
                    if done > earliest {
                        eng.stats.resource_stall_cycles += done - earliest;
                        earliest = done;
                    }
                }
            }

            let issue = eng.issue_at(inst.class(), earliest);

            match inst.class() {
                OpClass::Load => {
                    eng.stats.demand_loads += 1;
                    let addr = inst.addr.expect("load without address");
                    // Retire drained stores.
                    while matches!(store_q.front(), Some(&(done, _)) if done <= issue) {
                        store_q.pop_front();
                    }
                    // Forward from an outstanding store if one matches.
                    let forwarded = store_q.iter().rev().any(|&(_, a)| a == (addr & !7));
                    let completes = if forwarded {
                        eng.stats.store_forwards += 1;
                        issue + l1_lat
                    } else {
                        let (completes, _outcome, _) = eng.demand_load(addr, issue);
                        completes
                    };
                    let value = eng.arch_mem.read(addr);
                    if let Some(dst) = inst.dst {
                        eng.rf.write(dst, value, completes, seq);
                    }
                    eng.note_completion(completes);
                }
                OpClass::Store => {
                    let addr = inst.addr.expect("store without address");
                    let data = inst
                        .store_data_reg()
                        .map(|r| eng.rf.value(r))
                        .unwrap_or(0);
                    eng.arch_mem.write(addr, data);
                    let drain_done = eng.demand_store(addr, issue + 1);
                    store_q.push_back((drain_done, addr & !7));
                    eng.note_completion(issue + 1);
                }
                OpClass::Branch => {
                    let resolve = issue + inst.latency();
                    eng.exec_branch(inst, resolve);
                    eng.note_completion(resolve);
                }
                _ => {
                    let value = eng.compute(inst);
                    let completes = issue + inst.latency();
                    if let (Some(dst), Some(v)) = (inst.dst, value) {
                        eng.rf.write(dst, v, completes, seq);
                    }
                    eng.note_completion(completes);
                }
            }
            }
            true
        });
        eng.finish(self.name(), trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::golden_final_state;
    use icfp_isa::{DynInst, Op, Reg, Trace, TraceBuilder};

    fn run(trace: &Trace) -> RunResult {
        InOrderCore::new(CoreConfig::paper_default()).run(trace)
    }

    #[test]
    fn empty_trace_runs() {
        let t = TraceBuilder::new("empty").build();
        let r = run(&t);
        assert_eq!(r.stats.instructions, 0);
    }

    #[test]
    fn alu_chain_matches_golden_model() {
        let mut b = TraceBuilder::new("alu");
        for i in 0..50u64 {
            b.push(DynInst::alu_imm(Op::Add, Reg::int(1), Reg::int(1), i));
            b.push(DynInst::alu(Op::Xor, Reg::int(2), Reg::int(1), Reg::int(2)));
        }
        let t = b.build();
        let r = run(&t);
        let (regs, mem) = golden_final_state(&t);
        assert_eq!(r.final_regs, regs);
        assert_eq!(r.final_mem, mem);
    }

    #[test]
    fn store_load_forwarding_preserves_values() {
        let mut b = TraceBuilder::new("st-ld");
        b.push(DynInst::alu_imm(Op::Add, Reg::int(1), Reg::int(1), 7));
        b.push(DynInst::store(Reg::int(1), Reg::int(2), 0x4000));
        b.push(DynInst::load(Reg::int(3), Reg::int(2), 0x4000));
        b.push(DynInst::alu(Op::Add, Reg::int(4), Reg::int(3), Reg::int(3)));
        let t = b.build();
        let r = run(&t);
        let (regs, _) = golden_final_state(&t);
        assert_eq!(r.final_regs, regs);
        assert!(r.stats.store_forwards >= 1);
    }

    #[test]
    fn cache_miss_stalls_first_dependent_instruction() {
        // ld (L2 miss) ; dependent add ; independent add
        let mut b = TraceBuilder::new("stall");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x80000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(5), 1));
        let t = b.build();
        let r = run(&t);
        // The dependent add waits for ~420+ cycles of memory latency, and the
        // independent add is stuck behind it (in-order).
        assert!(r.stats.cycles > 400, "cycles = {}", r.stats.cycles);
    }

    #[test]
    fn independent_misses_serialize_in_order_pipeline() {
        // Two independent L2 misses, each followed by a dependent use: the
        // baseline cannot overlap them.
        let mut b = TraceBuilder::new("serial");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
        b.push(DynInst::load(Reg::int(4), Reg::int(5), 0x200000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(6), Reg::int(4), 1));
        let t = b.build();
        let r = run(&t);
        assert!(
            r.stats.cycles > 800,
            "two serialized memory accesses should cost two memory latencies, got {}",
            r.stats.cycles
        );
    }

    #[test]
    fn branch_heavy_code_pays_mispredict_penalties() {
        let mut b = TraceBuilder::new("branches");
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            b.push(DynInst::branch(Reg::int(1), x & 1 == 0, 0x4000, 0.5).with_pc(0x2000));
        }
        let t = b.build();
        let r = run(&t);
        assert!(r.stats.branch_mispredicts > 50);
        assert!(r.stats.cycles > 500);
    }

    #[test]
    fn ipc_is_bounded_by_width() {
        let mut b = TraceBuilder::new("ilp");
        for i in 0..1000usize {
            b.push(DynInst::alu_imm(Op::Add, Reg::int(i % 16), Reg::int((i + 1) % 16), 3));
        }
        let t = b.build();
        let r = run(&t);
        let ipc = r.stats.ipc();
        assert!(ipc <= 2.01, "2-way core cannot exceed IPC 2, got {ipc}");
        assert!(ipc > 1.0, "independent ALU code should exceed IPC 1, got {ipc}");
    }
}
