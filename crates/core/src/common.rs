//! The shared execution engine used by every core model.
//!
//! [`Engine`] bundles the front end, issue scheduling, register file, memory
//! hierarchy, architectural memory image and statistics, and provides the
//! operations every core performs identically (operand readiness / poison
//! collection, issue-slot allocation, branch resolution, demand memory access
//! with MSHR-full retry, and final result assembly).  The cores differ only in
//! *what they do* around cache misses — which is exactly the paper's point.

use crate::config::CoreConfig;
use icfp_isa::{exec, Addr, Cycle, DynInst, FunctionalMemory, OpClass, Reg, Trace, TraceCursor, Value};
use icfp_mem::{AccessOutcome, MemError, MemoryHierarchy, MshrId};
use icfp_pipeline::{
    FetchEngine, IssueSchedule, PoisonMask, RunResult, RunStats, TimedRegFile,
};
use serde::{Deserialize, Serialize};

/// The per-run execution context shared by all core models.
///
/// Every field is part of the checkpointable simulation state: the derived
/// `Serialize`/`Deserialize` impls (vendored serde, declaration-order binary
/// codec) are what `CoreEngine::save`/`restore` are built on.
#[derive(Debug, Serialize, Deserialize)]
pub struct Engine {
    /// Core configuration.
    pub cfg: CoreConfig,
    /// Front end (fetch bandwidth, branch prediction, redirects).
    pub fetch: FetchEngine,
    /// Issue-slot / port schedule.
    pub issue: IssueSchedule,
    /// Main architectural register file (RF0).
    pub rf: TimedRegFile,
    /// The memory hierarchy (timing).
    pub mem: MemoryHierarchy,
    /// The architectural memory image (values of committed stores).
    pub arch_mem: FunctionalMemory,
    /// Run statistics.
    pub stats: RunStats,
    /// In-order issue frontier: the next instruction cannot issue earlier.
    pub frontier: Cycle,
    /// Latest completion observed (determines the run's cycle count).
    pub completion: Cycle,
}

impl Engine {
    /// Creates an engine for one run under the given configuration.
    pub fn new(cfg: &CoreConfig) -> Self {
        Engine {
            fetch: FetchEngine::new(&cfg.pipeline, cfg.predictor.clone()),
            issue: IssueSchedule::new(
                cfg.pipeline.width,
                cfg.pipeline.int_ports,
                cfg.pipeline.mem_fp_br_ports,
            ),
            rf: TimedRegFile::new(),
            mem: MemoryHierarchy::new(cfg.mem.clone()),
            arch_mem: FunctionalMemory::new(),
            stats: RunStats::default(),
            frontier: 0,
            completion: 0,
            cfg: cfg.clone(),
        }
    }

    /// Latest readiness cycle over the instruction's source registers.
    pub fn src_ready(&self, inst: &DynInst) -> Cycle {
        inst.sources().map(|r| self.rf.ready_at(r)).max().unwrap_or(0)
    }

    /// Union of the poison masks of the instruction's source registers.
    pub fn src_poison(&self, inst: &DynInst) -> PoisonMask {
        inst.sources()
            .map(|r| self.rf.poison(r))
            .fold(PoisonMask::CLEAN, PoisonMask::union)
    }

    /// Current architectural values of the instruction's two source operands.
    pub fn src_values(&self, inst: &DynInst) -> (Value, Value) {
        (
            inst.src1.map(|r| self.rf.value(r)).unwrap_or(0),
            inst.src2.map(|r| self.rf.value(r)).unwrap_or(0),
        )
    }

    /// Computes a non-memory instruction's result from the current register
    /// values (the memory closure is never invoked for non-loads).
    pub fn compute(&self, inst: &DynInst) -> Option<Value> {
        let (s1, s2) = self.src_values(inst);
        exec::compute(inst, s1, s2, |a| self.arch_mem.read(a))
    }

    /// Installs a functionally fast-forwarded architectural state into this
    /// (fresh) engine: every register holds its warmed value, ready at cycle
    /// 0 as if produced before the timed region began, and architectural
    /// memory is the warmed image.  Timing state — caches, predictors,
    /// statistics, the issue schedule — stays cold; that is the point of
    /// functional fast-forward, and why seeded runs match cold runs on final
    /// architectural state but intentionally not on cycle counts.
    pub fn seed_arch(&mut self, warm: &exec::ArchState) {
        for r in Reg::all() {
            self.rf.write(r, warm.reg(r), 0, 0);
        }
        self.arch_mem = warm.mem.clone();
    }

    /// Allocates an issue slot at or after `earliest`, maintaining in-order
    /// issue, and returns the issue cycle.
    pub fn issue_at(&mut self, class: OpClass, earliest: Cycle) -> Cycle {
        let cycle = self.issue.issue(earliest.max(self.frontier), class);
        self.frontier = cycle;
        self.note_completion(cycle);
        cycle
    }

    /// Records a completion cycle (the run finishes when the last one passes).
    pub fn note_completion(&mut self, cycle: Cycle) {
        self.completion = self.completion.max(cycle);
    }

    /// Resolves a branch at `resolve_cycle`; applies the redirect penalty and
    /// counts the mis-prediction if the predictor was wrong.  Returns whether
    /// it mis-predicted.
    pub fn exec_branch(&mut self, inst: &DynInst, resolve_cycle: Cycle) -> bool {
        let mispredicted = self.fetch.resolve_branch(inst);
        if mispredicted {
            self.stats.branch_mispredicts += 1;
            self.fetch.redirect(resolve_cycle);
        }
        mispredicted
    }

    /// Issues a demand load to the hierarchy at `at`, retrying if the MSHRs
    /// are full, and returns `(completes_at, outcome, mshr)`.
    pub fn demand_load(&mut self, addr: Addr, at: Cycle) -> (Cycle, AccessOutcome, Option<MshrId>) {
        let mut t = at;
        loop {
            match self.mem.load(addr, t) {
                Ok(r) => return (r.completes_at, r.outcome, r.mshr),
                Err(MemError::MshrFull { retry_at }) => {
                    let retry = retry_at.max(t + 1);
                    self.stats.resource_stall_cycles += retry - t;
                    t = retry;
                }
            }
        }
    }

    /// Issues a demand store (a store-buffer drain) to the hierarchy at `at`,
    /// retrying if the MSHRs are full, and returns its completion cycle.
    pub fn demand_store(&mut self, addr: Addr, at: Cycle) -> Cycle {
        let mut t = at;
        loop {
            match self.mem.store(addr, t) {
                Ok(r) => return r.completes_at,
                Err(MemError::MshrFull { retry_at }) => {
                    let retry = retry_at.max(t + 1);
                    t = retry;
                }
            }
        }
    }

    /// Finalises the run: fills in the cycle/instruction counts and snapshots
    /// the architectural state.
    pub fn finish(mut self, core: &'static str, trace: &TraceCursor<'_>) -> RunResult {
        self.stats.cycles = self.completion.max(self.frontier);
        self.stats.instructions = trace.len() as u64;
        let m = self.mem.stats();
        self.stats.mem_loads = m.loads;
        self.stats.mem_stores = m.stores;
        self.stats.l1d_misses = m.l1d_misses;
        self.stats.l2_misses = m.l2_misses;
        let mut final_mem: Vec<(u64, Value)> = self.arch_mem.iter().map(|(a, v)| (*a, *v)).collect();
        final_mem.sort_unstable();
        RunResult {
            core: core.to_string(),
            workload: trace.name().to_string(),
            stats: self.stats,
            final_regs: self.rf.values_snapshot(),
            final_mem,
        }
    }
}

/// Seeds `eng` from a functional fast-forward state, if one was supplied,
/// and returns the trace index the timed run starts at (0 when cold).  The
/// shared prologue of every whole-trace model's
/// [`crate::Core::run_cursor_from`].
pub fn seed_start(eng: &mut Engine, warm: Option<&exec::ArchState>, len: usize) -> usize {
    warm.map_or(0, |w| {
        eng.seed_arch(w);
        (w.instructions as usize).min(len)
    })
}

/// Runs the architectural golden model over a trace, returning the final
/// register values and memory image in the same format as [`RunResult`].
/// Integration tests compare every timing model against this.
pub fn golden_final_state(trace: &Trace) -> (Vec<Value>, Vec<(u64, Value)>) {
    golden_final_state_cursor(&TraceCursor::from_trace(trace))
}

/// [`golden_final_state`] over any cursor (streamed sources included —
/// memory stays bounded by the source's resident blocks).
pub fn golden_final_state_cursor(trace: &TraceCursor<'_>) -> (Vec<Value>, Vec<(u64, Value)>) {
    let mut st = icfp_isa::ArchState::new();
    for k in 0..trace.len() {
        st.exec(&trace.get(k));
    }
    let mut mem: Vec<(u64, Value)> = st.mem.iter().map(|(a, v)| (*a, *v)).collect();
    mem.sort_unstable();
    (st.reg_snapshot(), mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfp_isa::{DynInst, Op, Reg, TraceBuilder};

    fn cfg() -> CoreConfig {
        CoreConfig::paper_default()
    }

    #[test]
    fn src_ready_and_poison_aggregate_over_sources() {
        let mut e = Engine::new(&cfg());
        e.rf.write(Reg::int(1), 5, 100, 0);
        e.rf.poison_write(Reg::int(2), PoisonMask::bit(1), 1);
        let i = DynInst::alu(Op::Add, Reg::int(3), Reg::int(1), Reg::int(2));
        assert_eq!(e.src_ready(&i), 100);
        assert!(e.src_poison(&i).intersects(PoisonMask::bit(1)));
    }

    #[test]
    fn issue_at_is_monotonic() {
        let mut e = Engine::new(&cfg());
        let a = e.issue_at(OpClass::IntAlu, 10);
        let b = e.issue_at(OpClass::IntAlu, 0);
        assert!(b >= a, "in-order issue must not go backwards");
    }

    #[test]
    fn demand_load_retries_until_mshr_available() {
        let mut small = CoreConfig::tiny_for_tests();
        small.mem.max_outstanding_misses = 1;
        let mut e = Engine::new(&small);
        let (c1, _, _) = e.demand_load(0x10000, 0);
        // Second load to a different line must wait for the first MSHR.
        let (c2, _, _) = e.demand_load(0x20000, 0);
        assert!(c2 > c1);
        assert!(e.stats.resource_stall_cycles > 0);
    }

    #[test]
    fn branch_resolution_counts_mispredicts() {
        let mut e = Engine::new(&cfg());
        // Alternate an unpredictable pattern on a cold predictor; at least the
        // first resolution of a taken branch must redirect (BTB cold).
        let br = DynInst::branch(Reg::int(1), true, 0x9000, 0.5).with_pc(0x500);
        let mis = e.exec_branch(&br, 10);
        assert!(mis);
        assert_eq!(e.stats.branch_mispredicts, 1);
    }

    #[test]
    fn finish_snapshots_state_and_counts() {
        let mut b = TraceBuilder::new("t");
        b.push(DynInst::nop());
        b.push(DynInst::nop());
        let t = b.build();
        let mut e = Engine::new(&cfg());
        e.rf.write(Reg::int(1), 42, 0, 0);
        e.arch_mem.write(0x40, 7);
        e.note_completion(123);
        let r = e.finish("in-order", &TraceCursor::from_trace(&t));
        assert_eq!(r.stats.cycles, 123);
        assert_eq!(r.stats.instructions, 2);
        assert_eq!(r.final_regs[Reg::int(1).index()], 42);
        assert_eq!(r.final_mem, vec![(0x40, 7)]);
    }

    #[test]
    fn golden_final_state_matches_arch_state() {
        let mut b = TraceBuilder::new("t");
        b.push(DynInst::alu_imm(Op::Add, Reg::int(1), Reg::int(1), 1));
        b.push(DynInst::store(Reg::int(1), Reg::int(2), 0x80));
        let t = b.build();
        let (regs, mem) = golden_final_state(&t);
        assert_eq!(regs.len(), icfp_isa::NUM_ARCH_REGS);
        assert_eq!(mem.len(), 1);
    }
}
