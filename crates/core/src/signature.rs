//! Multiprocessor-safety signature (paper Section 3.3).
//!
//! Because iCFP is checkpoint-based, loads that obtained their value from the
//! cache are vulnerable to stores from other threads between checkpoint
//! creation and rally completion.  Instead of a large associative load queue,
//! iCFP keeps a single local Bloom-filter-style *signature*: vulnerable loads
//! insert their address, external stores probe it, and a probe hit squashes
//! execution back to the checkpoint.  The signature is cleared when a rally
//! completes.  Unlike signatures used for speculative multithreading or
//! transactional memory, it is never communicated between processors.

use icfp_isa::Addr;
use serde::{Deserialize, Serialize};

/// A fixed-size address signature with two hash functions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    bits: Vec<u64>,
    num_bits: usize,
    inserted: u64,
}

impl Signature {
    /// Creates a signature with `num_bits` bits (rounded up to a multiple of 64).
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` is zero.
    pub fn new(num_bits: usize) -> Self {
        assert!(num_bits > 0, "signature must have at least one bit");
        let words = num_bits.div_ceil(64);
        Signature {
            bits: vec![0; words],
            num_bits: words * 64,
            inserted: 0,
        }
    }

    fn hashes(&self, addr: Addr) -> (usize, usize) {
        // Two independent multiplicative hashes over the line address.
        let line = addr >> 6;
        let h1 = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h2 = line.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (line >> 17);
        (
            (h1 as usize) % self.num_bits,
            (h2 as usize) % self.num_bits,
        )
    }

    /// Inserts a vulnerable load address.
    pub fn insert(&mut self, addr: Addr) {
        let (a, b) = self.hashes(addr);
        self.bits[a / 64] |= 1 << (a % 64);
        self.bits[b / 64] |= 1 << (b % 64);
        self.inserted += 1;
    }

    /// Probes the signature with an external store address.  A `true` result
    /// means a conflict *may* exist and execution must squash to the
    /// checkpoint (false positives are safe, false negatives impossible).
    pub fn probe(&self, addr: Addr) -> bool {
        let (a, b) = self.hashes(addr);
        (self.bits[a / 64] >> (a % 64)) & 1 == 1 && (self.bits[b / 64] >> (b % 64)) & 1 == 1
    }

    /// Clears the signature (rally completed).
    pub fn clear(&mut self) {
        for w in &mut self.bits {
            *w = 0;
        }
        self.inserted = 0;
    }

    /// Number of addresses inserted since the last clear.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of bits set (occupancy); a rough indicator of the
    /// false-positive rate.
    pub fn occupancy(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.num_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_addresses_always_hit() {
        let mut s = Signature::new(1024);
        for i in 0..100u64 {
            s.insert(0x1000 + i * 64);
        }
        for i in 0..100u64 {
            assert!(s.probe(0x1000 + i * 64), "no false negatives allowed");
        }
        assert_eq!(s.inserted(), 100);
    }

    #[test]
    fn same_line_different_offsets_alias() {
        let mut s = Signature::new(1024);
        s.insert(0x2000);
        assert!(s.probe(0x2038), "addresses in the same line must conflict");
    }

    #[test]
    fn empty_signature_never_hits() {
        let s = Signature::new(256);
        for i in 0..1000u64 {
            assert!(!s.probe(i * 64));
        }
    }

    #[test]
    fn clear_resets() {
        let mut s = Signature::new(256);
        s.insert(0x4000);
        assert!(s.probe(0x4000));
        s.clear();
        assert!(!s.probe(0x4000));
        assert_eq!(s.inserted(), 0);
        assert_eq!(s.occupancy(), 0.0);
    }

    #[test]
    fn false_positive_rate_is_moderate_for_reasonable_occupancy() {
        let mut s = Signature::new(1024);
        for i in 0..64u64 {
            s.insert(0x10_0000 + i * 64);
        }
        // Probe disjoint addresses; some false positives are allowed but the
        // rate should be well below 50%.
        let fp = (0..1000u64)
            .filter(|i| s.probe(0x90_0000 + i * 64))
            .count();
        assert!(fp < 300, "false-positive count {fp} too high");
        assert!(s.occupancy() < 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        let _ = Signature::new(0);
    }
}
