//! "Flea-flicker" Multipass pipelining (Barnes, Ryoo & Hwu), modelled as the
//! paper describes it: Runahead-style advance execution plus a bounded result
//! buffer that saves the results of miss-independent advance instructions and
//! uses them to break dependences during the re-execution pass, accelerating
//! the rally.  Unlike iCFP/SLTP, Multipass still *re-processes* every
//! post-miss instruction; the saved results only make that re-processing
//! cheaper.  Per Section 5.1, Multipass advances under L2 misses and primary
//! data-cache misses but blocks on secondary data-cache misses
//! ([`crate::AdvancePolicy::L2AndPrimaryDcache`]).

use crate::config::CoreConfig;
use crate::runahead::runahead_like_run;
use crate::Core;
use icfp_isa::{exec::ArchState, TraceCursor};
use icfp_pipeline::RunResult;

/// The Multipass core.
#[derive(Debug)]
pub struct MultipassCore {
    cfg: CoreConfig,
}

impl MultipassCore {
    /// Creates a Multipass core.  Use [`CoreConfig::multipass_default`] for
    /// the paper's advance policy.
    pub fn new(cfg: CoreConfig) -> Self {
        MultipassCore { cfg }
    }
}

impl Core for MultipassCore {
    fn name(&self) -> &'static str {
        "multipass"
    }

    fn run_cursor_from(&mut self, trace: &TraceCursor<'_>, warm: Option<&ArchState>) -> RunResult {
        runahead_like_run(&self.cfg, trace, self.name(), true, warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::golden_final_state;
    use crate::inorder::InOrderCore;
    use crate::runahead::RunaheadCore;
    use icfp_isa::{DynInst, Op, Reg, Trace, TraceBuilder};

    /// Independent L2 misses each followed by a short dependence chain of ALU
    /// work — the scenario where saved results pay off during re-execution.
    fn chained_work_trace(n: usize) -> Trace {
        let mut b = TraceBuilder::new("mp-work");
        for k in 0..n {
            let base = 0x200000 + (k as u64) * 0x8000;
            b.push(DynInst::load(Reg::int(1), Reg::int(2), base));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
            // A serial chain of independent work (each instruction depends on
            // the previous one, but not on the load).
            b.push(DynInst::alu_imm(Op::Add, Reg::int(8), Reg::int(9), 1));
            for _ in 0..10 {
                b.push(DynInst::alu(Op::Mul, Reg::int(8), Reg::int(8), Reg::int(9)));
            }
        }
        b.build()
    }

    #[test]
    fn multipass_matches_golden_state() {
        let t = chained_work_trace(6);
        let r = MultipassCore::new(CoreConfig::multipass_default()).run(&t);
        let (regs, mem) = golden_final_state(&t);
        assert_eq!(r.final_regs, regs);
        assert_eq!(r.final_mem, mem);
    }

    #[test]
    fn multipass_beats_in_order_on_independent_misses() {
        let t = chained_work_trace(8);
        let base = InOrderCore::new(CoreConfig::paper_default()).run(&t);
        let mp = MultipassCore::new(CoreConfig::multipass_default()).run(&t);
        assert!(
            mp.stats.cycles < base.stats.cycles,
            "multipass {} vs in-order {}",
            mp.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn multipass_rally_is_at_least_as_fast_as_runahead() {
        // With the same advance policy, saved results can only help.
        let t = chained_work_trace(8);
        let cfg = CoreConfig::multipass_default();
        let ra = RunaheadCore::new(cfg.clone()).run(&t);
        let mp = MultipassCore::new(cfg).run(&t);
        assert!(
            mp.stats.cycles <= ra.stats.cycles + 4,
            "multipass {} should not be slower than runahead {}",
            mp.stats.cycles,
            ra.stats.cycles
        );
    }

    #[test]
    fn multipass_with_stores_stays_correct() {
        let mut b = TraceBuilder::new("mp-stores");
        for k in 0..5u64 {
            let base = 0x300000 + k * 0x8000;
            b.push(DynInst::load(Reg::int(1), Reg::int(2), base));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), k));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(4), 5));
            b.push(DynInst::store(Reg::int(4), Reg::int(5), 0x1000 + k * 8));
            b.push(DynInst::load(Reg::int(6), Reg::int(5), 0x1000 + k * 8));
            b.push(DynInst::alu(Op::Xor, Reg::int(7), Reg::int(6), Reg::int(7)));
        }
        let t = b.build();
        let r = MultipassCore::new(CoreConfig::multipass_default()).run(&t);
        let (regs, mem) = golden_final_state(&t);
        assert_eq!(r.final_regs, regs);
        assert_eq!(r.final_mem, mem);
    }
}
