//! iCFP — in-order Continual Flow Pipeline, the paper's mechanism.
//!
//! On any qualifying miss the pipeline keeps flowing: the missing load and its
//! forward slice drain into the slice buffer (with their miss-independent side
//! inputs), miss-independent instructions *commit* as they complete, and when
//! a miss returns the corresponding slice entries *rally* — re-execute and
//! merge their results into the main register file under the last-writer gate
//! of Section 3.1.  Stores (clean or poisoned-data) go to the address-hash
//! chained store buffer of Section 3.2 and drain to the cache in program
//! order; loads forward from it by walking the hash chain.  Poison is a small
//! bitvector (Section 3.4): each outstanding miss (MSHR) gets a bit, so a
//! returning miss rallies only the entries that depend on it.
//!
//! The model is written as an explicit state machine ([`IcfpMachine`]) that
//! advances one dynamic instruction (or one rally pass) per [`IcfpMachine::step`]
//! call.  This is what `icfp-sim` builds its batched `step_n(cycles)` API on;
//! [`IcfpCore::run`] simply steps the machine to completion.  The hot loop is
//! allocation-free in steady state: rally work lists, drain buffers and
//! operand-producer tables are scratch structures that are reused (capacity is
//! retained) across cycles and episodes.

use crate::common::Engine;
use crate::config::CoreConfig;
use crate::fxmap::FxHashMap;
use crate::slicebuf::{SliceBuffer, SliceEntry};
use crate::storebuf::ChainedStoreBuffer;
use crate::Core;
use icfp_isa::{exec, exec::ArchState, Cycle, DynInst, InstSeq, OpClass, TraceCursor, Value};
use icfp_mem::MshrId;
use icfp_pipeline::{PoisonAllocator, PoisonMask, RunResult};
use serde::{Deserialize, Serialize};

/// The iCFP core: a thin [`Core`] wrapper around [`IcfpMachine`].
#[derive(Debug)]
pub struct IcfpCore {
    cfg: CoreConfig,
}

impl IcfpCore {
    /// Creates an iCFP core.  [`CoreConfig::paper_default`] gives the paper's
    /// configuration (advance under all misses, full feature set).
    pub fn new(cfg: CoreConfig) -> Self {
        IcfpCore { cfg }
    }
}

impl Core for IcfpCore {
    fn name(&self) -> &'static str {
        "icfp"
    }

    fn run_cursor_from(&mut self, trace: &TraceCursor<'_>, warm: Option<&ArchState>) -> RunResult {
        let mut m = IcfpMachine::new(&self.cfg);
        if let Some(w) = warm {
            m.seed(w).expect("a just-created machine accepts a seed");
        }
        // Batched first pass: one `step_slice` call per block (arena sources
        // are a single call).  The trailing step loop is a safety net for
        // empty traces and any rallies the last block left pending.
        trace.for_each_block_from(m.processed().min(trace.len()), |first, insts| {
            m.step_slice(trace, insts, first, Cycle::MAX)
        });
        while m.step(trace) {}
        m.finish(trace)
    }
}

/// A miss whose return will trigger a rally pass.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PendingRally {
    mshr: MshrId,
    returns_at: Cycle,
    bit: PoisonMask,
}

/// Values produced by re-executed slice instructions, indexed by trace
/// position.  This models the paper's slice-buffer data storage: a rallying
/// instruction reads "pending from slice" operands from here.
///
/// Backed by an [`FxHashMap`] (fast non-cryptographic hash — rally passes
/// probe it up to three times per rallied instruction) whose capacity is
/// retained across rallies (cleared, not dropped, at episode boundaries), so
/// steady-state rally passes perform O(1) lookups and no per-cycle
/// allocation.  The serde codec writes entries sorted by key, so checkpoint
/// bytes are independent of the hasher.
#[derive(Debug, Default, Serialize, Deserialize)]
struct SliceValues {
    vals: FxHashMap<usize, (Value, Cycle)>,
}

impl SliceValues {
    fn get(&self, idx: usize) -> Option<(Value, Cycle)> {
        self.vals.get(&idx).copied()
    }

    fn set(&mut self, idx: usize, v: Value, ready: Cycle) {
        self.vals.insert(idx, (v, ready));
    }

    fn clear(&mut self) {
        self.vals.clear();
    }
}

/// The incremental iCFP pipeline model.
///
/// Create one per run, call [`IcfpMachine::step`] until it returns `false`,
/// then [`IcfpMachine::finish`].  [`IcfpMachine::cycle`] exposes the current
/// simulated cycle for budget-bounded stepping.
#[derive(Debug)]
pub struct IcfpMachine {
    eng: Engine,
    slice: SliceBuffer,
    sbuf: ChainedStoreBuffer,
    palloc: PoisonAllocator,
    /// Misses awaiting their rally, unordered (bounded by MSHR count).
    rallies: Vec<PendingRally>,
    /// Results of re-executed slice instructions (the slice data storage).
    slice_values: SliceValues,
    /// Scratch: `(physical slot, entry)` pairs selected for the current rally
    /// pass (capacity reused); the slot gives O(1) retire/re-poison.
    rally_scratch: Vec<(u32, SliceEntry)>,
    /// Scratch: stores drained from the store buffer this step.
    drain_scratch: Vec<(u64, Value)>,
    /// Next trace index to process.
    i: usize,
    /// True while the trace index lies inside at least one advance episode.
    in_episode: bool,
    done: bool,
}

impl IcfpMachine {
    /// Creates a machine for one run under `cfg`.
    pub fn new(cfg: &CoreConfig) -> Self {
        IcfpMachine {
            eng: Engine::new(cfg),
            slice: SliceBuffer::new(cfg.slice_buffer_entries),
            sbuf: ChainedStoreBuffer::new(
                cfg.store_buffer_kind,
                cfg.store_buffer_entries,
                cfg.chain_table_entries,
            ),
            palloc: PoisonAllocator::new(cfg.features.poison_vector_width.clamp(1, 16)),
            rallies: Vec::with_capacity(cfg.mem.max_outstanding_misses),
            slice_values: SliceValues::default(),
            rally_scratch: Vec::with_capacity(cfg.slice_buffer_entries),
            drain_scratch: Vec::with_capacity(cfg.store_buffer_entries),
            i: 0,
            in_episode: false,
            done: false,
        }
    }

    /// Installs a functional fast-forward state: architectural registers and
    /// memory as of trace position `warm.instructions`, timing state cold,
    /// the first pass resuming there.  Checkpoints taken afterwards carry
    /// the seed (the machine serializes whole), so FF runs mint ordinary
    /// `icfp-ckpt/v2` checkpoints.
    ///
    /// # Errors
    ///
    /// Fails if the machine has already processed work — a seed replaces the
    /// *initial* architectural state, not a mid-run one.
    pub fn seed(&mut self, warm: &ArchState) -> Result<(), String> {
        if self.i != 0 || self.eng.frontier != 0 || self.in_episode || self.done {
            return Err("functional fast-forward requires a fresh machine".into());
        }
        self.eng.seed_arch(warm);
        self.i = warm.instructions as usize;
        Ok(())
    }

    /// The current simulated cycle (the in-order issue frontier).
    pub fn cycle(&self) -> Cycle {
        self.eng.frontier
    }

    /// True while the machine is inside an advance episode (misses pending or
    /// slice entries active) — checkpoints taken here capture mid-episode
    /// speculative state.
    pub fn in_episode(&self) -> bool {
        self.in_episode
    }

    /// Number of dynamic instructions whose first pass has been processed.
    pub fn processed(&self) -> usize {
        self.i
    }

    /// Read access to the engine (statistics, memory hierarchy).
    pub fn engine(&self) -> &Engine {
        &self.eng
    }

    /// Peak slice-buffer occupancy so far.
    pub fn slice_peak(&self) -> usize {
        self.slice.peak()
    }

    /// Advances the machine by one unit of work: either one rally pass (if a
    /// miss has returned) or one dynamic instruction.  Returns `false` once
    /// the trace is fully retired (no instruction left, no pending rally).
    pub fn step(&mut self, trace: &TraceCursor<'_>) -> bool {
        if self.done {
            return false;
        }
        // 1. Fire any rally whose miss has returned by the current frontier.
        if let Some(k) = self.due_rally() {
            let r = self.rallies.swap_remove(k);
            self.run_rally(trace, r);
            return true;
        }
        // 2. Out of instructions: drain remaining rallies in return order.
        if self.i >= trace.len() {
            if let Some(k) = self.earliest_rally() {
                let r = self.rallies.swap_remove(k);
                self.eng.frontier = self.eng.frontier.max(r.returns_at);
                self.run_rally(trace, r);
                return true;
            }
            self.retire_all_stores();
            self.done = true;
            return false;
        }
        // 3. Process the next dynamic instruction.
        let inst = trace.get(self.i);
        self.step_inst(trace, &inst);
        true
    }

    /// Batched stepping: advances through `insts` — the dynamic instructions
    /// at trace positions `first..first + insts.len()` — without
    /// per-instruction cursor dispatch.  Rally passes still reach older
    /// instructions through `trace` (random access).  Stops when the fed
    /// slice is consumed (the caller fetches the next block), the cycle
    /// budget `until` is reached, or the run completes; returns `false` once
    /// the trace is fully retired, like [`IcfpMachine::step`].
    ///
    /// An empty slice is valid once the first pass has passed `first`: the
    /// machine then drains pending rallies one unit at a time.
    pub fn step_slice(
        &mut self,
        trace: &TraceCursor<'_>,
        insts: &[DynInst],
        first: usize,
        until: Cycle,
    ) -> bool {
        let end = first + insts.len();
        let len = trace.len();
        loop {
            if self.done {
                return false;
            }
            if self.eng.frontier >= until {
                return true;
            }
            if let Some(k) = self.due_rally() {
                let r = self.rallies.swap_remove(k);
                self.run_rally(trace, r);
                continue;
            }
            if self.i >= len {
                if let Some(k) = self.earliest_rally() {
                    let r = self.rallies.swap_remove(k);
                    self.eng.frontier = self.eng.frontier.max(r.returns_at);
                    self.run_rally(trace, r);
                    continue;
                }
                self.retire_all_stores();
                self.done = true;
                return false;
            }
            if self.i < first || self.i >= end {
                // Next instruction lies outside the fed slice: hand control
                // back so the caller can fetch the block that contains it.
                return true;
            }
            let inst = insts[self.i - first];
            self.step_inst(trace, &inst);
        }
    }

    fn due_rally(&self) -> Option<usize> {
        let now = self.eng.frontier;
        let mut best: Option<(usize, Cycle)> = None;
        for (k, r) in self.rallies.iter().enumerate() {
            if r.returns_at <= now && best.is_none_or(|(_, c)| r.returns_at < c) {
                best = Some((k, r.returns_at));
            }
        }
        best.map(|(k, _)| k)
    }

    fn earliest_rally(&self) -> Option<usize> {
        self.rallies
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.returns_at)
            .map(|(k, _)| k)
    }

    /// Registers a miss for a future rally and returns its poison bit.
    fn poison_for_miss(&mut self, mshr: MshrId, returns_at: Cycle) -> PoisonMask {
        let bit = self.palloc.bit_for(mshr);
        if let Some(r) = self.rallies.iter_mut().find(|r| r.mshr == mshr) {
            r.returns_at = r.returns_at.max(returns_at);
        } else {
            self.rallies.push(PendingRally {
                mshr,
                returns_at,
                bit,
            });
        }
        if !self.in_episode {
            self.in_episode = true;
            self.eng.stats.advance_episodes += 1;
            // iCFP checkpoints for multiprocessor safety; uniprocessor traces
            // never restore it, but creating it models the occupancy.
            self.eng.rf.checkpoint(returns_at, self.i as InstSeq);
        }
        bit
    }

    /// The trace indices producing an instruction's poisoned operands
    /// (`usize::MAX` = operand was captured/absent), stored in the slice
    /// entry so rallies can read them from the slice data storage.
    fn producers_for(&self, inst: &DynInst) -> (usize, usize) {
        let prod = |r: Option<icfp_isa::Reg>| -> usize {
            r.map_or(usize::MAX, |r| {
                if self.eng.rf.poison(r).is_poisoned() {
                    self.eng.rf.last_writer(r).map_or(usize::MAX, |s| s as usize)
                } else {
                    usize::MAX
                }
            })
        };
        (prod(inst.src1), prod(inst.src2))
    }

    /// Diverts instruction `i` into the slice buffer.  `extra` carries poison
    /// the instruction acquired through memory (store-buffer forwarding).
    ///
    /// Returns `false` if the slice buffer is full.  In that case the paper's
    /// simple-runahead fallback is applied — the pipeline stalls for the
    /// earliest pending rally (which retires entries and frees slots) — and
    /// the caller must *re-process the instruction from scratch* without
    /// advancing.  Re-processing matters: the stall rally can finish the whole
    /// advance episode, cleaning the register poison this entry was built
    /// from, in which case the instruction no longer needs to slice at all.
    /// (Pushing a pre-built entry after such a rally would insert stale poison
    /// bits that no pending miss owns — a deadlock.)
    #[must_use]
    fn push_slice(
        &mut self,
        trace: &TraceCursor<'_>,
        inst: &DynInst,
        issue: Cycle,
        extra: PoisonMask,
    ) -> bool {
        let i = self.i;
        let seq = i as InstSeq;
        if self.slice.is_full() {
            self.slice.reclaim_head();
        }
        if self.slice.is_full() {
            // Simple-runahead fallback: stall until the earliest miss returns
            // and its rally retires head entries, then retry the instruction.
            self.eng.stats.simple_runahead_entries += 1;
            let k = self
                .earliest_rally()
                .expect("slice buffer full of active entries with no pending miss");
            let at = self.rallies[k].returns_at;
            self.eng.stats.resource_stall_cycles += at.saturating_sub(self.eng.frontier);
            self.eng.frontier = self.eng.frontier.max(at);
            let r = self.rallies.swap_remove(k);
            self.run_rally(trace, r);
            return false;
        }
        let mut poison = self.eng.src_poison(inst).union(extra);
        if poison.is_clean() {
            poison = PoisonMask::bit(0);
        }
        let (src1_producer, src2_producer) = self.producers_for(inst);
        let capture = |r: Option<icfp_isa::Reg>| -> Option<Value> {
            r.and_then(|r| {
                if self.eng.rf.poison(r).is_clean() {
                    Some(self.eng.rf.value(r))
                } else {
                    None
                }
            })
        };
        let entry = SliceEntry {
            trace_idx: i,
            seq_from_ckpt: seq,
            src1_value: capture(inst.src1),
            src2_value: capture(inst.src2),
            src1_producer,
            src2_producer,
            store_color: self.sbuf.ssn_tail(),
            poison,
            active: true,
        };
        self.eng.stats.sliced_instructions += 1;
        self.slice
            .push(entry)
            .expect("slice slot was reserved above");
        if let Some(dst) = inst.dst {
            self.eng.rf.poison_write(dst, poison, seq);
        }
        if inst.is_store() {
            // Clean-address store with (possibly) poisoned data: chain it now;
            // the rally will resolve its value in place (Section 3.2).
            if let Some(addr) = inst.addr {
                self.chain_store(trace, addr, 0, poison, seq, issue);
            }
        }
        self.eng.note_completion(issue + 1);
        true
    }

    /// Pushes a store into the chained store buffer, stalling (draining) if
    /// it is full.
    fn chain_store(
        &mut self,
        trace: &TraceCursor<'_>,
        addr: u64,
        value: Value,
        poison: PoisonMask,
        seq: InstSeq,
        at: Cycle,
    ) {
        if self.sbuf.is_full() {
            // Drain completed stores to make room; if nothing drains, stall
            // until the earliest rally frees slice/store entries.
            self.drain_stores(seq, at);
            while self.sbuf.is_full() {
                let Some(k) = self.earliest_rally() else { break };
                let ret = self.rallies[k].returns_at;
                self.eng.stats.resource_stall_cycles += ret.saturating_sub(self.eng.frontier);
                self.eng.frontier = self.eng.frontier.max(ret);
                let r = self.rallies.swap_remove(k);
                // Rally to unclog poisoned stores, then drain again.
                self.run_rally(trace, r);
                self.drain_stores(seq, self.eng.frontier);
            }
        }
        let _ = self.sbuf.push(seq, addr, value, poison);
    }

    /// Drains completed (clean, older than `completed_seq`) stores to the
    /// cache and architectural memory.  Allocation-free: uses the reusable
    /// drain scratch buffer.
    fn drain_stores(&mut self, completed_seq: InstSeq, at: Cycle) {
        self.drain_scratch.clear();
        self.sbuf
            .drain_completed_into(completed_seq, &mut self.drain_scratch);
        for k in 0..self.drain_scratch.len() {
            let (addr, value) = self.drain_scratch[k];
            self.eng.arch_mem.write(addr, value);
            let _ = self.eng.demand_store(addr, at);
        }
    }

    /// Final drain when the run ends: every store must be clean by now.
    fn retire_all_stores(&mut self) {
        let at = self.eng.frontier;
        self.drain_scratch.clear();
        self.sbuf.drain_all_into(&mut self.drain_scratch);
        for k in 0..self.drain_scratch.len() {
            let (addr, value) = self.drain_scratch[k];
            self.eng.arch_mem.write(addr, value);
            let _ = self.eng.demand_store(addr, at);
        }
        self.eng.rf.release_checkpoint();
    }

    /// Processes one dynamic instruction (first pass).  `inst` must be the
    /// instruction at trace position `self.i` — the caller fetches it (from
    /// the cursor, or from a batched block slice).
    fn step_inst(&mut self, trace: &TraceCursor<'_>, inst: &DynInst) {
        let i = self.i;
        let seq = i as InstSeq;
        let l1_lat = self.eng.cfg.mem.l1_hit_latency;
        let policy = self.eng.cfg.advance_policy;
        let in_advance = !self.rallies.is_empty() || !self.slice.no_active();

        let fetch_ready = self.eng.fetch.next_issue_ready();
        let src_poison = self.eng.src_poison(inst);
        // Poisoned operands do not stall issue: the instruction flows to the
        // slice buffer at fetch rate.
        let earliest = if src_poison.is_poisoned() {
            fetch_ready
        } else {
            fetch_ready.max(self.eng.src_ready(inst))
        };
        let issue = self.eng.issue_at(inst.class(), earliest);
        if in_advance {
            self.eng.stats.advance_instructions += 1;
        }

        // Opportunistically drain completed stores (program order: everything
        // older than the current instruction is complete unless poisoned).
        if !self.sbuf.is_empty() {
            self.drain_stores(seq, issue);
        }

        if src_poison.is_poisoned() {
            if inst.is_store() && inst.addr_base_reg().is_some_and(|r| {
                self.eng.rf.poison(r).is_poisoned()
            }) {
                // Poisoned *address*: the store cannot be chained.  iCFP falls
                // back to simple runahead — wait for the producing miss.
                self.eng.stats.simple_runahead_entries += 1;
                self.stall_for_poison(trace, self.eng.rf.poison(inst.addr_base_reg().unwrap()));
                // After the stall+rally the base register is clean; re-run
                // this instruction from the top.
                if self.eng.src_poison(inst).is_clean() {
                    return; // self.i unchanged: reprocess now-clean inst
                }
            }
            if self.push_slice(trace, inst, issue, PoisonMask::CLEAN) {
                self.i += 1;
            }
            return;
        }

        match inst.class() {
            OpClass::Load => {
                self.eng.stats.demand_loads += 1;
                let addr = inst.addr.expect("load without address");
                // Probe the store buffer (first probe free, excess hops cost).
                let fwd = self.sbuf.forward(addr & !7, self.sbuf.ssn_tail());
                self.eng.stats.chain_hops += fwd.excess_hops;
                if fwd.must_stall {
                    // Limited-forwarding organisation: stall until the
                    // mismatching root store drains.
                    self.eng.stats.simple_runahead_entries += 1;
                    self.drain_all_rallies(trace);
                    self.drain_stores(seq, self.eng.frontier);
                }
                let fwd = if fwd.must_stall {
                    self.sbuf.forward(addr & !7, self.sbuf.ssn_tail())
                } else {
                    fwd
                };
                if let Some(st) = fwd.store {
                    let hop_penalty =
                        fwd.excess_hops * self.eng.cfg.chain_hop_penalty;
                    if st.poison.is_poisoned() {
                        // Memory dependence on a poisoned store: slice out.
                        if self.push_slice(trace, inst, issue, st.poison) {
                            self.i += 1;
                        }
                        return;
                    }
                    self.eng.stats.store_forwards += 1;
                    let completes = issue + l1_lat + hop_penalty;
                    if let Some(dst) = inst.dst {
                        self.eng.rf.write(dst, st.value, completes, seq);
                    }
                    self.eng.note_completion(completes);
                    self.i += 1;
                    return;
                }
                // Memory access.
                let (completes, outcome, mshr) = self.eng.demand_load(addr, issue);
                let value = self.eng.arch_mem.read(addr);
                let is_miss = outcome.is_l1_miss() && completes > issue + l1_lat;
                let tolerated = if !in_advance {
                    policy.triggers_on(outcome.is_l2_miss())
                } else if outcome.is_l2_miss() {
                    true
                } else {
                    policy.poisons_secondary_dcache()
                };
                if is_miss && tolerated {
                    if let Some(m) = mshr {
                        let bit = self.poison_for_miss(m, completes);
                        // A successful push poisons the destination (inside
                        // push_slice); a failed push means the instruction
                        // re-processes from scratch after the stall rally,
                        // possibly as a plain hit.
                        if self.push_slice(trace, inst, issue, bit) {
                            self.i += 1;
                        }
                        return;
                    }
                }
                // Hit, prefetch hit, or a miss the policy blocks on.
                if let Some(dst) = inst.dst {
                    self.eng.rf.write(dst, value, completes, seq);
                }
                self.eng.note_completion(completes);
            }
            OpClass::Store => {
                let addr = inst.addr.expect("store without address");
                let data = inst
                    .store_data_reg()
                    .map(|r| self.eng.rf.value(r))
                    .unwrap_or(0);
                self.chain_store(trace, addr, data, PoisonMask::CLEAN, seq, issue);
                self.eng.note_completion(issue + 1);
            }
            OpClass::Branch => {
                let resolve = issue + inst.latency();
                self.eng.exec_branch(inst, resolve);
                self.eng.note_completion(resolve);
            }
            _ => {
                let completes = issue + inst.latency();
                if let (Some(dst), Some(v)) = (inst.dst, self.eng.compute(inst)) {
                    self.eng.rf.write(dst, v, completes, seq);
                }
                self.eng.note_completion(completes);
            }
        }
        self.i += 1;
    }

    /// Stalls the pipeline until the misses in `poison` have returned and
    /// rallied (simple-runahead fallback for un-chainable stores).
    fn stall_for_poison(&mut self, trace: &TraceCursor<'_>, poison: PoisonMask) {
        let mut guard = 0usize;
        while guard < 64 {
            guard += 1;
            let Some(k) = self
                .rallies
                .iter()
                .enumerate()
                .filter(|(_, r)| r.bit.intersects(poison))
                .min_by_key(|(_, r)| r.returns_at)
                .map(|(k, _)| k)
                .or_else(|| self.earliest_rally())
            else {
                break;
            };
            let ret = self.rallies[k].returns_at;
            self.eng.stats.resource_stall_cycles += ret.saturating_sub(self.eng.frontier);
            self.eng.frontier = self.eng.frontier.max(ret);
            let r = self.rallies.swap_remove(k);
            self.run_rally(trace, r);
            if self.rallies.is_empty() {
                break;
            }
        }
    }

    /// Runs every pending rally to completion (limited-forwarding stall path).
    fn drain_all_rallies(&mut self, trace: &TraceCursor<'_>) {
        while let Some(k) = self.earliest_rally() {
            let ret = self.rallies[k].returns_at;
            self.eng.frontier = self.eng.frontier.max(ret);
            let r = self.rallies.swap_remove(k);
            self.run_rally(trace, r);
        }
    }

    /// Executes the rally for the returning miss `r` (Section 3.4): the
    /// active slice entries whose poison intersects the returning bit
    /// re-execute in program order; entries that depend on a *different*
    /// pending miss are re-poisoned in place and stay for a later pass.
    ///
    /// Poison bits are a *finite* namespace (width ≤ 16) shared round-robin
    /// by misses, so an entry can carry a bit whose miss has already rallied.
    /// If the last pending rally would end the episode with entries still
    /// active, cleanup passes over *all* active entries run until the episode
    /// is quiescent (each pass resolves in program order, so producer chains
    /// always make progress; a load that misses again spawns a fresh rally
    /// and the episode continues normally).
    fn run_rally(&mut self, trace: &TraceCursor<'_>, r: PendingRally) {
        self.palloc.release(r.mshr);
        self.rally_pass(trace, r.bit, r.returns_at);
        let mut guard = 0u32;
        while self.rallies.is_empty() && !self.slice.no_active() {
            let before = self.slice.active_len();
            self.rally_pass(trace, PoisonMask::all_bits(), self.eng.frontier);
            guard += 1;
            debug_assert!(
                self.slice.active_len() < before || !self.rallies.is_empty(),
                "episode cleanup made no progress"
            );
            if guard > 4096 || (self.slice.active_len() >= before && self.rallies.is_empty()) {
                break;
            }
        }
        if self.rallies.is_empty() && self.slice.no_active() {
            // Episode over: speculative state retires.
            self.in_episode = false;
            self.eng.stats.slice_peak =
                self.eng.stats.slice_peak.max(self.slice.peak() as u64);
            self.slice.clear();
            self.slice_values.clear();
            self.palloc.clear();
            self.eng.rf.release_checkpoint();
        }
    }

    /// One pass over the active slice entries selected by `select`.
    fn rally_pass(&mut self, trace: &TraceCursor<'_>, select: PoisonMask, returns_at: Cycle) {
        self.eng.stats.rally_passes += 1;
        let start = self.eng.frontier.max(returns_at);
        let l1_lat = self.eng.cfg.mem.l1_hit_latency;
        let nonblocking = self.eng.cfg.features.nonblocking_rallies;
        let multithreaded = self.eng.cfg.features.multithreaded_rally;

        // Other rallies' bits still pending (for re-poisoning decisions).
        let mut pending_bits = PoisonMask::CLEAN;
        for p in &self.rallies {
            pending_bits |= p.bit;
        }

        self.slice
            .rally_select_into(select, &mut self.rally_scratch);

        let mut rally_frontier = start;
        let mut rally_end = start;
        for k in 0..self.rally_scratch.len() {
            let (slot, e) = self.rally_scratch[k];
            let slot = slot as usize;
            let inst = trace.get(e.trace_idx);
            let inst = &inst;
            let seq = e.trace_idx as InstSeq;
            self.eng.stats.rally_instructions += 1;

            // Resolve operands: captured side inputs or slice data storage.
            let (p1, p2) = (e.src1_producer, e.src2_producer);
            let mut vals = [0u64; 2];
            let mut ready = rally_frontier;
            let mut unresolved = PoisonMask::CLEAN;
            for (n, (src, cap, prod)) in [
                (inst.src1, e.src1_value, p1),
                (inst.src2, e.src2_value, p2),
            ]
            .into_iter()
            .enumerate()
            {
                if src.is_none() {
                    continue;
                }
                if let Some(v) = cap {
                    vals[n] = v;
                } else if let Some((v, c)) = self.slice_values.get(prod) {
                    vals[n] = v;
                    ready = ready.max(c);
                } else {
                    // Producer has not rallied yet: it belongs to a different
                    // pending miss.  Re-poison with the producer's bits.
                    let pb = self
                        .slice
                        .entry_poison(prod)
                        .unwrap_or(pending_bits)
                        .without(select);
                    unresolved |= if pb.is_clean() { pending_bits } else { pb };
                }
            }
            if unresolved.is_poisoned() && !self.rallies.is_empty() {
                // Entry waits for another miss (non-blocking rally).
                let np = e.poison.without(select).union(unresolved);
                self.slice.repoison_at(slot, np);
                if let Some(dst) = inst.dst {
                    if self.eng.rf.entry(dst).last_writer == Some(seq) {
                        self.eng.rf.poison_write(dst, np, seq);
                    }
                }
                continue;
            }

            let issue = self.eng.issue_at(inst.class(), ready.max(rally_frontier));
            rally_frontier = issue + 1;

            let (value, completes) = match inst.class() {
                OpClass::Load => {
                    let addr = inst.addr.expect("load without address");
                    let fwd = self.sbuf.forward(addr & !7, e.store_color);
                    self.eng.stats.chain_hops += fwd.excess_hops;
                    if let Some(st) = fwd.store {
                        if st.poison.is_poisoned() {
                            // Forwarding store still poisoned by another miss.
                            let np = e.poison.without(select).union(st.poison.without(select));
                            let np = if np.is_clean() { pending_bits } else { np };
                            if np.is_poisoned() && !self.rallies.is_empty() {
                                self.slice.repoison_at(slot, np);
                                continue;
                            }
                            // No other pending miss can resolve it — the store
                            // resolves within this very pass; fall through and
                            // read architectural memory after drain.
                            (Some(self.eng.arch_mem.read(addr)), issue + l1_lat)
                        } else {
                            self.eng.stats.store_forwards += 1;
                            let hop = fwd.excess_hops * self.eng.cfg.chain_hop_penalty;
                            (Some(st.value), issue + l1_lat + hop)
                        }
                    } else {
                        let (completes, outcome, mshr) = self.eng.demand_load(addr, issue);
                        // The line's data is not yet available — a genuine
                        // re-miss, or (poison-bit aliasing) a hit under a fill
                        // owned by a *different* in-flight miss that shares
                        // this rally's bit.  Either way the MSHR holding the
                        // line is returned, so the entry defers to it instead
                        // of blocking this rally.
                        let _ = outcome;
                        let still_in_flight = completes > issue + l1_lat;
                        if still_in_flight && nonblocking {
                            if let Some(m) = mshr {
                                // The line is gone again: hand the entry to a
                                // new rally instead of blocking this one.
                                let bit = self.poison_for_miss(m, completes);
                                let np = e.poison.without(select).union(bit);
                                self.slice.repoison_at(slot, np);
                                if let Some(dst) = inst.dst {
                                    if self.eng.rf.entry(dst).last_writer == Some(seq) {
                                        self.eng.rf.poison_write(dst, np, seq);
                                    }
                                }
                                continue;
                            }
                        }
                        // Blocking rally (or unmissable): wait it out.
                        (Some(self.eng.arch_mem.read(addr)), completes)
                    }
                }
                OpClass::Store => {
                    let v = if let Some(data) = inst.store_data_reg() {
                        let (dp1, dp2) = (p1, p2);
                        // Store data is src2 (falling back to src1).
                        let (cap, prod) = if inst.src2.is_some() {
                            (e.src2_value, dp2)
                        } else {
                            (e.src1_value, dp1)
                        };
                        cap.or_else(|| self.slice_values.get(prod).map(|(v, _)| v))
                            .unwrap_or_else(|| self.eng.rf.value(data))
                    } else {
                        0
                    };
                    self.sbuf.resolve_value(seq, v);
                    (None, issue + 1)
                }
                OpClass::Branch => {
                    let resolve = issue + 1;
                    self.eng.exec_branch(inst, resolve);
                    (None, resolve)
                }
                _ => {
                    let v = exec::compute(inst, vals[0], vals[1], |a| self.eng.arch_mem.read(a));
                    (v, issue + inst.latency())
                }
            };
            if let (Some(dst), Some(v)) = (inst.dst, value) {
                self.slice_values.set(e.trace_idx, v, completes);
                self.eng.rf.rally_write(dst, v, completes, seq);
            }
            rally_end = rally_end.max(completes);
            self.eng.note_completion(completes);
            self.slice.retire_at(slot);
        }
        self.slice.reclaim_head();

        // Drain stores unblocked by this rally.
        self.drain_stores(self.i as InstSeq, rally_frontier);

        if !multithreaded {
            // Single-threaded rally: tail execution stalls behind the rally.
            self.eng.frontier = self.eng.frontier.max(rally_end);
            self.eng.fetch.stall_until(rally_end);
        }
        if !self.eng.cfg.features.chained_store_buffer {
            // SRL-style memory system: the program-order drain blocks the
            // tail (one store per cycle), as in SLTP.
            let drain_cycles = self.drain_scratch.len() as u64;
            self.eng.frontier = self.eng.frontier.max(start + drain_cycles);
        }
    }

    /// Finalises the run.
    pub fn finish(mut self, trace: &TraceCursor<'_>) -> RunResult {
        self.retire_all_stores();
        self.eng.stats.slice_peak = self.eng.stats.slice_peak.max(self.slice.peak() as u64);
        self.eng.stats.chain_hops = self.eng.stats.chain_hops.max(self.sbuf.total_excess_hops());
        self.eng.finish("icfp", trace)
    }
}

/// Checkpoint codec for the machine: every *persistent* field is written in
/// declaration order; the rally/drain scratch buffers are pure per-step
/// staging (always drained before `step` returns) and are rebuilt empty, with
/// their configured capacities, on restore.
impl Serialize for IcfpMachine {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.eng.serialize(out);
        self.slice.serialize(out);
        self.sbuf.serialize(out);
        self.palloc.serialize(out);
        self.rallies.serialize(out);
        self.slice_values.serialize(out);
        self.i.serialize(out);
        self.in_episode.serialize(out);
        self.done.serialize(out);
    }
}

impl Deserialize for IcfpMachine {
    fn deserialize(r: &mut serde::Reader<'_>) -> Result<Self, serde::Error> {
        let eng: Engine = Deserialize::deserialize(r)?;
        let (slice_cap, store_cap) = (
            eng.cfg.slice_buffer_entries,
            eng.cfg.store_buffer_entries,
        );
        Ok(IcfpMachine {
            eng,
            slice: Deserialize::deserialize(r)?,
            sbuf: Deserialize::deserialize(r)?,
            palloc: Deserialize::deserialize(r)?,
            rallies: Deserialize::deserialize(r)?,
            slice_values: Deserialize::deserialize(r)?,
            rally_scratch: Vec::with_capacity(slice_cap),
            drain_scratch: Vec::with_capacity(store_cap),
            i: Deserialize::deserialize(r)?,
            in_episode: Deserialize::deserialize(r)?,
            done: Deserialize::deserialize(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::golden_final_state;
    use crate::config::StoreBufferKind;
    use crate::inorder::InOrderCore;
    use crate::runahead::RunaheadCore;
    use icfp_isa::{DynInst, Op, Reg, Trace, TraceBuilder};

    fn run_icfp(t: &Trace) -> RunResult {
        IcfpCore::new(CoreConfig::paper_default()).run(t)
    }

    fn assert_golden(t: &Trace, r: &RunResult) {
        let (regs, mem) = golden_final_state(t);
        assert_eq!(r.final_regs, regs, "register state diverged");
        assert_eq!(r.final_mem, mem, "memory state diverged");
    }

    fn lone_miss_trace() -> Trace {
        let mut b = TraceBuilder::new("lone-miss");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
        for j in 0..40u64 {
            b.push(DynInst::alu_imm(Op::Mul, Reg::int(4), Reg::int(4), j | 1));
        }
        b.build()
    }

    fn independent_miss_trace(n: usize) -> Trace {
        let mut b = TraceBuilder::new("indep");
        for k in 0..n {
            let base = 0x100000 + (k as u64) * 0x4000;
            b.push(DynInst::load(Reg::int(1), Reg::int(2), base));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
            for j in 0..6u64 {
                b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(5), j));
            }
        }
        b.build()
    }

    fn dependent_chain_trace() -> Trace {
        // A -> B -> C chained misses plus independent work: multiple rallies,
        // each spawning the next.
        let mut b = TraceBuilder::new("chain");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000));
        b.push(DynInst::load(Reg::int(3), Reg::int(1), 0x200000));
        b.push(DynInst::load(Reg::int(4), Reg::int(3), 0x300000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(5), Reg::int(4), 1));
        for j in 0..30u64 {
            b.push(DynInst::alu_imm(Op::Add, Reg::int(6), Reg::int(6), j));
        }
        b.build()
    }

    #[test]
    fn icfp_matches_golden_state_on_a_lone_miss() {
        let t = lone_miss_trace();
        let r = run_icfp(&t);
        assert_golden(&t, &r);
        assert!(r.stats.advance_episodes >= 1);
        assert!(r.stats.rally_passes >= 1);
    }

    #[test]
    fn icfp_commits_independent_work_and_only_rallies_the_slice() {
        let t = lone_miss_trace();
        let r = run_icfp(&t);
        assert!(
            r.stats.sliced_instructions <= 4,
            "only the load and its dependent should slice, got {}",
            r.stats.sliced_instructions
        );
        let base = InOrderCore::new(CoreConfig::paper_default()).run(&t);
        assert!(
            r.stats.cycles < base.stats.cycles,
            "icfp {} should beat in-order {} on a lone miss",
            r.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn icfp_overlaps_independent_misses_and_beats_runahead() {
        let t = independent_miss_trace(10);
        let r = run_icfp(&t);
        assert_golden(&t, &r);
        let base = InOrderCore::new(CoreConfig::paper_default()).run(&t);
        let ra = RunaheadCore::new(CoreConfig::runahead_default()).run(&t);
        assert!(r.stats.cycles < base.stats.cycles);
        assert!(
            r.stats.cycles <= ra.stats.cycles,
            "icfp {} should not lose to runahead {}",
            r.stats.cycles,
            ra.stats.cycles
        );
    }

    #[test]
    fn dependent_miss_chain_matches_golden_and_spawns_rallies() {
        let t = dependent_chain_trace();
        let r = run_icfp(&t);
        assert_golden(&t, &r);
        assert!(
            r.stats.rally_passes >= 3,
            "each chained miss needs its own rally, got {}",
            r.stats.rally_passes
        );
    }

    #[test]
    fn advance_stores_forward_and_drain_in_program_order() {
        let mut b = TraceBuilder::new("adv-stores");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1)); // dependent
        b.push(DynInst::store(Reg::int(3), Reg::int(5), 0x400)); // poisoned data
        b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(4), 9)); // independent
        b.push(DynInst::store(Reg::int(4), Reg::int(5), 0x400)); // younger, clean
        b.push(DynInst::store(Reg::int(4), Reg::int(5), 0x500));
        b.push(DynInst::load(Reg::int(6), Reg::int(5), 0x500)); // forwards
        b.push(DynInst::load(Reg::int(7), Reg::int(5), 0x400)); // youngest store wins
        let t = b.build();
        let r = run_icfp(&t);
        assert_golden(&t, &r);
        assert!(r.stats.store_forwards >= 1);
    }

    #[test]
    fn store_with_poisoned_address_falls_back_to_simple_runahead() {
        let mut b = TraceBuilder::new("poison-addr-store");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000));
        // Store whose *base* register is the missing load's destination.
        b.push(DynInst::store(Reg::int(4), Reg::int(1), 0x600));
        b.push(DynInst::load(Reg::int(5), Reg::int(2), 0x600));
        let t = b.build();
        let r = run_icfp(&t);
        assert_golden(&t, &r);
        assert!(r.stats.simple_runahead_entries >= 1);
    }

    #[test]
    fn all_store_buffer_kinds_match_golden() {
        let t = {
            let mut b = TraceBuilder::new("kinds");
            for k in 0..8u64 {
                b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000 + k * 0x4000));
                b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), k));
                b.push(DynInst::store(Reg::int(3), Reg::int(5), 0x400 + (k % 3) * 64));
                b.push(DynInst::load(Reg::int(6), Reg::int(5), 0x400 + (k % 3) * 64));
            }
            b.build()
        };
        for kind in [
            StoreBufferKind::Chained,
            StoreBufferKind::FullyAssociative,
            StoreBufferKind::IndexedLimited,
        ] {
            let cfg = CoreConfig::paper_default().with_store_buffer_kind(kind);
            let r = IcfpCore::new(cfg).run(&t);
            assert_golden(&t, &r);
        }
    }

    #[test]
    fn figure7_feature_builds_all_match_golden() {
        let t = independent_miss_trace(6);
        for (name, features) in crate::config::IcfpFeatures::build_steps() {
            let cfg = CoreConfig::paper_default().with_features(features);
            let r = IcfpCore::new(cfg).run(&t);
            let (regs, mem) = golden_final_state(&t);
            assert_eq!(r.final_regs, regs, "register state diverged for {name}");
            assert_eq!(r.final_mem, mem, "memory state diverged for {name}");
        }
    }

    #[test]
    fn machine_stepping_equals_whole_run() {
        let t = independent_miss_trace(8);
        let whole = run_icfp(&t);
        let cfg = CoreConfig::paper_default();
        let cur = TraceCursor::from_trace(&t);
        let mut m = IcfpMachine::new(&cfg);
        let mut steps = 0usize;
        while m.step(&cur) {
            steps += 1;
            assert!(steps < 1_000_000, "machine did not terminate");
        }
        let stepped = m.finish(&cur);
        assert_eq!(stepped.stats.cycles, whole.stats.cycles);
        assert_eq!(stepped.final_regs, whole.final_regs);
        assert_eq!(stepped.final_mem, whole.final_mem);
    }

    #[test]
    fn slice_buffer_overflow_stalls_but_stays_correct() {
        // Tiny slice buffer, long dependent chain: the overflow fallback must
        // stall (never drop) and the final state must stay golden.
        let mut cfg = CoreConfig::paper_default();
        cfg.slice_buffer_entries = 8;
        let mut b = TraceBuilder::new("overflow");
        for k in 0..12u64 {
            b.push(DynInst::load(Reg::int(1), Reg::int(1), 0x100000 + k * 0x4000));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(2), Reg::int(1), 1));
            b.push(DynInst::alu(Op::Xor, Reg::int(3), Reg::int(2), Reg::int(3)));
        }
        let t = b.build();
        let r = IcfpCore::new(cfg).run(&t);
        assert_golden(&t, &r);
        assert!(r.stats.simple_runahead_entries > 0);
    }

    #[test]
    fn rally_stats_are_populated() {
        let t = independent_miss_trace(5);
        let r = run_icfp(&t);
        assert!(r.stats.slice_peak > 0);
        assert!(r.stats.advance_instructions > 0);
        assert_eq!(r.core, "icfp");
    }
}
