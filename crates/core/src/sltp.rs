//! SLTP — the Simple Latency Tolerant Processor (Nekkalapu et al.), the
//! closest contemporaneous design to iCFP and its main point of comparison.
//!
//! Like iCFP, SLTP un-blocks the pipeline on a qualifying miss, commits
//! miss-independent instructions and defers the miss forward slice into a
//! slice buffer.  It differs in two ways that the paper's Section 4 and the
//! Figure 7 build isolate:
//!
//! 1. **Memory system.** Advance stores go to a *store redo log* (SRL) and
//!    miss-independent stores also speculatively write the data cache.  Before
//!    a rally those speculatively-written lines must be flushed (hurting
//!    later locality), the SRL must be drained in program order interleaved
//!    with slice re-execution, and tail execution cannot resume until the
//!    drain finishes.
//! 2. **Blocking, single-pass rallies.** SLTP tracks only poison (no
//!    last-writer identity), so it cannot partially update the register file:
//!    the whole slice must re-execute successfully in one pass, and a
//!    dependent miss inside the slice stalls the rally until it returns.

use crate::common::{seed_start, Engine};
use crate::config::CoreConfig;
use crate::slicebuf::{SliceBuffer, SliceEntry};
use crate::storebuf::StoreRedoLog;
use crate::Core;
use icfp_isa::{exec, exec::ArchState, Cycle, OpClass, TraceCursor, Value};
use icfp_pipeline::{PoisonMask, RunResult};
use std::collections::HashMap;

/// The SLTP core.
#[derive(Debug)]
pub struct SltpCore {
    cfg: CoreConfig,
}

impl SltpCore {
    /// Creates an SLTP core.  Use [`CoreConfig::sltp_default`] for the paper's
    /// advance policy (L2 misses only).
    pub fn new(cfg: CoreConfig) -> Self {
        SltpCore { cfg }
    }
}

#[derive(Debug, Clone, Copy)]
struct Episode {
    trigger_return: Cycle,
}

impl Core for SltpCore {
    fn name(&self) -> &'static str {
        "sltp"
    }

    fn run_cursor_from(&mut self, trace: &TraceCursor<'_>, warm: Option<&ArchState>) -> RunResult {
        let cfg = &self.cfg;
        let mut eng = Engine::new(cfg);
        let start = seed_start(&mut eng, warm, trace.len());
        let l1_lat = cfg.mem.l1_hit_latency;
        let policy = cfg.advance_policy;
        let mut slice = SliceBuffer::new(cfg.slice_buffer_entries);
        let mut srl = StoreRedoLog::new(cfg.srl_entries);
        let mut episode: Option<Episode> = None;
        // Word address -> drain completion of the most recent committed store,
        // used for store-to-load forwarding outside advance mode.
        let mut recent_stores: HashMap<u64, Cycle> = HashMap::new();

        let mut i = start;
        while i < trace.len() || episode.is_some() {
            // A pending rally fires once execution time reaches the trigger's
            // return, or when the trace has run out.
            if let Some(ep) = episode {
                if eng.frontier >= ep.trigger_return || i >= trace.len() {
                    let rally_start = ep.trigger_return;
                    let rally_end = run_blocking_rally(
                        &mut eng,
                        trace,
                        &mut slice,
                        &mut srl,
                        rally_start,
                        l1_lat,
                    );
                    episode = None;
                    eng.frontier = eng.frontier.max(rally_end);
                    eng.fetch.stall_until(rally_end);
                    eng.rf.clear_speculative_state();
                    continue;
                }
            }
            if i >= trace.len() {
                break;
            }

            let inst = trace.get(i);
            let inst = &inst;
            let seq = i as u64;
            let in_advance = episode.is_some();

            // Structural stalls: a full slice buffer or SRL freezes advance
            // execution until the rally (SLTP has no other recourse).
            if in_advance && (slice.is_full() || srl.is_full()) {
                let ep = episode.expect("in advance");
                eng.stats.simple_runahead_entries += 1;
                eng.stats.resource_stall_cycles +=
                    ep.trigger_return.saturating_sub(eng.frontier);
                eng.frontier = eng.frontier.max(ep.trigger_return);
                continue;
            }

            let fetch_ready = eng.fetch.next_issue_ready();
            let src_poison = if in_advance {
                eng.src_poison(inst)
            } else {
                PoisonMask::CLEAN
            };
            let earliest = fetch_ready.max(if src_poison.is_poisoned() {
                fetch_ready
            } else {
                eng.src_ready(inst)
            });
            let issue = eng.issue_at(inst.class(), earliest);
            if in_advance {
                eng.stats.advance_instructions += 1;
            }

            // Miss-dependent instructions drain into the slice buffer.
            if src_poison.is_poisoned() {
                push_slice(&mut eng, &mut slice, &mut srl, trace, i, issue);
                i += 1;
                continue;
            }

            match inst.class() {
                OpClass::Load => {
                    let addr = inst.addr.expect("load without address");
                    if !in_advance {
                        eng.stats.demand_loads += 1;
                    }
                    // Idealised memory dependence handling (Table 1): a load
                    // that would forward from a still-poisoned SRL store is
                    // itself miss-dependent.
                    let srl_hit = srl
                        .iter()
                        .rev()
                        .find(|(sseq, a, _, _)| *sseq < seq && (*a & !7) == (addr & !7))
                        .copied();
                    if let Some((_, _, v, p)) = srl_hit {
                        if p.is_poisoned() {
                            if let Some(dst) = inst.dst {
                                eng.rf.poison_write(dst, p, seq);
                            }
                            push_slice(&mut eng, &mut slice, &mut srl, trace, i, issue);
                            i += 1;
                            continue;
                        }
                        eng.stats.store_forwards += 1;
                        if let Some(dst) = inst.dst {
                            eng.rf.write(dst, v, issue + l1_lat, seq);
                        }
                        eng.note_completion(issue + l1_lat);
                        i += 1;
                        continue;
                    }
                    // Forward from a recent committed store still draining.
                    if !in_advance {
                        if let Some(&done) = recent_stores.get(&(addr & !7)) {
                            if done > issue {
                                eng.stats.store_forwards += 1;
                                if let Some(dst) = inst.dst {
                                    eng.rf.write(dst, eng.arch_mem.read(addr), issue + l1_lat, seq);
                                }
                                eng.note_completion(issue + l1_lat);
                                i += 1;
                                continue;
                            }
                        }
                    }
                    let (completes, outcome, _) = eng.demand_load(addr, issue);
                    let value = eng.arch_mem.read(addr);
                    let is_miss = outcome.is_l1_miss() && completes > issue + l1_lat;
                    let is_l2_miss = outcome.is_l2_miss();
                    if !in_advance {
                        if is_miss && policy.triggers_on(is_l2_miss) {
                            // Enter advance mode; the missing load is the first
                            // slice entry.
                            eng.stats.advance_episodes += 1;
                            eng.rf.checkpoint(issue, seq);
                            episode = Some(Episode {
                                trigger_return: completes,
                            });
                            if let Some(dst) = inst.dst {
                                eng.rf.poison_write(dst, PoisonMask::bit(0), seq);
                            }
                            push_slice(&mut eng, &mut slice, &mut srl, trace, i, issue);
                        } else {
                            if let Some(dst) = inst.dst {
                                eng.rf.write(dst, value, completes, seq);
                            }
                            eng.note_completion(completes);
                        }
                    } else {
                        // Secondary miss during advance.
                        let tolerate = if is_l2_miss {
                            true
                        } else {
                            policy.poisons_secondary_dcache()
                        };
                        if is_miss && tolerate {
                            if let Some(dst) = inst.dst {
                                eng.rf.poison_write(dst, PoisonMask::bit(0), seq);
                            }
                            push_slice(&mut eng, &mut slice, &mut srl, trace, i, issue);
                        } else {
                            // Hit, or a data-cache miss SLTP blocks on.
                            if let Some(dst) = inst.dst {
                                eng.rf.write(dst, value, completes, seq);
                            }
                            eng.note_completion(completes);
                        }
                    }
                }
                OpClass::Store => {
                    let addr = inst.addr.expect("store without address");
                    let data = inst.store_data_reg().map(|r| eng.rf.value(r)).unwrap_or(0);
                    if in_advance {
                        // Miss-independent advance store: logged in the SRL and
                        // speculatively written to the data cache.
                        if srl.push(seq, addr, data, PoisonMask::CLEAN).is_err() {
                            eng.stats.simple_runahead_entries += 1;
                        }
                        let _ = eng.demand_store(addr, issue + 1);
                        eng.note_completion(issue + 1);
                    } else {
                        eng.arch_mem.write(addr, data);
                        let done = eng.demand_store(addr, issue + 1);
                        recent_stores.insert(addr & !7, done);
                        eng.note_completion(issue + 1);
                    }
                }
                OpClass::Branch => {
                    let resolve = issue + inst.latency();
                    eng.exec_branch(inst, resolve);
                    eng.note_completion(resolve);
                }
                _ => {
                    let completes = issue + inst.latency();
                    if let (Some(dst), Some(v)) = (inst.dst, eng.compute(inst)) {
                        eng.rf.write(dst, v, completes, seq);
                    }
                    eng.note_completion(completes);
                }
            }
            i += 1;
        }
        eng.finish(self.name(), trace)
    }
}

/// Diverts instruction `i` into the slice buffer, capturing its currently
/// available (non-poisoned) source values, and poisons its destination.
/// Stores additionally log a (data-poisoned) SRL entry so program-order
/// draining still works.
fn push_slice(
    eng: &mut Engine,
    slice: &mut SliceBuffer,
    srl: &mut StoreRedoLog,
    trace: &TraceCursor<'_>,
    i: usize,
    issue: Cycle,
) {
    let inst = trace.get(i);
    let inst = &inst;
    let seq = i as u64;
    let mut poison = eng.src_poison(inst);
    if poison.is_clean() {
        poison = PoisonMask::bit(0);
    }
    eng.stats.sliced_instructions += 1;
    let capture = |r: Option<icfp_isa::Reg>| -> Option<Value> {
        r.and_then(|r| {
            if eng.rf.poison(r).is_clean() {
                Some(eng.rf.value(r))
            } else {
                None
            }
        })
    };
    let entry = SliceEntry {
        trace_idx: i,
        seq_from_ckpt: seq,
        src1_value: capture(inst.src1),
        src2_value: capture(inst.src2),
        // SLTP's blocking rally resolves operands through its own register
        // scratch, not producer pointers.
        src1_producer: usize::MAX,
        src2_producer: usize::MAX,
        store_color: 0,
        poison,
        active: true,
    };
    // The paper's SLTP stalls when the slice buffer fills; the caller checks
    // capacity before processing, so a failure here only happens for the
    // entry that tipped it over — treat it as a stall marker.
    if slice.push(entry).is_err() {
        eng.stats.simple_runahead_entries += 1;
    }
    if let Some(dst) = inst.dst {
        eng.rf.poison_write(dst, poison, seq);
    }
    if inst.is_store() {
        if let Some(addr) = inst.addr {
            let _ = srl.push(seq, addr, 0, poison);
        }
    }
    eng.note_completion(issue + 1);
}

/// Executes SLTP's single blocking rally: flushes speculatively-written lines,
/// re-executes the slice in program order (waiting on any dependent miss),
/// resolves SRL values and finally drains the SRL to memory.  Returns the
/// cycle at which tail execution may resume.
fn run_blocking_rally(
    eng: &mut Engine,
    trace: &TraceCursor<'_>,
    slice: &mut SliceBuffer,
    srl: &mut StoreRedoLog,
    start: Cycle,
    l1_lat: u64,
) -> Cycle {
    eng.stats.rally_passes += 1;
    // Flush speculatively written lines (the SRL/SLTP penalty the paper
    // describes for galgel): they must be re-fetched on next use.
    let spec_lines: Vec<u64> = srl.iter().map(|(_, a, _, _)| *a).collect();
    for a in &spec_lines {
        eng.mem.invalidate_l1(*a);
    }

    // Scratch values produced by earlier slice instructions in this rally.
    let mut scratch: HashMap<usize, (Value, Cycle)> = HashMap::new();
    let mut rally_frontier = start;
    let mut slice_end = start;
    let entries: Vec<SliceEntry> = slice.active_entries().copied().collect();
    for e in &entries {
        eng.stats.rally_instructions += 1;
        let inst = trace.get(e.trace_idx);
        let inst = &inst;
        let seq = e.trace_idx as u64;
        // Operand resolution: captured side inputs or scratch register values.
        let mut ready = rally_frontier;
        let mut vals = [0u64; 2];
        for (k, (src, cap)) in [(inst.src1, e.src1_value), (inst.src2, e.src2_value)]
            .into_iter()
            .enumerate()
        {
            if src.is_none() {
                continue;
            }
            if let Some(v) = cap {
                vals[k] = v;
            } else if let Some(&(v, r)) = scratch.get(&src.unwrap().index()) {
                vals[k] = v;
                ready = ready.max(r);
            }
        }
        let issue = eng.issue_at(inst.class(), ready.max(rally_frontier));
        rally_frontier = issue + 1;

        let (value, completes) = match inst.class() {
            OpClass::Load => {
                let addr = inst.addr.expect("load");
                // Forward from an older SRL store if one matches.
                let srl_hit = srl
                    .iter()
                    .rev()
                    .find(|(sseq, a, _, _)| *sseq < seq && (*a & !7) == (addr & !7))
                    .copied();
                if let Some((_, _, v, p)) = srl_hit {
                    debug_assert!(p.is_clean(), "older slice store must already be resolved");
                    eng.stats.store_forwards += 1;
                    (Some(v), issue + l1_lat)
                } else {
                    // Blocking rally: wait for the access, however long.
                    let (completes, _, _) = eng.demand_load(addr, issue);
                    (Some(eng.arch_mem.read(addr)), completes)
                }
            }
            OpClass::Store => {
                let data_reg = inst.store_data_reg();
                let v = match (data_reg, e.src2_value.or(e.src1_value)) {
                    (Some(r), _) if scratch.contains_key(&r.index()) => scratch[&r.index()].0,
                    (_, Some(cap)) => cap,
                    _ => 0,
                };
                srl.resolve_value(seq, v);
                (None, issue + 1)
            }
            OpClass::Branch => {
                let resolve = issue + 1;
                eng.exec_branch(inst, resolve);
                (None, resolve)
            }
            _ => {
                let v = exec::compute(inst, vals[0], vals[1], |a| eng.arch_mem.read(a));
                (v, issue + inst.latency())
            }
        };
        if let (Some(dst), Some(v)) = (inst.dst, value) {
            scratch.insert(dst.index(), (v, completes));
            eng.rf.rally_write(dst, v, completes, seq);
        }
        // Blocking rally: a missing load stalls the rally until it returns.
        if inst.is_load() {
            rally_frontier = rally_frontier.max(completes);
        }
        slice_end = slice_end.max(completes);
        eng.note_completion(completes);
        slice.retire(e.trace_idx);
    }
    slice.reclaim_head();
    slice.clear();

    // Drain the SRL in program order; tail execution waits for the drain.
    let drained = srl.drain();
    let drain_cycles = drained.len() as u64;
    for (_, addr, value) in drained {
        eng.arch_mem.write(addr, value);
        let _ = eng.demand_store(addr, rally_frontier);
    }
    // Tail execution resumes only after both the slice re-execution and the
    // program-order SRL drain (one store per cycle) have finished.
    let rally_end = slice_end.max(rally_frontier).max(start + drain_cycles);
    eng.note_completion(rally_end);
    rally_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::golden_final_state;
    use crate::config::AdvancePolicy;
    use crate::inorder::InOrderCore;
    use crate::runahead::RunaheadCore;
    use icfp_isa::{DynInst, Op, Reg, Trace, TraceBuilder};

    fn lone_miss_trace() -> Trace {
        // Figure 1a: one L2 miss, one dependent instruction, then independent
        // work.  SLTP/iCFP win here; Runahead does not.
        let mut b = TraceBuilder::new("lone-miss");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
        for j in 0..40u64 {
            b.push(DynInst::alu_imm(Op::Mul, Reg::int(4), Reg::int(4), j | 1));
        }
        b.build()
    }

    #[test]
    fn sltp_matches_golden_state() {
        let t = lone_miss_trace();
        let r = SltpCore::new(CoreConfig::sltp_default()).run(&t);
        let (regs, mem) = golden_final_state(&t);
        assert_eq!(r.final_regs, regs);
        assert_eq!(r.final_mem, mem);
    }

    #[test]
    fn sltp_beats_in_order_and_runahead_on_a_lone_miss() {
        let t = lone_miss_trace();
        let base = InOrderCore::new(CoreConfig::paper_default()).run(&t);
        let ra = RunaheadCore::new(CoreConfig::runahead_default()).run(&t);
        let sltp = SltpCore::new(CoreConfig::sltp_default()).run(&t);
        assert!(
            sltp.stats.cycles < base.stats.cycles,
            "sltp {} vs in-order {}",
            sltp.stats.cycles,
            base.stats.cycles
        );
        assert!(
            sltp.stats.cycles <= ra.stats.cycles,
            "sltp {} should not lose to runahead {} on a lone miss",
            sltp.stats.cycles,
            ra.stats.cycles
        );
    }

    #[test]
    fn sltp_commits_independent_work_and_only_replays_the_slice() {
        let t = lone_miss_trace();
        let sltp = SltpCore::new(CoreConfig::sltp_default()).run(&t);
        // Only the load and its single dependent should be replayed, not the
        // 40 independent multiplies.
        assert!(sltp.stats.rally_instructions <= 4, "rally = {}", sltp.stats.rally_instructions);
        assert!(sltp.stats.sliced_instructions <= 4);
        assert_eq!(sltp.stats.rally_passes, 1);
    }

    #[test]
    fn sltp_with_advance_stores_matches_golden_state() {
        let mut b = TraceBuilder::new("sltp-stores");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1)); // dependent
        b.push(DynInst::store(Reg::int(3), Reg::int(5), 0x400)); // dependent store
        b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(4), 9)); // independent
        b.push(DynInst::store(Reg::int(4), Reg::int(5), 0x400)); // younger independent store, same address
        b.push(DynInst::store(Reg::int(4), Reg::int(5), 0x500));
        b.push(DynInst::load(Reg::int(6), Reg::int(5), 0x500)); // forwards from SRL
        b.push(DynInst::load(Reg::int(7), Reg::int(5), 0x400)); // must see the *younger* store
        let t = b.build();
        let r = SltpCore::new(CoreConfig::sltp_default()).run(&t);
        let (regs, mem) = golden_final_state(&t);
        assert_eq!(r.final_regs, regs, "register state diverged");
        assert_eq!(r.final_mem, mem, "memory state diverged");
        assert!(r.stats.advance_episodes >= 1);
    }

    #[test]
    fn dependent_miss_blocks_the_rally() {
        // A dependent L2 miss inside the slice: SLTP must pay both latencies
        // essentially back to back (blocking rally), so it looks like the
        // in-order pipeline here.
        let mut b = TraceBuilder::new("dep-miss");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000));
        // Address of the second load depends on the first.
        b.push(DynInst::load(Reg::int(3), Reg::int(1), 0x200000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(3), 1));
        for j in 0..30u64 {
            b.push(DynInst::alu_imm(Op::Add, Reg::int(5), Reg::int(5), j));
        }
        let t = b.build();
        let r = SltpCore::new(CoreConfig::sltp_default()).run(&t);
        assert!(
            r.stats.cycles > 800,
            "dependent misses must serialize under SLTP, got {}",
            r.stats.cycles
        );
    }

    #[test]
    fn all_miss_policy_also_advances_on_dcache_misses() {
        let mut cfg = CoreConfig::sltp_default().with_advance_policy(AdvancePolicy::AllMisses);
        cfg.mem = icfp_mem::MemConfig::tiny_for_tests();
        let mut b = TraceBuilder::new("sltp-all");
        for k in 0..12u64 {
            b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x400 * k));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
            for j in 0..10u64 {
                b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(4), j));
            }
        }
        let t = b.build();
        let r = SltpCore::new(cfg).run(&t);
        assert!(r.stats.advance_episodes > 0);
        let (regs, mem) = golden_final_state(&t);
        assert_eq!(r.final_regs, regs);
        assert_eq!(r.final_mem, mem);
    }
}
