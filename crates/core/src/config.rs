//! Configuration of the core models.

use icfp_bpred::PredictorConfig;
use icfp_mem::MemConfig;
use icfp_pipeline::PipelineConfig;
use serde::{Deserialize, Serialize};

/// Which misses a non-blocking design advances under (and, symmetrically,
/// which misses encountered *during* advance execution it tolerates by
/// poisoning rather than stalling).
///
/// These are the knobs swept in Figure 6 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdvancePolicy {
    /// Never advance: behave like the vanilla in-order pipeline.
    Never,
    /// Advance only under L2 misses; data-cache misses (primary or secondary)
    /// stall.  The paper's default for Runahead and SLTP.
    L2Only,
    /// Advance under L2 misses and *primary* data-cache misses; secondary
    /// data-cache misses stall.  The paper's default for Multipass.
    L2AndPrimaryDcache,
    /// Advance under every miss, primary or secondary, at any level.  The
    /// paper's default for iCFP.
    AllMisses,
}

impl AdvancePolicy {
    /// Whether a *primary* miss with the given classification triggers a
    /// transition to advance mode.
    pub fn triggers_on(self, is_l2_miss: bool) -> bool {
        match self {
            AdvancePolicy::Never => false,
            AdvancePolicy::L2Only => is_l2_miss,
            AdvancePolicy::L2AndPrimaryDcache | AdvancePolicy::AllMisses => true,
        }
    }

    /// Whether a *secondary* data-cache miss (L2 hit) encountered during
    /// advance execution is poisoned (non-blocking) rather than waited on.
    pub fn poisons_secondary_dcache(self) -> bool {
        matches!(self, AdvancePolicy::AllMisses)
    }
}

/// Which store-buffer organisation iCFP uses for advance-store forwarding
/// (Figure 8 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StoreBufferKind {
    /// Address-hash chained store buffer (the paper's design).
    Chained,
    /// Idealised fully-associative search (upper bound).
    FullyAssociative,
    /// Indexed buffer with limited forwarding: a chain-table hit whose store
    /// address does not match stalls the pipeline (the iCFP equivalent of
    /// out-of-order CFP's SRL/LCF scheme).
    IndexedLimited,
}

/// Feature flags for the iCFP "build" of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcfpFeatures {
    /// Use the chained store buffer (`true`) or an SLTP-style SRL memory
    /// system (`false`).
    pub chained_store_buffer: bool,
    /// Multiple non-blocking rallies (`true`) vs. a single blocking rally
    /// (`false`).
    pub nonblocking_rallies: bool,
    /// Width of the poison vectors (1 = classic single poison bit, 8 = paper
    /// default).
    pub poison_vector_width: u8,
    /// Interleave rally execution with tail execution (multithreaded rally).
    pub multithreaded_rally: bool,
}

impl IcfpFeatures {
    /// The full iCFP design (rightmost bar of Figure 7).
    pub fn full() -> Self {
        IcfpFeatures {
            chained_store_buffer: true,
            nonblocking_rallies: true,
            poison_vector_width: 8,
            multithreaded_rally: true,
        }
    }

    /// The SLTP-like starting point of the Figure 7 build: SRL memory system,
    /// single blocking rallies, 1-bit poison, no multithreading.
    pub fn sltp_like() -> Self {
        IcfpFeatures {
            chained_store_buffer: false,
            nonblocking_rallies: false,
            poison_vector_width: 1,
            multithreaded_rally: false,
        }
    }

    /// The named steps of the Figure 7 build, in order.
    pub fn build_steps() -> Vec<(&'static str, IcfpFeatures)> {
        let b1 = Self::sltp_like();
        let b2 = IcfpFeatures {
            chained_store_buffer: true,
            ..b1
        };
        let b3 = IcfpFeatures {
            nonblocking_rallies: true,
            ..b2
        };
        let b4 = IcfpFeatures {
            poison_vector_width: 8,
            ..b3
        };
        let b5 = IcfpFeatures {
            multithreaded_rally: true,
            ..b4
        };
        vec![
            ("SRL memory system, single blocking rallies (SLTP)", b1),
            ("+ Address-hash chaining", b2),
            ("+ Multiple non-blocking rallies", b3),
            ("+ 8-bit poison vectors", b4),
            ("+ Multithreaded rallies (iCFP)", b5),
        ]
    }
}

impl Default for IcfpFeatures {
    fn default() -> Self {
        Self::full()
    }
}

/// Complete configuration for any of the core models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Pipeline width/ports/penalties.
    pub pipeline: PipelineConfig,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Which misses trigger and are tolerated during advance execution.
    pub advance_policy: AdvancePolicy,
    /// Slice buffer capacity (iCFP and SLTP; Table 1: 128).
    pub slice_buffer_entries: usize,
    /// iCFP chained store buffer capacity (Table 1: 128).
    pub store_buffer_entries: usize,
    /// iCFP chain-table entries (Table 1: 512; Section 5.2 sweeps this).
    pub chain_table_entries: usize,
    /// Runahead cache entries (Runahead / Multipass; Table 1: 256).
    pub runahead_cache_entries: usize,
    /// Multipass result/instruction buffer entries (Table 1: 128).
    pub result_buffer_entries: usize,
    /// SLTP store-redo-log entries (Table 1: 128).
    pub srl_entries: usize,
    /// Store-buffer organisation used by iCFP (Figure 8 knob).
    pub store_buffer_kind: StoreBufferKind,
    /// iCFP feature flags (Figure 7 knobs).
    pub features: IcfpFeatures,
    /// Extra load latency per excess store-buffer hop when chaining
    /// (the first probe is free because it proceeds in parallel with the
    /// data-cache access, Section 3.2).
    pub chain_hop_penalty: u64,
    /// Signature size in bits for multiprocessor safety (Section 3.3).
    pub signature_bits: usize,
}

impl CoreConfig {
    /// The paper's Table 1 configuration with iCFP defaults (advance under
    /// all misses, full feature set).
    pub fn paper_default() -> Self {
        CoreConfig {
            pipeline: PipelineConfig::paper_default(),
            predictor: PredictorConfig::paper_default(),
            mem: MemConfig::paper_default(),
            advance_policy: AdvancePolicy::AllMisses,
            slice_buffer_entries: 128,
            store_buffer_entries: 128,
            chain_table_entries: 512,
            runahead_cache_entries: 256,
            result_buffer_entries: 128,
            srl_entries: 128,
            store_buffer_kind: StoreBufferKind::Chained,
            features: IcfpFeatures::full(),
            chain_hop_penalty: 1,
            signature_bits: 1024,
        }
    }

    /// The paper's per-design default advance policies (Section 5.1): Runahead
    /// and SLTP advance only under L2 misses, Multipass also under primary
    /// data-cache misses, iCFP under everything.
    pub fn runahead_default() -> Self {
        Self::paper_default().with_advance_policy(AdvancePolicy::L2Only)
    }

    /// Multipass default configuration (advance under L2 and primary D$ misses).
    pub fn multipass_default() -> Self {
        Self::paper_default().with_advance_policy(AdvancePolicy::L2AndPrimaryDcache)
    }

    /// SLTP default configuration (advance under L2 misses only).
    pub fn sltp_default() -> Self {
        Self::paper_default().with_advance_policy(AdvancePolicy::L2Only)
    }

    /// A scaled-down configuration for fast unit tests.
    pub fn tiny_for_tests() -> Self {
        CoreConfig {
            mem: MemConfig::tiny_for_tests(),
            slice_buffer_entries: 16,
            store_buffer_entries: 16,
            chain_table_entries: 16,
            runahead_cache_entries: 16,
            result_buffer_entries: 16,
            srl_entries: 16,
            signature_bits: 64,
            ..Self::paper_default()
        }
    }

    /// Builder-style override of the advance policy.
    pub fn with_advance_policy(mut self, policy: AdvancePolicy) -> Self {
        self.advance_policy = policy;
        self
    }

    /// Builder-style override of the iCFP feature flags.
    pub fn with_features(mut self, features: IcfpFeatures) -> Self {
        self.features = features;
        self
    }

    /// Builder-style override of the store-buffer organisation.
    pub fn with_store_buffer_kind(mut self, kind: StoreBufferKind) -> Self {
        self.store_buffer_kind = kind;
        self
    }

    /// Builder-style override of the L2 hit latency (Figure 6 sweep).
    pub fn with_l2_hit_latency(mut self, latency: u64) -> Self {
        self.mem.l2_hit_latency = latency;
        self
    }

    /// Builder-style override of the chain-table size (Section 5.2 sweep).
    pub fn with_chain_table_entries(mut self, entries: usize) -> Self {
        self.chain_table_entries = entries;
        self
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1_structures() {
        let c = CoreConfig::paper_default();
        assert_eq!(c.slice_buffer_entries, 128);
        assert_eq!(c.store_buffer_entries, 128);
        assert_eq!(c.chain_table_entries, 512);
        assert_eq!(c.runahead_cache_entries, 256);
        assert_eq!(c.srl_entries, 128);
        assert_eq!(c.features.poison_vector_width, 8);
    }

    #[test]
    fn advance_policy_triggering() {
        assert!(!AdvancePolicy::Never.triggers_on(true));
        assert!(AdvancePolicy::L2Only.triggers_on(true));
        assert!(!AdvancePolicy::L2Only.triggers_on(false));
        assert!(AdvancePolicy::L2AndPrimaryDcache.triggers_on(false));
        assert!(AdvancePolicy::AllMisses.triggers_on(false));
        assert!(AdvancePolicy::AllMisses.poisons_secondary_dcache());
        assert!(!AdvancePolicy::L2Only.poisons_secondary_dcache());
    }

    #[test]
    fn per_design_defaults_follow_section_5_1() {
        assert_eq!(CoreConfig::runahead_default().advance_policy, AdvancePolicy::L2Only);
        assert_eq!(
            CoreConfig::multipass_default().advance_policy,
            AdvancePolicy::L2AndPrimaryDcache
        );
        assert_eq!(CoreConfig::sltp_default().advance_policy, AdvancePolicy::L2Only);
        assert_eq!(CoreConfig::paper_default().advance_policy, AdvancePolicy::AllMisses);
    }

    #[test]
    fn figure7_build_steps_are_monotone() {
        let steps = IcfpFeatures::build_steps();
        assert_eq!(steps.len(), 5);
        assert_eq!(steps[0].1, IcfpFeatures::sltp_like());
        assert_eq!(steps[4].1, IcfpFeatures::full());
        assert!(!steps[1].1.nonblocking_rallies);
        assert!(steps[2].1.nonblocking_rallies);
        assert_eq!(steps[3].1.poison_vector_width, 8);
        assert!(steps[4].1.multithreaded_rally);
    }

    #[test]
    fn builder_overrides() {
        let c = CoreConfig::paper_default()
            .with_l2_hit_latency(40)
            .with_chain_table_entries(64)
            .with_store_buffer_kind(StoreBufferKind::FullyAssociative);
        assert_eq!(c.mem.l2_hit_latency, 40);
        assert_eq!(c.chain_table_entries, 64);
        assert_eq!(c.store_buffer_kind, StoreBufferKind::FullyAssociative);
    }
}
