//! The slice buffer: a FIFO of deferred miss-dependent instructions together
//! with their miss-independent side inputs (paper Section 3.1).
//!
//! iCFP does not compact the buffer: rally passes mark entries un-poisoned
//! (retired) in place, and successive passes simply skip retired entries;
//! capacity is reclaimed incrementally from the head (Section 3.4, "Slice
//! buffer management").  That behaviour is reproduced here because it is what
//! bounds slice-buffer occupancy and triggers the simple-runahead fallback.

use icfp_isa::{InstSeq, Value};
use icfp_pipeline::PoisonMask;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A deferred (sliced-out) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceEntry {
    /// Index of the instruction in the trace.
    pub trace_idx: usize,
    /// Sequence number relative to the active checkpoint (the paper's
    /// dependence-ordering stamp).
    pub seq_from_ckpt: InstSeq,
    /// Captured value of the first source operand, if it was available
    /// (non-poisoned) when the instruction was sliced out.
    pub src1_value: Option<Value>,
    /// Captured value of the second source operand, if it was available.
    pub src2_value: Option<Value>,
    /// Store colour: SSN of the youngest older store at slice time, used by
    /// rallying loads to ignore younger stores when forwarding.
    pub store_color: u64,
    /// Current poison mask (which outstanding misses this entry waits on).
    pub poison: PoisonMask,
    /// Whether the entry still needs to be executed.  Retired entries stay in
    /// place and are skipped by later passes.
    pub active: bool,
}

/// Error returned when the slice buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceBufferFull;

impl std::fmt::Display for SliceBufferFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slice buffer is full")
    }
}

impl std::error::Error for SliceBufferFull {}

/// The slice buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceBuffer {
    entries: VecDeque<SliceEntry>,
    capacity: usize,
    /// Number of entries with `active == true` (kept in sync by
    /// push/retire/clear so occupancy queries are O(1) on the hot path).
    active: usize,
    /// Peak occupancy over the run (for diagnostics).
    peak: usize,
    /// Total entries ever inserted.
    inserted: u64,
}

impl SliceBuffer {
    /// Creates a slice buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "slice buffer capacity must be positive");
        SliceBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            active: 0,
            peak: 0,
            inserted: 0,
        }
    }

    /// Number of occupied slots (active or not yet reclaimed).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries still awaiting execution.  O(1).
    pub fn active_len(&self) -> usize {
        self.active
    }

    /// True if there is no active entry left.  O(1).
    pub fn no_active(&self) -> bool {
        self.active == 0
    }

    /// True if the buffer cannot accept another entry.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Peak occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total number of entries ever inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Appends an entry at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`SliceBufferFull`] if no slot is free (after reclaiming
    /// retired entries from the head).
    pub fn push(&mut self, entry: SliceEntry) -> Result<(), SliceBufferFull> {
        if self.is_full() {
            self.reclaim_head();
        }
        if self.is_full() {
            return Err(SliceBufferFull);
        }
        self.active += usize::from(entry.active);
        self.entries.push_back(entry);
        self.inserted += 1;
        self.peak = self.peak.max(self.entries.len());
        Ok(())
    }

    /// Reclaims retired entries from the head (the only form of compaction
    /// the paper's design performs).
    pub fn reclaim_head(&mut self) {
        while matches!(self.entries.front(), Some(e) if !e.active) {
            self.entries.pop_front();
        }
    }

    /// Iterates over the *active* entries in program order.
    pub fn active_entries(&self) -> impl Iterator<Item = &SliceEntry> {
        self.entries.iter().filter(|e| e.active)
    }

    /// Active entries whose poison mask intersects `returning` — the entries a
    /// rally pass for that returning miss must process (Section 3.4).
    ///
    /// Allocates a fresh `Vec` per call; the simulation hot path uses
    /// [`SliceBuffer::entries_for_rally_into`] (scratch-buffer reuse) or
    /// [`SliceBuffer::rally_iter`] instead.
    pub fn entries_for_rally(&self, returning: PoisonMask) -> Vec<SliceEntry> {
        let mut out = Vec::new();
        self.entries_for_rally_into(returning, &mut out);
        out
    }

    /// Zero-allocation form of [`SliceBuffer::entries_for_rally`]: appends the
    /// selected entries to `out` (cleared first), reusing its capacity.
    pub fn entries_for_rally_into(&self, returning: PoisonMask, out: &mut Vec<SliceEntry>) {
        out.clear();
        out.extend(self.rally_iter(returning));
    }

    /// Borrowing iterator over the entries a rally for `returning` must
    /// process, in program order.
    pub fn rally_iter(&self, returning: PoisonMask) -> impl Iterator<Item = SliceEntry> + '_ {
        self.entries
            .iter()
            .filter(move |e| e.active && e.poison.intersects(returning))
            .copied()
    }

    /// Deque position of the entry for `trace_idx`.  Entries are appended in
    /// trace order and never reordered, so the buffer is sorted by
    /// `trace_idx` and lookups binary-search in O(log n).
    fn position_of(&self, trace_idx: usize) -> Option<usize> {
        let n = self.entries.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.entries[mid].trace_idx < trace_idx {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < n && self.entries[lo].trace_idx == trace_idx).then_some(lo)
    }

    /// The current poison mask of the *active* entry for `trace_idx`, if any.
    pub fn entry_poison(&self, trace_idx: usize) -> Option<PoisonMask> {
        self.position_of(trace_idx)
            .map(|p| &self.entries[p])
            .filter(|e| e.active)
            .map(|e| e.poison)
    }

    /// Marks the entry for `trace_idx` as retired (executed successfully).
    pub fn retire(&mut self, trace_idx: usize) -> bool {
        if let Some(p) = self.position_of(trace_idx) {
            let e = &mut self.entries[p];
            if e.active {
                e.active = false;
                self.active -= 1;
                return true;
            }
        }
        false
    }

    /// Re-poisons the entry for `trace_idx` in place (it depends on a miss
    /// that is still outstanding); the entry stays active for a later pass.
    pub fn repoison(&mut self, trace_idx: usize, poison: PoisonMask) -> bool {
        if let Some(p) = self.position_of(trace_idx) {
            let e = &mut self.entries[p];
            if e.active {
                e.poison = poison;
                return true;
            }
        }
        false
    }

    /// Clears the buffer entirely (squash).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.active = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(idx: usize, poison: PoisonMask) -> SliceEntry {
        SliceEntry {
            trace_idx: idx,
            seq_from_ckpt: idx as InstSeq,
            src1_value: Some(1),
            src2_value: None,
            store_color: 0,
            poison,
            active: true,
        }
    }

    #[test]
    fn push_and_rally_selection_by_poison_bit() {
        let mut sb = SliceBuffer::new(8);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(1))).unwrap();
        sb.push(entry(2, PoisonMask::bit(0) | PoisonMask::bit(1))).unwrap();
        let pass0 = sb.entries_for_rally(PoisonMask::bit(0));
        assert_eq!(pass0.iter().map(|e| e.trace_idx).collect::<Vec<_>>(), vec![0, 2]);
        let pass1 = sb.entries_for_rally(PoisonMask::bit(1));
        assert_eq!(pass1.iter().map(|e| e.trace_idx).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn retire_marks_in_place_and_skips_later() {
        let mut sb = SliceBuffer::new(8);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(0))).unwrap();
        assert!(sb.retire(0));
        assert!(!sb.retire(0), "already retired");
        assert_eq!(sb.active_len(), 1);
        assert_eq!(sb.len(), 2, "entries are not compacted");
        let pass = sb.entries_for_rally(PoisonMask::bit(0));
        assert_eq!(pass.len(), 1);
        assert_eq!(pass[0].trace_idx, 1);
    }

    #[test]
    fn head_reclamation_frees_capacity() {
        let mut sb = SliceBuffer::new(2);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(0))).unwrap();
        assert!(sb.is_full());
        sb.retire(0);
        // Push succeeds because the retired head is reclaimed.
        sb.push(entry(2, PoisonMask::bit(0))).unwrap();
        assert_eq!(sb.len(), 2);
        // But a retired entry in the middle cannot be reclaimed.
        sb.retire(2);
        assert!(sb.push(entry(3, PoisonMask::bit(0))).is_err());
    }

    #[test]
    fn rally_selection_apis_are_equivalent() {
        // The scratch-buffer and iterator forms must select exactly what the
        // allocating form does, and the scratch must reuse its capacity.
        let mut sb = SliceBuffer::new(16);
        for k in 0..12usize {
            sb.push(entry(k, PoisonMask::bit((k % 3) as u8))).unwrap();
        }
        sb.retire(3);
        sb.retire(6);
        let mut scratch = Vec::new();
        for bit in 0..3u8 {
            let select = PoisonMask::bit(bit);
            let allocated = sb.entries_for_rally(select);
            sb.entries_for_rally_into(select, &mut scratch);
            assert_eq!(allocated, scratch);
            let iterated: Vec<SliceEntry> = sb.rally_iter(select).collect();
            assert_eq!(allocated, iterated);
        }
        let warmed = scratch.capacity();
        for _ in 0..50 {
            sb.entries_for_rally_into(PoisonMask::bit(0), &mut scratch);
            assert_eq!(scratch.capacity(), warmed, "scratch must not reallocate");
        }
    }

    #[test]
    fn repoison_keeps_entry_active() {
        let mut sb = SliceBuffer::new(4);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        assert!(sb.repoison(0, PoisonMask::bit(3)));
        let pass = sb.entries_for_rally(PoisonMask::bit(3));
        assert_eq!(pass.len(), 1);
        assert!(sb.entries_for_rally(PoisonMask::bit(0)).is_empty());
    }

    #[test]
    fn peak_and_inserted_counters() {
        let mut sb = SliceBuffer::new(4);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(0))).unwrap();
        sb.retire(0);
        sb.reclaim_head();
        sb.push(entry(2, PoisonMask::bit(0))).unwrap();
        assert_eq!(sb.peak(), 2);
        assert_eq!(sb.inserted(), 3);
    }

    #[test]
    fn no_active_and_clear() {
        let mut sb = SliceBuffer::new(4);
        assert!(sb.no_active());
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        assert!(!sb.no_active());
        sb.clear();
        assert!(sb.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SliceBuffer::new(0);
    }
}
