//! The slice buffer: a FIFO of deferred miss-dependent instructions together
//! with their miss-independent side inputs (paper Section 3.1).
//!
//! iCFP does not compact the buffer: rally passes mark entries un-poisoned
//! (retired) in place, and successive passes simply skip retired entries;
//! capacity is reclaimed incrementally from the head (Section 3.4, "Slice
//! buffer management").  That behaviour is reproduced here because it is what
//! bounds slice-buffer occupancy and triggers the simple-runahead fallback.

use icfp_isa::{InstSeq, Value};
use icfp_pipeline::PoisonMask;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A deferred (sliced-out) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceEntry {
    /// Index of the instruction in the trace.
    pub trace_idx: usize,
    /// Sequence number relative to the active checkpoint (the paper's
    /// dependence-ordering stamp).
    pub seq_from_ckpt: InstSeq,
    /// Captured value of the first source operand, if it was available
    /// (non-poisoned) when the instruction was sliced out.
    pub src1_value: Option<Value>,
    /// Captured value of the second source operand, if it was available.
    pub src2_value: Option<Value>,
    /// Store colour: SSN of the youngest older store at slice time, used by
    /// rallying loads to ignore younger stores when forwarding.
    pub store_color: u64,
    /// Current poison mask (which outstanding misses this entry waits on).
    pub poison: PoisonMask,
    /// Whether the entry still needs to be executed.  Retired entries stay in
    /// place and are skipped by later passes.
    pub active: bool,
}

/// Error returned when the slice buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceBufferFull;

impl std::fmt::Display for SliceBufferFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slice buffer is full")
    }
}

impl std::error::Error for SliceBufferFull {}

/// The slice buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceBuffer {
    entries: VecDeque<SliceEntry>,
    capacity: usize,
    /// Peak occupancy over the run (for diagnostics).
    peak: usize,
    /// Total entries ever inserted.
    inserted: u64,
}

impl SliceBuffer {
    /// Creates a slice buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "slice buffer capacity must be positive");
        SliceBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            peak: 0,
            inserted: 0,
        }
    }

    /// Number of occupied slots (active or not yet reclaimed).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries still awaiting execution.
    pub fn active_len(&self) -> usize {
        self.entries.iter().filter(|e| e.active).count()
    }

    /// True if there is no active entry left.
    pub fn no_active(&self) -> bool {
        self.entries.iter().all(|e| !e.active)
    }

    /// True if the buffer cannot accept another entry.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Peak occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total number of entries ever inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Appends an entry at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`SliceBufferFull`] if no slot is free (after reclaiming
    /// retired entries from the head).
    pub fn push(&mut self, entry: SliceEntry) -> Result<(), SliceBufferFull> {
        if self.is_full() {
            self.reclaim_head();
        }
        if self.is_full() {
            return Err(SliceBufferFull);
        }
        self.entries.push_back(entry);
        self.inserted += 1;
        self.peak = self.peak.max(self.entries.len());
        Ok(())
    }

    /// Reclaims retired entries from the head (the only form of compaction
    /// the paper's design performs).
    pub fn reclaim_head(&mut self) {
        while matches!(self.entries.front(), Some(e) if !e.active) {
            self.entries.pop_front();
        }
    }

    /// Iterates over the *active* entries in program order.
    pub fn active_entries(&self) -> impl Iterator<Item = &SliceEntry> {
        self.entries.iter().filter(|e| e.active)
    }

    /// Active entries whose poison mask intersects `returning` — the entries a
    /// rally pass for that returning miss must process (Section 3.4).
    pub fn entries_for_rally(&self, returning: PoisonMask) -> Vec<SliceEntry> {
        self.entries
            .iter()
            .filter(|e| e.active && e.poison.intersects(returning))
            .copied()
            .collect()
    }

    /// Marks the entry for `trace_idx` as retired (executed successfully).
    pub fn retire(&mut self, trace_idx: usize) -> bool {
        for e in self.entries.iter_mut() {
            if e.trace_idx == trace_idx && e.active {
                e.active = false;
                return true;
            }
        }
        false
    }

    /// Re-poisons the entry for `trace_idx` in place (it depends on a miss
    /// that is still outstanding); the entry stays active for a later pass.
    pub fn repoison(&mut self, trace_idx: usize, poison: PoisonMask) -> bool {
        for e in self.entries.iter_mut() {
            if e.trace_idx == trace_idx && e.active {
                e.poison = poison;
                return true;
            }
        }
        false
    }

    /// Updates a captured source value of an active entry (used when a rally
    /// resolves a value that a younger slice entry captured as "pending from
    /// slice").
    pub fn entry_mut(&mut self, trace_idx: usize) -> Option<&mut SliceEntry> {
        self.entries.iter_mut().find(|e| e.trace_idx == trace_idx)
    }

    /// Clears the buffer entirely (squash).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(idx: usize, poison: PoisonMask) -> SliceEntry {
        SliceEntry {
            trace_idx: idx,
            seq_from_ckpt: idx as InstSeq,
            src1_value: Some(1),
            src2_value: None,
            store_color: 0,
            poison,
            active: true,
        }
    }

    #[test]
    fn push_and_rally_selection_by_poison_bit() {
        let mut sb = SliceBuffer::new(8);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(1))).unwrap();
        sb.push(entry(2, PoisonMask::bit(0) | PoisonMask::bit(1))).unwrap();
        let pass0 = sb.entries_for_rally(PoisonMask::bit(0));
        assert_eq!(pass0.iter().map(|e| e.trace_idx).collect::<Vec<_>>(), vec![0, 2]);
        let pass1 = sb.entries_for_rally(PoisonMask::bit(1));
        assert_eq!(pass1.iter().map(|e| e.trace_idx).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn retire_marks_in_place_and_skips_later() {
        let mut sb = SliceBuffer::new(8);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(0))).unwrap();
        assert!(sb.retire(0));
        assert!(!sb.retire(0), "already retired");
        assert_eq!(sb.active_len(), 1);
        assert_eq!(sb.len(), 2, "entries are not compacted");
        let pass = sb.entries_for_rally(PoisonMask::bit(0));
        assert_eq!(pass.len(), 1);
        assert_eq!(pass[0].trace_idx, 1);
    }

    #[test]
    fn head_reclamation_frees_capacity() {
        let mut sb = SliceBuffer::new(2);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(0))).unwrap();
        assert!(sb.is_full());
        sb.retire(0);
        // Push succeeds because the retired head is reclaimed.
        sb.push(entry(2, PoisonMask::bit(0))).unwrap();
        assert_eq!(sb.len(), 2);
        // But a retired entry in the middle cannot be reclaimed.
        sb.retire(2);
        assert!(sb.push(entry(3, PoisonMask::bit(0))).is_err());
    }

    #[test]
    fn repoison_keeps_entry_active() {
        let mut sb = SliceBuffer::new(4);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        assert!(sb.repoison(0, PoisonMask::bit(3)));
        let pass = sb.entries_for_rally(PoisonMask::bit(3));
        assert_eq!(pass.len(), 1);
        assert!(sb.entries_for_rally(PoisonMask::bit(0)).is_empty());
    }

    #[test]
    fn peak_and_inserted_counters() {
        let mut sb = SliceBuffer::new(4);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(0))).unwrap();
        sb.retire(0);
        sb.reclaim_head();
        sb.push(entry(2, PoisonMask::bit(0))).unwrap();
        assert_eq!(sb.peak(), 2);
        assert_eq!(sb.inserted(), 3);
    }

    #[test]
    fn no_active_and_clear() {
        let mut sb = SliceBuffer::new(4);
        assert!(sb.no_active());
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        assert!(!sb.no_active());
        sb.clear();
        assert!(sb.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SliceBuffer::new(0);
    }
}
