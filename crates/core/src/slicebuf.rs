//! The slice buffer: a FIFO of deferred miss-dependent instructions together
//! with their miss-independent side inputs (paper Section 3.1).
//!
//! iCFP does not compact the buffer: rally passes mark entries un-poisoned
//! (retired) in place, and successive passes simply skip retired entries;
//! capacity is reclaimed incrementally from the head (Section 3.4, "Slice
//! buffer management").  That behaviour is reproduced here because it is what
//! bounds slice-buffer occupancy and triggers the simple-runahead fallback.
//!
//! Storage is a fixed-capacity ring with a packed side index: every slot's
//! poison mask is mirrored into a [`PoisonVec`] *plane* (four 16-bit lanes per
//! `u64` word, lanes of retired slots cleared), so rally selection — "which
//! active entries depend on this returning miss" — scans `capacity / 4` words
//! and only touches the entries that actually match, instead of testing every
//! entry's mask in a bit loop.

use icfp_isa::{InstSeq, Value};
use icfp_pipeline::{lane_range_mask, PoisonMask, PoisonVec, POISON_LANES_PER_WORD};
use serde::{Deserialize, Serialize};

/// A deferred (sliced-out) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceEntry {
    /// Index of the instruction in the trace.
    pub trace_idx: usize,
    /// Sequence number relative to the active checkpoint (the paper's
    /// dependence-ordering stamp).
    pub seq_from_ckpt: InstSeq,
    /// Captured value of the first source operand, if it was available
    /// (non-poisoned) when the instruction was sliced out.
    pub src1_value: Option<Value>,
    /// Captured value of the second source operand, if it was available.
    pub src2_value: Option<Value>,
    /// Trace index of the sliced instruction producing the first source
    /// operand (`usize::MAX` = captured or absent) — the paper's slice-buffer
    /// dependence pointer, carried in the entry so rallies resolve operands
    /// without a side table.
    pub src1_producer: usize,
    /// Producer of the second source operand (`usize::MAX` = captured/absent).
    pub src2_producer: usize,
    /// Store colour: SSN of the youngest older store at slice time, used by
    /// rallying loads to ignore younger stores when forwarding.
    pub store_color: u64,
    /// Current poison mask (which outstanding misses this entry waits on).
    pub poison: PoisonMask,
    /// Whether the entry still needs to be executed.  Retired entries stay in
    /// place and are skipped by later passes.
    pub active: bool,
}

impl SliceEntry {
    /// Placeholder for an unoccupied ring slot.
    fn vacant() -> Self {
        SliceEntry {
            trace_idx: usize::MAX,
            seq_from_ckpt: 0,
            src1_value: None,
            src2_value: None,
            src1_producer: usize::MAX,
            src2_producer: usize::MAX,
            store_color: 0,
            poison: PoisonMask::CLEAN,
            active: false,
        }
    }
}

/// Error returned when the slice buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceBufferFull;

impl std::fmt::Display for SliceBufferFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slice buffer is full")
    }
}

impl std::error::Error for SliceBufferFull {}

/// The slice buffer.
///
/// A fixed ring of `capacity` slots (`head` is the physical index of the
/// oldest occupied slot) plus a packed poison plane mirroring the *active*
/// slots' masks, kept in sync by push/retire/repoison/clear so that rally
/// selection runs at word granularity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceBuffer {
    slots: Vec<SliceEntry>,
    /// Packed per-slot poison; lanes of retired or vacant slots are clean.
    plane: PoisonVec,
    head: usize,
    len: usize,
    capacity: usize,
    /// Number of entries with `active == true` (kept in sync by
    /// push/retire/clear so occupancy queries are O(1) on the hot path).
    active: usize,
    /// Peak occupancy over the run (for diagnostics).
    peak: usize,
    /// Total entries ever inserted.
    inserted: u64,
}

impl SliceBuffer {
    /// Creates a slice buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "slice buffer capacity must be positive");
        SliceBuffer {
            slots: vec![SliceEntry::vacant(); capacity],
            plane: PoisonVec::new(capacity),
            head: 0,
            len: 0,
            capacity,
            active: 0,
            peak: 0,
            inserted: 0,
        }
    }

    /// Physical slot of the `logical`-th oldest entry.
    #[inline]
    fn phys(&self, logical: usize) -> usize {
        let p = self.head + logical;
        if p >= self.capacity {
            p - self.capacity
        } else {
            p
        }
    }

    /// Number of occupied slots (active or not yet reclaimed).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of entries still awaiting execution.  O(1).
    pub fn active_len(&self) -> usize {
        self.active
    }

    /// True if there is no active entry left.  O(1).
    pub fn no_active(&self) -> bool {
        self.active == 0
    }

    /// True if the buffer cannot accept another entry.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Peak occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total number of entries ever inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Appends an entry at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`SliceBufferFull`] if no slot is free (after reclaiming
    /// retired entries from the head).
    pub fn push(&mut self, entry: SliceEntry) -> Result<(), SliceBufferFull> {
        if self.is_full() {
            self.reclaim_head();
        }
        if self.is_full() {
            return Err(SliceBufferFull);
        }
        let slot = self.phys(self.len);
        self.active += usize::from(entry.active);
        self.plane.set(
            slot,
            if entry.active { entry.poison } else { PoisonMask::CLEAN },
        );
        self.slots[slot] = entry;
        self.len += 1;
        self.inserted += 1;
        self.peak = self.peak.max(self.len);
        Ok(())
    }

    /// Reclaims retired entries from the head (the only form of compaction
    /// the paper's design performs).
    pub fn reclaim_head(&mut self) {
        while self.len > 0 && !self.slots[self.head].active {
            // Retire already cleared the plane lane; vacate the slot.
            self.slots[self.head] = SliceEntry::vacant();
            self.head = if self.head + 1 == self.capacity {
                0
            } else {
                self.head + 1
            };
            self.len -= 1;
        }
        if self.len == 0 {
            self.head = 0;
        }
    }

    /// Iterates over the *active* entries in program order.
    pub fn active_entries(&self) -> impl Iterator<Item = &SliceEntry> {
        (0..self.len)
            .map(|l| &self.slots[self.phys(l)])
            .filter(|e| e.active)
    }

    /// Active entries whose poison mask intersects `returning` — the entries a
    /// rally pass for that returning miss must process (Section 3.4).
    ///
    /// Allocates a fresh `Vec` per call; the simulation hot path uses
    /// [`SliceBuffer::entries_for_rally_into`] (scratch-buffer reuse, word
    /// scan) or [`SliceBuffer::rally_iter`] instead.
    pub fn entries_for_rally(&self, returning: PoisonMask) -> Vec<SliceEntry> {
        let mut out = Vec::new();
        self.entries_for_rally_into(returning, &mut out);
        out
    }

    /// Zero-allocation form of [`SliceBuffer::entries_for_rally`]: appends the
    /// selected entries to `out` (cleared first), reusing its capacity.
    ///
    /// This is the word-level hot path: the packed poison plane is scanned
    /// four entries per `u64` word (`returning` broadcast into every lane), so
    /// words with no intersecting lane are skipped with a single compare.
    pub fn entries_for_rally_into(&self, returning: PoisonMask, out: &mut Vec<SliceEntry>) {
        out.clear();
        self.scan_ring(returning, &mut |_, e| out.push(*e));
    }

    /// Slot-carrying form of [`SliceBuffer::entries_for_rally_into`]: appends
    /// `(physical_slot, entry)` pairs to `out` (cleared first).  The slot lets
    /// the rally pass retire or re-poison the entry it is processing in O(1)
    /// ([`SliceBuffer::retire_at`] / [`SliceBuffer::repoison_at`]) instead of
    /// re-finding it by trace index — valid as long as no push or head
    /// reclamation happens between selection and use (entries never move
    /// otherwise).
    pub fn rally_select_into(&self, returning: PoisonMask, out: &mut Vec<(u32, SliceEntry)>) {
        out.clear();
        self.scan_ring(returning, &mut |slot, e| out.push((slot as u32, *e)));
    }

    /// Scans the ring in program order for active entries whose poison
    /// intersects `returning`, feeding `(physical_slot, entry)` to `sink`.
    #[inline]
    fn scan_ring(&self, returning: PoisonMask, sink: &mut impl FnMut(usize, &SliceEntry)) {
        if self.len == 0 || returning.is_clean() {
            return;
        }
        let tail = self.head + self.len;
        // The ring occupies [head, min(tail, capacity)) and, when it wraps,
        // [0, tail - capacity).  Scan both physical segments in order: within
        // a segment, ascending slot order is program order, and the first
        // segment holds the logically older entries.
        self.scan_segment(self.head, tail.min(self.capacity), returning, sink);
        if tail > self.capacity {
            self.scan_segment(0, tail - self.capacity, returning, sink);
        }
    }

    /// Word-scans physical slots `[lo, hi)` for lanes intersecting
    /// `returning`, appending the matching entries in slot order.  The
    /// broadcast comparand is hoisted and only the two edge words pay for
    /// lane masking; zero words (no intersecting entry among four) are
    /// skipped with a single compare.
    fn scan_segment(
        &self,
        lo: usize,
        hi: usize,
        returning: PoisonMask,
        sink: &mut impl FnMut(usize, &SliceEntry),
    ) {
        if lo >= hi {
            return;
        }
        let comparand = returning.broadcast();
        let first_word = lo / POISON_LANES_PER_WORD;
        let last_word = (hi - 1) / POISON_LANES_PER_WORD;
        let words = &self.plane.words()[first_word..=last_word];
        for (k, &word) in words.iter().enumerate() {
            let mut hits = word & comparand;
            if hits == 0 {
                continue;
            }
            let w = first_word + k;
            let base = w * POISON_LANES_PER_WORD;
            if w == first_word && lo > base {
                hits &= lane_range_mask(lo - base, POISON_LANES_PER_WORD);
            }
            if w == last_word && hi < base + POISON_LANES_PER_WORD {
                hits &= lane_range_mask(0, hi - base);
            }
            // Collapse each non-zero 16-bit lane to its MSB (SWAR: adding
            // 0x7FFF to the low 15 bits carries into bit 15 iff any is set;
            // OR-ing the original covers lanes with only bit 15).  The
            // extraction loop is then one ctz + one clear per matching entry.
            const LANE_LOW: u64 = 0x7FFF_7FFF_7FFF_7FFF;
            const LANE_MSB: u64 = 0x8000_8000_8000_8000;
            let mut lanes = ((hits & LANE_LOW).wrapping_add(LANE_LOW) | hits) & LANE_MSB;
            while lanes != 0 {
                let lane = lanes.trailing_zeros() as usize >> 4;
                lanes &= lanes - 1;
                sink(base + lane, &self.slots[base + lane]);
            }
        }
    }

    /// Borrowing iterator over the entries a rally for `returning` must
    /// process, in program order.  This is the reference (per-entry) path the
    /// word scan is checked against; prefer
    /// [`SliceBuffer::entries_for_rally_into`] on hot paths.
    pub fn rally_iter(&self, returning: PoisonMask) -> impl Iterator<Item = SliceEntry> + '_ {
        (0..self.len)
            .map(|l| &self.slots[self.phys(l)])
            .filter(move |e| e.active && e.poison.intersects(returning))
            .copied()
    }

    /// Logical position of the entry for `trace_idx`.  Entries are appended in
    /// trace order and never reordered, so the buffer is sorted by
    /// `trace_idx` and lookups binary-search in O(log n).
    fn position_of(&self, trace_idx: usize) -> Option<usize> {
        let n = self.len;
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.slots[self.phys(mid)].trace_idx < trace_idx {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < n && self.slots[self.phys(lo)].trace_idx == trace_idx).then_some(lo)
    }

    /// The current poison mask of the *active* entry for `trace_idx`, if any.
    pub fn entry_poison(&self, trace_idx: usize) -> Option<PoisonMask> {
        self.position_of(trace_idx)
            .map(|l| &self.slots[self.phys(l)])
            .filter(|e| e.active)
            .map(|e| e.poison)
    }

    /// Marks the entry for `trace_idx` as retired (executed successfully).
    pub fn retire(&mut self, trace_idx: usize) -> bool {
        if let Some(l) = self.position_of(trace_idx) {
            let slot = self.phys(l);
            let e = &mut self.slots[slot];
            if e.active {
                e.active = false;
                self.active -= 1;
                self.plane.clear_lane(slot);
                return true;
            }
        }
        false
    }

    /// O(1) form of [`SliceBuffer::retire`] for a physical slot obtained from
    /// [`SliceBuffer::rally_select_into`].
    pub fn retire_at(&mut self, slot: usize) -> bool {
        let e = &mut self.slots[slot];
        if e.active {
            e.active = false;
            self.active -= 1;
            self.plane.clear_lane(slot);
            return true;
        }
        false
    }

    /// O(1) form of [`SliceBuffer::repoison`] for a physical slot obtained
    /// from [`SliceBuffer::rally_select_into`].
    pub fn repoison_at(&mut self, slot: usize, poison: PoisonMask) -> bool {
        let e = &mut self.slots[slot];
        if e.active {
            e.poison = poison;
            self.plane.set(slot, poison);
            return true;
        }
        false
    }

    /// Re-poisons the entry for `trace_idx` in place (it depends on a miss
    /// that is still outstanding); the entry stays active for a later pass.
    pub fn repoison(&mut self, trace_idx: usize, poison: PoisonMask) -> bool {
        if let Some(l) = self.position_of(trace_idx) {
            let slot = self.phys(l);
            let e = &mut self.slots[slot];
            if e.active {
                e.poison = poison;
                self.plane.set(slot, poison);
                return true;
            }
        }
        false
    }

    /// Clears the buffer entirely (squash).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = SliceEntry::vacant();
        }
        self.plane.clear_all();
        self.head = 0;
        self.len = 0;
        self.active = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(idx: usize, poison: PoisonMask) -> SliceEntry {
        SliceEntry {
            trace_idx: idx,
            seq_from_ckpt: idx as InstSeq,
            src1_value: Some(1),
            src2_value: None,
            src1_producer: usize::MAX,
            src2_producer: usize::MAX,
            store_color: 0,
            poison,
            active: true,
        }
    }

    #[test]
    fn push_and_rally_selection_by_poison_bit() {
        let mut sb = SliceBuffer::new(8);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(1))).unwrap();
        sb.push(entry(2, PoisonMask::bit(0) | PoisonMask::bit(1))).unwrap();
        let pass0 = sb.entries_for_rally(PoisonMask::bit(0));
        assert_eq!(pass0.iter().map(|e| e.trace_idx).collect::<Vec<_>>(), vec![0, 2]);
        let pass1 = sb.entries_for_rally(PoisonMask::bit(1));
        assert_eq!(pass1.iter().map(|e| e.trace_idx).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn retire_marks_in_place_and_skips_later() {
        let mut sb = SliceBuffer::new(8);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(0))).unwrap();
        assert!(sb.retire(0));
        assert!(!sb.retire(0), "already retired");
        assert_eq!(sb.active_len(), 1);
        assert_eq!(sb.len(), 2, "entries are not compacted");
        let pass = sb.entries_for_rally(PoisonMask::bit(0));
        assert_eq!(pass.len(), 1);
        assert_eq!(pass[0].trace_idx, 1);
    }

    #[test]
    fn head_reclamation_frees_capacity() {
        let mut sb = SliceBuffer::new(2);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(0))).unwrap();
        assert!(sb.is_full());
        sb.retire(0);
        // Push succeeds because the retired head is reclaimed.
        sb.push(entry(2, PoisonMask::bit(0))).unwrap();
        assert_eq!(sb.len(), 2);
        // But a retired entry in the middle cannot be reclaimed.
        sb.retire(2);
        assert!(sb.push(entry(3, PoisonMask::bit(0))).is_err());
    }

    #[test]
    fn rally_selection_apis_are_equivalent() {
        // The scratch-buffer (word-scan) and iterator (per-entry) forms must
        // select exactly what the allocating form does, and the scratch must
        // reuse its capacity.
        let mut sb = SliceBuffer::new(16);
        for k in 0..12usize {
            sb.push(entry(k, PoisonMask::bit((k % 3) as u8))).unwrap();
        }
        sb.retire(3);
        sb.retire(6);
        let mut scratch = Vec::new();
        for bit in 0..3u8 {
            let select = PoisonMask::bit(bit);
            let allocated = sb.entries_for_rally(select);
            sb.entries_for_rally_into(select, &mut scratch);
            assert_eq!(allocated, scratch);
            let iterated: Vec<SliceEntry> = sb.rally_iter(select).collect();
            assert_eq!(allocated, iterated);
        }
        let warmed = scratch.capacity();
        for _ in 0..50 {
            sb.entries_for_rally_into(PoisonMask::bit(0), &mut scratch);
            assert_eq!(scratch.capacity(), warmed, "scratch must not reallocate");
        }
    }

    #[test]
    fn word_scan_matches_bit_loop_on_randomized_ring_states() {
        // Drive the ring through randomized push/retire/repoison churn (so the
        // buffer wraps and fragments) and check the word-level selection
        // against the per-entry rally_iter reference on every step.
        let mut state = 0x5EEDu64;
        let mut lcg = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 16
        };
        let mut sb = SliceBuffer::new(13); // odd capacity: exercises wrap lanes
        let mut next_idx = 0usize;
        let mut scratch = Vec::new();
        for _ in 0..400 {
            match lcg() % 4 {
                0 | 1 => {
                    let mask = PoisonMask::from_bits((lcg() % 0xFFFF) as u16 | 1);
                    if sb.push(entry(next_idx, mask)).is_ok() {
                        next_idx += 1;
                    } else {
                        // Full of active entries: retire the head to make room.
                        let head_idx = sb.active_entries().next().unwrap().trace_idx;
                        sb.retire(head_idx);
                    }
                }
                2 => {
                    if let Some(e) = sb.active_entries().last() {
                        let idx = e.trace_idx;
                        sb.repoison(idx, PoisonMask::from_bits((lcg() % 0xFFFF) as u16 | 2));
                    }
                }
                _ => {
                    let actives: Vec<usize> =
                        sb.active_entries().map(|e| e.trace_idx).collect();
                    if !actives.is_empty() {
                        let pick = actives[(lcg() % actives.len() as u64) as usize];
                        sb.retire(pick);
                    }
                }
            }
            for bit in 0..16u8 {
                let select = PoisonMask::bit(bit);
                sb.entries_for_rally_into(select, &mut scratch);
                let reference: Vec<SliceEntry> = sb.rally_iter(select).collect();
                assert_eq!(scratch, reference, "selection diverged for bit {bit}");
            }
        }
        assert!(next_idx > 20, "churn should have inserted entries");
    }

    #[test]
    fn slot_carrying_selection_matches_and_slot_ops_are_equivalent() {
        // rally_select_into must pair every selected entry with a physical
        // slot on which retire_at/repoison_at act exactly like the by-index
        // forms — including across a ring wrap.
        let mut sb = SliceBuffer::new(8);
        for k in 0..6usize {
            sb.push(entry(k, PoisonMask::bit((k % 2) as u8))).unwrap();
        }
        sb.retire(0);
        sb.retire(1);
        sb.reclaim_head();
        sb.push(entry(6, PoisonMask::bit(0))).unwrap();
        sb.push(entry(7, PoisonMask::bit(0))).unwrap();
        sb.push(entry(8, PoisonMask::bit(0))).unwrap();
        sb.push(entry(9, PoisonMask::bit(0))).unwrap(); // wraps

        let mut with_slots = Vec::new();
        sb.rally_select_into(PoisonMask::bit(0), &mut with_slots);
        let plain = sb.entries_for_rally(PoisonMask::bit(0));
        let entries: Vec<SliceEntry> = with_slots.iter().map(|&(_, e)| e).collect();
        assert_eq!(entries, plain);

        for &(slot, e) in &with_slots {
            // The slot really addresses this entry.
            assert_eq!(sb.entry_poison(e.trace_idx), Some(e.poison));
            assert!(sb.repoison_at(slot as usize, PoisonMask::bit(5)));
            assert_eq!(sb.entry_poison(e.trace_idx), Some(PoisonMask::bit(5)));
            assert!(sb.retire_at(slot as usize));
            assert!(!sb.retire_at(slot as usize), "already retired");
            assert_eq!(sb.entry_poison(e.trace_idx), None);
        }
        assert!(sb.entries_for_rally(PoisonMask::bit(0)).is_empty());
    }

    #[test]
    fn repoison_keeps_entry_active() {
        let mut sb = SliceBuffer::new(4);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        assert!(sb.repoison(0, PoisonMask::bit(3)));
        let pass = sb.entries_for_rally(PoisonMask::bit(3));
        assert_eq!(pass.len(), 1);
        assert!(sb.entries_for_rally(PoisonMask::bit(0)).is_empty());
    }

    #[test]
    fn peak_and_inserted_counters() {
        let mut sb = SliceBuffer::new(4);
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        sb.push(entry(1, PoisonMask::bit(0))).unwrap();
        sb.retire(0);
        sb.reclaim_head();
        sb.push(entry(2, PoisonMask::bit(0))).unwrap();
        assert_eq!(sb.peak(), 2);
        assert_eq!(sb.inserted(), 3);
    }

    #[test]
    fn no_active_and_clear() {
        let mut sb = SliceBuffer::new(4);
        assert!(sb.no_active());
        sb.push(entry(0, PoisonMask::bit(0))).unwrap();
        assert!(!sb.no_active());
        sb.clear();
        assert!(sb.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SliceBuffer::new(0);
    }
}
