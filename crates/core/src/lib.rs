//! # icfp-core — the iCFP mechanism and the designs it is compared against
//!
//! This crate contains cycle-level models of the five back ends evaluated in
//! the paper, all built on the shared substrate crates (`icfp-mem`,
//! `icfp-bpred`, `icfp-pipeline`):
//!
//! | Model | Module | Paper role |
//! |---|---|---|
//! | Vanilla in-order | [`inorder`] | baseline; stalls at the first miss-dependent instruction |
//! | Runahead execution | [`runahead`] | non-blocking advance, discards and re-executes everything |
//! | Multipass pipelining | [`multipass`] | Runahead + saved miss-independent results to accelerate re-execution |
//! | SLTP | [`sltp`] | commits miss-independent work, SRL memory system, single *blocking* rally |
//! | iCFP | [`icfp`] | commits miss-independent work, chained store buffer, multiple non-blocking multithreaded rallies |
//!
//! Supporting structures that the paper introduces or relies on are their own
//! modules: the address-hash-chained store buffer ([`storebuf`]), the slice
//! buffer ([`slicebuf`]), the store redo log and runahead cache (also in
//! [`storebuf`]), and the multiprocessor-safety signature ([`signature`]).
//!
//! Every core implements [`Core`]: it consumes a [`icfp_isa::Trace`] and
//! produces a [`icfp_pipeline::RunResult`] whose final architectural state is
//! checked against the functional golden model in the integration tests.
//!
//! Drivers (the simulator, the bench harness, the sweep executor) do not
//! dispatch over models themselves: [`CoreModel::engine`] — the registry in
//! [`engine`] — hands them an object-safe [`CoreEngine`] they step, drain and
//! digest uniformly.
//!
//! ```
//! use icfp_core::{Core, CoreConfig, InOrderCore, IcfpCore};
//! use icfp_isa::{DynInst, Op, Reg, TraceBuilder};
//!
//! let mut b = TraceBuilder::new("tiny");
//! b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x4000));
//! b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
//! let trace = b.build();
//!
//! let cfg = CoreConfig::paper_default();
//! let base = InOrderCore::new(cfg.clone()).run(&trace);
//! let icfp = IcfpCore::new(cfg).run(&trace);
//! assert_eq!(base.final_regs, icfp.final_regs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod config;
pub mod engine;
pub use icfp_isa::fxmap;
pub mod icfp;
pub mod inorder;
pub mod multipass;
pub mod runahead;
pub mod signature;
pub mod slicebuf;
pub mod sltp;
pub mod storebuf;

pub use common::Engine;
pub use config::{AdvancePolicy, CoreConfig, IcfpFeatures, StoreBufferKind};
pub use engine::{run_model, CoreEngine, CoreModel, EngineSnapshot};
pub use icfp::{IcfpCore, IcfpMachine};
pub use inorder::InOrderCore;
pub use multipass::MultipassCore;
pub use runahead::RunaheadCore;
pub use signature::Signature;
pub use slicebuf::{SliceBuffer, SliceEntry};
pub use sltp::SltpCore;
pub use storebuf::{AssocStoreBuffer, ChainedStoreBuffer, LimitedStoreBuffer, RunaheadCache, StoreRedoLog};

use icfp_isa::{exec::ArchState, Trace, TraceCursor};
use icfp_pipeline::RunResult;

/// A back-end core model that can execute a trace.
///
/// Models read the instruction stream exclusively through a
/// [`TraceCursor`], so the same code path serves in-memory arenas (the
/// cursor's zero-cost fast path) and block-streamed sources (`icfp-trace/v1`
/// files, resumable generators) whose traces never fully materialize.
pub trait Core {
    /// The model's short name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// Simulates the trace behind the cursor to completion and returns
    /// timing statistics plus the final architectural state.
    fn run_cursor(&mut self, trace: &TraceCursor<'_>) -> RunResult {
        self.run_cursor_from(trace, None)
    }

    /// [`Core::run_cursor`] with an optional functional fast-forward seed:
    /// when `warm` is given, the engine starts with its architectural
    /// registers and memory (timing state cold) and the timed region covers
    /// trace positions `warm.instructions..len`.  The final architectural
    /// state equals the cold run's — architectural execution is
    /// timing-independent — while cycles cover only the timed region.
    fn run_cursor_from(&mut self, trace: &TraceCursor<'_>, warm: Option<&ArchState>)
        -> RunResult;

    /// Convenience wrapper over [`Core::run_cursor`] for in-memory traces
    /// (the historical entry point; all deterministic outputs are identical).
    fn run(&mut self, trace: &Trace) -> RunResult {
        self.run_cursor(&TraceCursor::from_trace(trace))
    }
}
