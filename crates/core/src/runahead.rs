//! Runahead execution (Dundas & Mudge; Mutlu et al.), adapted to the paper's
//! in-order setting, plus the shared machinery reused by Multipass.
//!
//! On a qualifying miss the core checkpoints the register file and keeps
//! executing ("advance").  Miss-dependent instructions are poisoned and
//! skipped; miss-independent instructions execute — including loads, which is
//! where the benefit comes from: they prefetch future misses and warm the
//! caches.  Advance stores write only a small best-effort runahead cache.
//! When the triggering miss returns, *everything* executed during advance is
//! discarded: the register file is restored from the checkpoint and execution
//! restarts at the checkpointed instruction.  That wholesale re-execution is
//! the overhead iCFP and SLTP avoid.

use crate::common::{seed_start, Engine};
use crate::config::CoreConfig;
use crate::storebuf::RunaheadCache;
use crate::Core;
use icfp_isa::{exec::ArchState, Cycle, OpClass, TraceCursor};
use icfp_pipeline::{PoisonMask, RunResult};
use std::collections::{HashMap, VecDeque};

/// The Runahead core.
#[derive(Debug)]
pub struct RunaheadCore {
    cfg: CoreConfig,
}

impl RunaheadCore {
    /// Creates a Runahead core.  The paper's default advance policy for
    /// Runahead is [`crate::AdvancePolicy::L2Only`]; use
    /// [`CoreConfig::runahead_default`] for that.
    pub fn new(cfg: CoreConfig) -> Self {
        RunaheadCore { cfg }
    }
}

impl Core for RunaheadCore {
    fn name(&self) -> &'static str {
        "runahead"
    }

    fn run_cursor_from(&mut self, trace: &TraceCursor<'_>, warm: Option<&ArchState>) -> RunResult {
        runahead_like_run(&self.cfg, trace, self.name(), false, warm)
    }
}

#[derive(Debug, Clone, Copy)]
struct AdvanceEpisode {
    /// Trace index to restart from when the episode ends.
    ckpt_idx: usize,
    /// Cycle at which the triggering miss returns.
    trigger_return: Cycle,
}

/// Shared Runahead/Multipass execution.  When `save_results` is true, results
/// of miss-independent advance instructions are kept in a bounded result
/// buffer and used to accelerate the post-squash re-execution (Multipass's
/// dependence-breaking), otherwise they are discarded (plain Runahead).
pub(crate) fn runahead_like_run(
    cfg: &CoreConfig,
    trace: &TraceCursor<'_>,
    name: &'static str,
    save_results: bool,
    warm: Option<&ArchState>,
) -> RunResult {
    let mut eng = Engine::new(cfg);
    let start = seed_start(&mut eng, warm, trace.len());
    let mut store_q: VecDeque<(Cycle, u64)> = VecDeque::new();
    let sb_capacity = cfg.pipeline.baseline_store_buffer;
    let l1_lat = cfg.mem.l1_hit_latency;
    let policy = cfg.advance_policy;

    let mut rcache = RunaheadCache::new(cfg.runahead_cache_entries);
    // Multipass result buffer: trace index -> saved value (None = instruction
    // executed but produced no register result).
    let mut results: HashMap<usize, Option<u64>> = HashMap::new();
    let mut episode: Option<AdvanceEpisode> = None;
    // Set once any store has been processed in the current advance episode;
    // results are no longer saved after that because advance loads may then
    // observe stale memory (conservative memory-dependence handling for
    // Multipass's result buffer).
    let mut poisoned_store_seen = false;

    let mut i = start;
    while i < trace.len() || episode.is_some() {
        // End the advance episode once execution time reaches the trigger's
        // return (or the trace ran out while advancing): restore and
        // re-execute from the checkpoint.
        if let Some(ep) = episode {
            if eng.frontier >= ep.trigger_return || i >= trace.len() {
                finish_episode(&mut eng, &mut rcache, ep, &mut i, &mut poisoned_store_seen);
                episode = None;
                continue;
            }
        }
        if i >= trace.len() {
            break;
        }

        let inst = trace.get(i);
        let inst = &inst;
        let seq = i as u64;
        let in_advance = episode.is_some();
        let fetch_ready = eng.fetch.next_issue_ready();
        let src_poison = if in_advance {
            eng.src_poison(inst)
        } else {
            PoisonMask::CLEAN
        };

        // Multipass: a saved result breaks the dependence during re-execution.
        let saved = if save_results && !in_advance {
            results.get(&i).copied()
        } else {
            None
        };

        let mut earliest = if saved.is_some() {
            fetch_ready
        } else {
            fetch_ready.max(eng.src_ready(inst))
        };

        if inst.is_store() && !in_advance {
            while store_q.len() >= sb_capacity {
                let (done, _) = store_q.pop_front().expect("non-empty");
                if done > earliest {
                    eng.stats.resource_stall_cycles += done - earliest;
                    earliest = done;
                }
            }
        }

        let issue = eng.issue_at(inst.class(), earliest);
        if in_advance {
            eng.stats.advance_instructions += 1;
        }

        // Poisoned instructions just flow through the pipe.
        if src_poison.is_poisoned() {
            if let Some(dst) = inst.dst {
                eng.rf.poison_write(dst, src_poison, seq);
            }
            if inst.is_store() {
                poisoned_store_seen = true;
                if let Some(addr) = inst.addr {
                    rcache.write(addr, 0, src_poison);
                }
            }
            if save_results {
                results.remove(&i);
            }
            eng.note_completion(issue + 1);
            i += 1;
            continue;
        }

        match inst.class() {
            OpClass::Load => {
                let addr = inst.addr.expect("load without address");
                if !in_advance {
                    eng.stats.demand_loads += 1;
                }
                if let Some(v) = saved {
                    // Multipass rally acceleration: the result is already known.
                    let completes = issue + 1;
                    if let (Some(dst), Some(v)) = (inst.dst, v) {
                        eng.rf.write(dst, v, completes, seq);
                    }
                    eng.note_completion(completes);
                    i += 1;
                    continue;
                }
                // Advance-mode forwarding via the runahead cache.
                let rc_hit = if in_advance { rcache.read(addr) } else { None };
                if let Some((v, p)) = rc_hit {
                    if p.is_poisoned() {
                        if let Some(dst) = inst.dst {
                            eng.rf.poison_write(dst, p, seq);
                        }
                        eng.note_completion(issue + 1);
                        i += 1;
                        continue;
                    }
                    if let Some(dst) = inst.dst {
                        eng.rf.write(dst, v, issue + l1_lat, seq);
                    }
                    eng.note_completion(issue + l1_lat);
                    i += 1;
                    continue;
                }
                // Baseline forwarding from the conventional store buffer.
                while matches!(store_q.front(), Some(&(done, _)) if done <= issue) {
                    store_q.pop_front();
                }
                let forwarded = store_q.iter().rev().any(|&(_, a)| a == (addr & !7));
                let (completes, outcome) = if forwarded {
                    eng.stats.store_forwards += 1;
                    (issue + l1_lat, icfp_mem::AccessOutcome::L1Hit)
                } else {
                    let (c, o, _) = eng.demand_load(addr, issue);
                    (c, o)
                };
                let value = eng.arch_mem.read(addr);
                let is_miss = outcome.is_l1_miss();
                let is_l2_miss = outcome.is_l2_miss();

                if !in_advance {
                    if is_miss && policy.triggers_on(is_l2_miss) && completes > issue + l1_lat {
                        // Enter advance mode: checkpoint here, poison the dest.
                        eng.rf.checkpoint(issue, seq);
                        eng.stats.advance_episodes += 1;
                        episode = Some(AdvanceEpisode {
                            ckpt_idx: i,
                            trigger_return: completes,
                        });
                        poisoned_store_seen = false;
                        if let Some(dst) = inst.dst {
                            eng.rf.poison_write(dst, PoisonMask::bit(0), seq);
                        }
                        eng.note_completion(issue + 1);
                        i += 1;
                        continue;
                    }
                    // Plain in-order behaviour.
                    if let Some(dst) = inst.dst {
                        eng.rf.write(dst, value, completes, seq);
                    }
                    eng.note_completion(completes);
                } else {
                    // Secondary miss during advance.
                    let poison_it = if is_l2_miss {
                        true
                    } else if is_miss {
                        policy.poisons_secondary_dcache()
                    } else {
                        false
                    };
                    if poison_it && completes > issue + l1_lat {
                        if let Some(dst) = inst.dst {
                            eng.rf.poison_write(dst, PoisonMask::bit(0), seq);
                        }
                        eng.note_completion(issue + 1);
                    } else {
                        // Wait for it (D$-blocking) or it was a hit.
                        if let Some(dst) = inst.dst {
                            eng.rf.write(dst, value, completes, seq);
                        }
                        eng.note_completion(completes);
                        if save_results && !poisoned_store_seen && results.len() < cfg.result_buffer_entries {
                            results.insert(i, Some(value));
                        }
                    }
                }
            }
            OpClass::Store => {
                let addr = inst.addr.expect("store without address");
                let data = inst.store_data_reg().map(|r| eng.rf.value(r)).unwrap_or(0);
                if in_advance {
                    // Advance stores write the runahead cache only (plus a
                    // prefetch of the line).  Result saving stops here: later
                    // advance loads may observe stale architectural memory.
                    poisoned_store_seen = true;
                    rcache.write(addr, data, PoisonMask::CLEAN);
                    let _ = eng.demand_store(addr, issue + 1);
                    eng.note_completion(issue + 1);
                } else {
                    eng.arch_mem.write(addr, data);
                    let drain_done = eng.demand_store(addr, issue + 1);
                    store_q.push_back((drain_done, addr & !7));
                    eng.note_completion(issue + 1);
                }
            }
            OpClass::Branch => {
                let resolve = issue + inst.latency();
                eng.exec_branch(inst, resolve);
                eng.note_completion(resolve);
            }
            _ => {
                let completes = if saved.is_some() { issue + 1 } else { issue + inst.latency() };
                let value = eng.compute(inst);
                if let (Some(dst), Some(v)) = (inst.dst, value) {
                    eng.rf.write(dst, v, completes, seq);
                }
                if in_advance
                    && save_results
                    && !poisoned_store_seen
                    && results.len() < cfg.result_buffer_entries
                {
                    results.insert(i, value);
                }
                eng.note_completion(completes);
            }
        }
        i += 1;
    }

    eng.finish(name, trace)
}

/// Ends an advance episode: restores the checkpoint, redirects the front end
/// to the restart point and rolls the instruction pointer back.
fn finish_episode(
    eng: &mut Engine,
    rcache: &mut RunaheadCache,
    ep: AdvanceEpisode,
    i: &mut usize,
    poisoned_store_seen: &mut bool,
) {
    let advance_len = i.saturating_sub(ep.ckpt_idx) as u64;
    eng.stats.rally_instructions += advance_len;
    eng.stats.rally_passes += 1;
    eng.rf.restore(ep.trigger_return);
    rcache.clear();
    *poisoned_store_seen = false;
    // The front end restarts fetching the checkpointed instruction when the
    // miss returns; the restart pays a pipeline-refill penalty.
    eng.fetch.redirect(ep.trigger_return);
    eng.frontier = eng.frontier.max(ep.trigger_return);
    *i = ep.ckpt_idx;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::golden_final_state;
    use crate::config::AdvancePolicy;
    use crate::inorder::InOrderCore;
    use icfp_isa::{DynInst, Op, Reg, Trace, TraceBuilder};

    fn independent_miss_trace(n: usize) -> Trace {
        // Pointer-independent loads to distinct far-apart lines, each followed
        // by a dependent op and some independent filler.
        let mut b = TraceBuilder::new("indep-misses");
        for k in 0..n {
            let base = 0x100000 + (k as u64) * 0x4000;
            b.push(DynInst::load(Reg::int(1), Reg::int(2), base));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
            for j in 0..6u64 {
                b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(5), j));
            }
        }
        b.build()
    }

    #[test]
    fn runahead_matches_golden_state() {
        let t = independent_miss_trace(8);
        let r = RunaheadCore::new(CoreConfig::runahead_default()).run(&t);
        let (regs, mem) = golden_final_state(&t);
        assert_eq!(r.final_regs, regs);
        assert_eq!(r.final_mem, mem);
    }

    #[test]
    fn runahead_overlaps_independent_l2_misses() {
        let t = independent_miss_trace(10);
        let base = InOrderCore::new(CoreConfig::paper_default()).run(&t);
        let ra = RunaheadCore::new(CoreConfig::runahead_default()).run(&t);
        assert!(
            ra.stats.cycles < base.stats.cycles,
            "runahead {} should beat in-order {}",
            ra.stats.cycles,
            base.stats.cycles
        );
        assert!(ra.stats.advance_episodes > 0);
        assert!(ra.stats.rally_instructions > 0);
    }

    #[test]
    fn runahead_gains_nothing_on_a_lone_miss() {
        // Figure 1a: a lone L2 miss with one dependent instruction — Runahead
        // provides no benefit because it re-executes everything anyway.
        let mut b = TraceBuilder::new("lone");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
        for j in 0..20u64 {
            b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(5), j));
        }
        let t = b.build();
        let base = InOrderCore::new(CoreConfig::paper_default()).run(&t);
        let ra = RunaheadCore::new(CoreConfig::runahead_default()).run(&t);
        assert!(
            ra.stats.cycles + 5 >= base.stats.cycles,
            "runahead ({}) should not beat in-order ({}) on a lone miss",
            ra.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn advance_stores_do_not_corrupt_memory() {
        // A store under the shadow of a miss, then the miss returns and the
        // store re-executes: final memory must match the golden model.
        let mut b = TraceBuilder::new("adv-store");
        b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1)); // dependent
        b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(4), 9)); // independent
        b.push(DynInst::store(Reg::int(4), Reg::int(5), 0x200)); // independent store
        b.push(DynInst::store(Reg::int(3), Reg::int(5), 0x300)); // dependent store
        b.push(DynInst::load(Reg::int(6), Reg::int(5), 0x200)); // reads the store
        let t = b.build();
        let r = RunaheadCore::new(CoreConfig::runahead_default()).run(&t);
        let (regs, mem) = golden_final_state(&t);
        assert_eq!(r.final_regs, regs);
        assert_eq!(r.final_mem, mem);
    }

    #[test]
    fn all_miss_policy_enters_more_episodes_than_l2_only() {
        // After a warming phase, repeated conflict misses hit in the L2 but
        // miss the tiny L1.  Under the L2-only policy those data-cache misses
        // must not start new advance episodes; under the all-misses policy
        // they do.
        let mut cfg_l2 = CoreConfig::runahead_default();
        cfg_l2.mem = icfp_mem::MemConfig::tiny_for_tests();
        let mut cfg_all = cfg_l2.clone();
        cfg_all.advance_policy = AdvancePolicy::AllMisses;

        let mut b = TraceBuilder::new("d$-misses");
        // Warming phase: touch 9 conflicting lines (cold L2 misses).
        for k in 0..9u64 {
            b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x400 * k));
            for j in 0..40u64 {
                b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(3), j));
            }
        }
        // Conflict phase: cycle through the same lines; these are D$ misses
        // that hit in the L2, each followed by a dependent use.
        for r in 0..6u64 {
            for k in 0..5u64 {
                b.push(DynInst::load(Reg::int(4), Reg::int(2), 0x400 * ((k + r) % 9)));
                b.push(DynInst::alu_imm(Op::Add, Reg::int(5), Reg::int(4), 1));
                for j in 0..10u64 {
                    b.push(DynInst::alu_imm(Op::Add, Reg::int(6), Reg::int(6), j));
                }
            }
        }
        let t = b.build();
        let r_l2 = RunaheadCore::new(cfg_l2).run(&t);
        let r_all = RunaheadCore::new(cfg_all).run(&t);
        assert!(
            r_all.stats.advance_episodes > r_l2.stats.advance_episodes,
            "all-miss policy ({}) should enter more episodes than L2-only ({})",
            r_all.stats.advance_episodes,
            r_l2.stats.advance_episodes
        );
    }
}
