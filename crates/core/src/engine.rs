//! The unified core-engine abstraction and model registry.
//!
//! Every driver in the workspace — the simulator (`icfp-sim`), the benchmark
//! harness (`icfp-bench`), the sweep executor (`icfp-sweep`) — used to carry
//! its own five-way `match` over the core models.  [`CoreModel::engine`] is
//! now the single dispatch point: it returns an object-safe [`CoreEngine`]
//! that any driver steps, drains and digests uniformly.
//!
//! The iCFP model steps incrementally (one instruction or rally pass per
//! [`CoreEngine::step`]); the four whole-trace comparison models are adapted
//! by [`WholeTraceEngine`], which simulates to completion on the first step.
//! Either way the trait contract is the same: call `step` until it returns
//! `false`, then `drain` exactly once for the [`RunResult`].

use crate::config::CoreConfig;
use crate::icfp::IcfpMachine;
use crate::inorder::InOrderCore;
use crate::multipass::MultipassCore;
use crate::runahead::RunaheadCore;
use crate::sltp::SltpCore;
use crate::Core;
use icfp_isa::{exec::ArchState, Cycle, DynInst, Trace, TraceCursor};
use icfp_pipeline::{RunResult, RunStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which core model a driver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreModel {
    /// Vanilla in-order baseline.
    InOrder,
    /// Runahead execution.
    Runahead,
    /// Multipass pipelining.
    Multipass,
    /// SLTP.
    Sltp,
    /// iCFP (the paper's mechanism; supports incremental stepping).
    Icfp,
}

impl CoreModel {
    /// All models, in the paper's presentation order.
    pub const ALL: [CoreModel; 5] = [
        CoreModel::InOrder,
        CoreModel::Runahead,
        CoreModel::Multipass,
        CoreModel::Sltp,
        CoreModel::Icfp,
    ];

    /// The model's short name (matches `RunResult::core`).
    pub fn name(self) -> &'static str {
        match self {
            CoreModel::InOrder => "in-order",
            CoreModel::Runahead => "runahead",
            CoreModel::Multipass => "multipass",
            CoreModel::Sltp => "sltp",
            CoreModel::Icfp => "icfp",
        }
    }

    /// Parses a model name (accepts the short names above).
    pub fn parse(s: &str) -> Option<CoreModel> {
        Self::ALL.into_iter().find(|m| m.name() == s)
    }

    /// The valid model names, comma-separated — for error messages when
    /// [`CoreModel::parse`] fails.
    pub fn valid_names() -> String {
        Self::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The paper's per-design default configuration for this model.
    pub fn default_config(self) -> CoreConfig {
        match self {
            CoreModel::InOrder | CoreModel::Icfp => CoreConfig::paper_default(),
            CoreModel::Runahead => CoreConfig::runahead_default(),
            CoreModel::Multipass => CoreConfig::multipass_default(),
            CoreModel::Sltp => CoreConfig::sltp_default(),
        }
    }

    /// Builds an engine for this model — the workspace's single model
    /// dispatch point (the registry).
    pub fn engine(self, cfg: &CoreConfig) -> Box<dyn CoreEngine> {
        match self {
            CoreModel::Icfp => Box::new(IcfpEngine::new(cfg)),
            CoreModel::InOrder => {
                WholeTraceEngine::boxed(self, Box::new(InOrderCore::new(cfg.clone())))
            }
            CoreModel::Runahead => {
                WholeTraceEngine::boxed(self, Box::new(RunaheadCore::new(cfg.clone())))
            }
            CoreModel::Multipass => {
                WholeTraceEngine::boxed(self, Box::new(MultipassCore::new(cfg.clone())))
            }
            CoreModel::Sltp => WholeTraceEngine::boxed(self, Box::new(SltpCore::new(cfg.clone()))),
        }
    }

    /// True if the model supports genuinely incremental stepping (others run
    /// whole-trace on the first [`CoreEngine::step`] call).
    pub fn steps_incrementally(self) -> bool {
        matches!(self, CoreModel::Icfp)
    }

    /// True if the model's timing depends on the slice-buffer configuration
    /// axis (`CoreConfig::slice_buffer_entries` / `chain_table_entries`).
    /// Only the slice-based designs (iCFP, SLTP) construct a slice buffer;
    /// for the other models the axis is inert, which lets the sweep executor
    /// warm-fork cells that differ only along it from one shared checkpoint
    /// without changing any deterministic output.
    pub fn reads_slice_buffer(self) -> bool {
        matches!(self, CoreModel::Icfp | CoreModel::Sltp)
    }
}

impl fmt::Display for CoreModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A serialized engine state: everything needed to resume the run on a fresh
/// engine of the same model, produced by [`CoreEngine::save`] and consumed by
/// [`CoreEngine::restore`].
///
/// `bytes` is the model-specific state in the vendored-serde binary format
/// (for the incremental iCFP model, the whole [`IcfpMachine`] including its
/// register file, poison planes, slice/store buffers, caches, MSHRs, bus and
/// prefetcher; for the whole-trace comparison models, the not-yet-drained run
/// result, if any).  `cycle` and `processed` are duplicated outside the blob
/// so drivers can label checkpoints without decoding them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Model that produced the snapshot.
    pub model: CoreModel,
    /// Simulated cycle at capture time.
    pub cycle: Cycle,
    /// Dynamic instructions whose first pass had been processed at capture.
    pub processed: u64,
    /// Model-specific serialized state.
    pub bytes: Vec<u8>,
}

/// An object-safe, `Send` core engine: the uniform surface every driver
/// (simulator, bench harness, sweep pool) programs against.
///
/// Lifecycle: [`CoreEngine::step`] until it returns `false`, then
/// [`CoreEngine::drain`] exactly once.
pub trait CoreEngine: Send {
    /// Which model this engine runs.
    fn model(&self) -> CoreModel;

    /// Advances the engine by one unit of work (an instruction or a rally
    /// pass for incremental models; the whole trace for the others).
    /// Returns `false` once the trace is fully retired.
    ///
    /// The trace arrives as a [`TraceCursor`], so the engine serves arena
    /// and block-streamed sources through the identical code path.
    ///
    /// # Panics
    ///
    /// Panics if called after [`CoreEngine::drain`].
    fn step(&mut self, trace: &TraceCursor<'_>) -> bool;

    /// Advances the engine through a prefetched block of instructions:
    /// `insts[k]` is the dynamic instruction at trace position `first + k`,
    /// and the slice must start at (or before) the engine's next unprocessed
    /// instruction.  An empty slice is valid once the first pass has moved
    /// past `first` — the engine then drains pending work one unit at a time.
    ///
    /// Steps until the slice is consumed, the cycle budget `until` is
    /// reached, or the run completes; returns `false` once the trace is
    /// fully retired (same contract as [`CoreEngine::step`]).
    ///
    /// The default implementation loops [`CoreEngine::step`]; incremental
    /// models override it to skip the per-instruction virtual call and
    /// cursor dispatch — the batched-stepping fast path `icfp-sim` drives.
    ///
    /// # Panics
    ///
    /// Panics if called after [`CoreEngine::drain`].
    fn step_block(
        &mut self,
        trace: &TraceCursor<'_>,
        insts: &[DynInst],
        first: usize,
        until: Cycle,
    ) -> bool {
        let end = first + insts.len();
        while self.cycle() < until {
            if !self.step(trace) {
                return false;
            }
            if self.processed() >= end {
                break;
            }
        }
        true
    }

    /// Installs the outcome of a functional fast-forward into a *fresh*
    /// engine: architectural registers and memory as of trace position
    /// `warm.instructions`, every timing structure cold, the timed run
    /// starting there.  The final architectural state (and therefore
    /// [`CoreEngine::digest`]) of the seeded run equals the cold full run's;
    /// cycle counts cover only the timed region — that is the point.
    ///
    /// # Errors
    ///
    /// Fails if the engine has already stepped, been drained, or been
    /// seeded/restored — a seed replaces the initial state only.
    fn seed(&mut self, warm: &ArchState) -> Result<(), String>;

    /// The current simulated cycle (final cycle count once finished).
    fn cycle(&self) -> Cycle;

    /// Dynamic instructions whose first pass has been processed.
    fn processed(&self) -> usize;

    /// Live statistics, if the model exposes them before completion
    /// (whole-trace models report `None` until they have run).
    fn stats(&self) -> Option<&RunStats>;

    /// Finalises the run (completing it first if necessary) and returns the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    fn drain(&mut self, trace: &TraceCursor<'_>) -> RunResult;

    /// Digest of a result's final architectural state — identical across
    /// models and drivers so sweeps can compare cells cheaply.
    fn digest(&self, result: &RunResult) -> u64 {
        result.state_digest()
    }

    /// Serializes the engine's complete simulation state.  Restoring the
    /// snapshot into a fresh engine of the same model and continuing the run
    /// is bit-identical (cycles, statistics, architectural state) to never
    /// having paused.
    ///
    /// # Errors
    ///
    /// Fails after [`CoreEngine::drain`] — a drained engine no longer holds
    /// resumable state.
    fn save(&self) -> Result<EngineSnapshot, String>;

    /// Replaces this engine's state with a snapshot from [`CoreEngine::save`].
    ///
    /// The engine must have been built for the same model *and
    /// configuration* as the one that produced the snapshot (the snapshot
    /// carries its own configuration; restoring onto a mismatched engine
    /// replaces the configuration wholesale for the incremental models).
    ///
    /// # Errors
    ///
    /// Fails on a model mismatch or an undecodable snapshot.
    fn restore(&mut self, snapshot: &EngineSnapshot) -> Result<(), String>;
}

/// [`CoreEngine`] adapter for the incremental [`IcfpMachine`].
struct IcfpEngine {
    machine: Option<IcfpMachine>,
    /// Cycle/instruction counts cached at drain time so the accessors stay
    /// valid afterwards.
    final_cycle: Cycle,
    final_processed: usize,
}

impl IcfpEngine {
    fn new(cfg: &CoreConfig) -> Self {
        IcfpEngine {
            machine: Some(IcfpMachine::new(cfg)),
            final_cycle: 0,
            final_processed: 0,
        }
    }
}

impl CoreEngine for IcfpEngine {
    fn model(&self) -> CoreModel {
        CoreModel::Icfp
    }

    fn step(&mut self, trace: &TraceCursor<'_>) -> bool {
        self.machine
            .as_mut()
            .expect("CoreEngine::step after drain")
            .step(trace)
    }

    fn step_block(
        &mut self,
        trace: &TraceCursor<'_>,
        insts: &[DynInst],
        first: usize,
        until: Cycle,
    ) -> bool {
        self.machine
            .as_mut()
            .expect("CoreEngine::step_block after drain")
            .step_slice(trace, insts, first, until)
    }

    fn seed(&mut self, warm: &ArchState) -> Result<(), String> {
        self.machine
            .as_mut()
            .ok_or("cannot seed a drained engine")?
            .seed(warm)
    }

    fn cycle(&self) -> Cycle {
        self.machine
            .as_ref()
            .map_or(self.final_cycle, |m| m.cycle())
    }

    fn processed(&self) -> usize {
        self.machine
            .as_ref()
            .map_or(self.final_processed, |m| m.processed())
    }

    fn stats(&self) -> Option<&RunStats> {
        self.machine.as_ref().map(|m| &m.engine().stats)
    }

    fn drain(&mut self, trace: &TraceCursor<'_>) -> RunResult {
        let mut machine = self.machine.take().expect("CoreEngine::drain called twice");
        while machine.step(trace) {}
        self.final_cycle = machine.cycle();
        self.final_processed = machine.processed();
        let result = machine.finish(trace);
        self.final_cycle = self.final_cycle.max(result.stats.cycles);
        result
    }

    fn save(&self) -> Result<EngineSnapshot, String> {
        let machine = self
            .machine
            .as_ref()
            .ok_or("cannot save a drained engine")?;
        Ok(EngineSnapshot {
            model: CoreModel::Icfp,
            cycle: machine.cycle(),
            processed: machine.processed() as u64,
            bytes: serde::to_bytes(machine),
        })
    }

    fn restore(&mut self, snapshot: &EngineSnapshot) -> Result<(), String> {
        if snapshot.model != CoreModel::Icfp {
            return Err(format!(
                "snapshot is for model {}, engine runs icfp",
                snapshot.model
            ));
        }
        let machine: IcfpMachine = serde::from_bytes(&snapshot.bytes)
            .map_err(|e| format!("decoding icfp snapshot: {e}"))?;
        self.machine = Some(machine);
        self.final_cycle = 0;
        self.final_processed = 0;
        Ok(())
    }
}

/// [`CoreEngine`] adapter for the whole-trace comparison models: the first
/// [`CoreEngine::step`] simulates the trace to completion.
struct WholeTraceEngine {
    model: CoreModel,
    core: Box<dyn Core + Send>,
    result: Option<RunResult>,
    /// Functional fast-forward state installed before the run, if any; the
    /// run's first step hands it to [`Core::run_cursor_from`].
    seed: Option<ArchState>,
    drained: bool,
    /// Cycle/instruction counts cached at drain time so the accessors stay
    /// valid afterwards (same contract as `IcfpEngine`).
    final_cycle: Cycle,
    final_processed: usize,
}

impl WholeTraceEngine {
    fn boxed(model: CoreModel, core: Box<dyn Core + Send>) -> Box<dyn CoreEngine> {
        Box::new(WholeTraceEngine {
            model,
            core,
            result: None,
            seed: None,
            drained: false,
            final_cycle: 0,
            final_processed: 0,
        })
    }

    fn run_once(&mut self, trace: &TraceCursor<'_>) {
        if self.result.is_none() {
            self.result = Some(self.core.run_cursor_from(trace, self.seed.as_ref()));
        }
    }
}

impl CoreEngine for WholeTraceEngine {
    fn model(&self) -> CoreModel {
        self.model
    }

    fn step(&mut self, trace: &TraceCursor<'_>) -> bool {
        assert!(!self.drained, "CoreEngine::step after drain");
        self.run_once(trace);
        false
    }

    fn seed(&mut self, warm: &ArchState) -> Result<(), String> {
        if self.drained || self.result.is_some() || self.seed.is_some() {
            return Err("functional fast-forward requires a fresh engine".into());
        }
        self.seed = Some(warm.clone());
        Ok(())
    }

    fn cycle(&self) -> Cycle {
        self.result
            .as_ref()
            .map_or(self.final_cycle, |r| r.stats.cycles)
    }

    fn processed(&self) -> usize {
        if let Some(r) = &self.result {
            return r.stats.instructions as usize;
        }
        if self.drained {
            return self.final_processed;
        }
        // Seeded but not yet run: the first pass stands at the seed's trace
        // position (checkpoints taken here resume there).
        self.seed
            .as_ref()
            .map_or(self.final_processed, |s| s.instructions as usize)
    }

    fn stats(&self) -> Option<&RunStats> {
        self.result.as_ref().map(|r| &r.stats)
    }

    fn drain(&mut self, trace: &TraceCursor<'_>) -> RunResult {
        assert!(!self.drained, "CoreEngine::drain called twice");
        self.run_once(trace);
        self.drained = true;
        let result = self.result.take().expect("result just computed");
        self.final_cycle = result.stats.cycles;
        self.final_processed = result.stats.instructions as usize;
        result
    }

    fn save(&self) -> Result<EngineSnapshot, String> {
        if self.drained {
            return Err("cannot save a drained engine".into());
        }
        // Whole-trace models have exactly three resumable states: not
        // started (the core itself is stateless until `run`), seeded by a
        // functional fast-forward but not yet run, and finished-but-not-
        // drained.  All are captured by the optional result + optional seed.
        Ok(EngineSnapshot {
            model: self.model,
            cycle: self.cycle(),
            processed: self.processed() as u64,
            bytes: serde::to_bytes(&(self.result.clone(), self.seed.clone())),
        })
    }

    fn restore(&mut self, snapshot: &EngineSnapshot) -> Result<(), String> {
        if snapshot.model != self.model {
            return Err(format!(
                "snapshot is for model {}, engine runs {}",
                snapshot.model, self.model
            ));
        }
        let (result, seed): (Option<RunResult>, Option<ArchState>) =
            serde::from_bytes(&snapshot.bytes)
                .map_err(|e| format!("decoding {} snapshot: {e}", self.model))?;
        self.result = result;
        self.seed = seed;
        self.drained = false;
        self.final_cycle = 0;
        self.final_processed = 0;
        Ok(())
    }
}

/// Runs the trace behind `trace` to completion on `model` under `cfg`
/// through the registry — the uniform entry point for any backing (arena or
/// streamed).
pub fn run_model_cursor(model: CoreModel, cfg: &CoreConfig, trace: &TraceCursor<'_>) -> RunResult {
    let mut engine = model.engine(cfg);
    while engine.step(trace) {}
    engine.drain(trace)
}

/// [`run_model_cursor`] over an in-memory trace — the convenience entry
/// point shared by drivers and tests that do not need stepping.
pub fn run_model(model: CoreModel, cfg: &CoreConfig, trace: &Trace) -> RunResult {
    run_model_cursor(model, cfg, &TraceCursor::from_trace(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfp_isa::{DynInst, Op, Reg, TraceBuilder};

    fn cur(t: &Trace) -> TraceCursor<'_> {
        TraceCursor::from_trace(t)
    }

    fn trace() -> Trace {
        let mut b = TraceBuilder::new("engine-test");
        for k in 0..12u64 {
            b.push(DynInst::load(Reg::int(1), Reg::int(2), 0x100000 + k * 0x4000));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 1));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(5), k));
        }
        b.build()
    }

    #[test]
    fn registry_covers_every_model_and_matches_direct_runs() {
        let t = trace();
        for m in CoreModel::ALL {
            let cfg = m.default_config();
            let via_registry = run_model(m, &cfg, &t);
            let direct: RunResult = match m {
                CoreModel::InOrder => InOrderCore::new(cfg.clone()).run(&t),
                CoreModel::Runahead => RunaheadCore::new(cfg.clone()).run(&t),
                CoreModel::Multipass => MultipassCore::new(cfg.clone()).run(&t),
                CoreModel::Sltp => SltpCore::new(cfg.clone()).run(&t),
                CoreModel::Icfp => crate::icfp::IcfpCore::new(cfg.clone()).run(&t),
            };
            assert_eq!(via_registry.core, m.name());
            assert_eq!(via_registry.stats.cycles, direct.stats.cycles, "{m}");
            assert_eq!(via_registry.final_regs, direct.final_regs, "{m}");
            assert_eq!(via_registry.final_mem, direct.final_mem, "{m}");
        }
    }

    #[test]
    fn icfp_engine_steps_incrementally_and_exposes_live_stats() {
        let t = trace();
        let cfg = CoreModel::Icfp.default_config();
        let mut e = CoreModel::Icfp.engine(&cfg);
        assert!(CoreModel::Icfp.steps_incrementally());
        let mut steps = 0usize;
        let c = cur(&t);
        while e.step(&c) {
            steps += 1;
            assert!(steps < 1_000_000, "engine did not terminate");
        }
        assert!(steps > 1, "icfp must take many steps");
        assert!(e.stats().is_some(), "live stats before drain");
        let r = e.drain(&c);
        assert_eq!(r.stats.instructions, t.len() as u64);
        assert_eq!(e.cycle(), r.stats.cycles, "cycle cached after drain");
        assert_eq!(e.processed(), t.len());
    }

    #[test]
    fn whole_trace_engines_finish_on_first_step() {
        let t = trace();
        let cfg = CoreModel::InOrder.default_config();
        let mut e = CoreModel::InOrder.engine(&cfg);
        assert!(!CoreModel::InOrder.steps_incrementally());
        let c = cur(&t);
        assert_eq!(e.cycle(), 0, "no work before the first step");
        assert!(!e.step(&c), "whole-trace models complete on the first step");
        assert!(e.cycle() > 0);
        assert!(e.stats().is_some());
        let r = e.drain(&c);
        assert_eq!(r.core, "in-order");
        assert_eq!(e.cycle(), r.stats.cycles, "cycle cached after drain");
        assert_eq!(e.processed(), r.stats.instructions as usize);
    }

    #[test]
    fn drain_without_step_runs_the_trace() {
        let t = trace();
        for m in CoreModel::ALL {
            let cfg = m.default_config();
            let mut e = m.engine(&cfg);
            let r = e.drain(&cur(&t));
            assert_eq!(r.stats.instructions, t.len() as u64, "{m}");
        }
    }

    #[test]
    #[should_panic(expected = "drain called twice")]
    fn double_drain_panics() {
        let t = trace();
        let cfg = CoreModel::InOrder.default_config();
        let mut e = CoreModel::InOrder.engine(&cfg);
        let _ = e.drain(&cur(&t));
        let _ = e.drain(&cur(&t));
    }

    #[test]
    fn digest_is_stable_across_models() {
        let t = trace();
        let mut digests = Vec::new();
        for m in CoreModel::ALL {
            let cfg = m.default_config();
            let mut e = m.engine(&cfg);
            let r = e.drain(&cur(&t));
            digests.push(e.digest(&r));
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "all models must agree on final state: {digests:?}"
        );
    }

    /// Longer trace with misses so the iCFP model has mid-episode state to
    /// checkpoint (slice entries, pending rallies, poisoned registers).
    fn missy_trace() -> Trace {
        let mut b = TraceBuilder::new("engine-ckpt-test");
        for k in 0..40u64 {
            b.push(DynInst::load(Reg::int(1), Reg::int(1), 0x100000 + k * 0x4000));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(2), Reg::int(1), 1));
            b.push(DynInst::store(Reg::int(2), Reg::int(3), 0x8000 + k * 8));
            b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(5), k));
        }
        b.build()
    }

    #[test]
    fn save_restore_mid_run_is_bit_identical_for_every_model() {
        let t = missy_trace();
        for m in CoreModel::ALL {
            let cfg = m.default_config();
            // Uninterrupted reference run.
            let reference = run_model(m, &cfg, &t);

            // Interrupted run: step some work, snapshot, restore into a
            // *fresh* engine, and finish there.
            let c = cur(&t);
            let mut first = m.engine(&cfg);
            for _ in 0..25 {
                if !first.step(&c) {
                    break;
                }
            }
            let snap = first.save().expect("save before drain");
            assert_eq!(snap.model, m);
            assert_eq!(snap.cycle, first.cycle());

            let mut second = m.engine(&cfg);
            second.restore(&snap).expect("restore");
            assert_eq!(second.cycle(), first.cycle(), "{m}");
            assert_eq!(second.processed(), first.processed(), "{m}");
            let resumed = second.drain(&c);

            assert_eq!(resumed.stats, reference.stats, "{m} stats diverged");
            assert_eq!(resumed.final_regs, reference.final_regs, "{m}");
            assert_eq!(resumed.final_mem, reference.final_mem, "{m}");
            assert_eq!(
                resumed.state_digest(),
                reference.state_digest(),
                "{m} digest diverged"
            );
        }
    }

    #[test]
    fn icfp_mid_episode_snapshot_resumes_exactly() {
        // Checkpoint while an advance episode is active (slice entries live,
        // rallies pending) — the hardest state to capture.
        let t = missy_trace();
        let cfg = CoreModel::Icfp.default_config();
        let reference = run_model(CoreModel::Icfp, &cfg, &t);

        let c = cur(&t);
        let mut machine = crate::icfp::IcfpMachine::new(&cfg);
        let mut snapped: Option<Vec<u8>> = None;
        while machine.step(&c) {
            if snapped.is_none() && machine.in_episode() {
                // A few more steps so slice entries exist beyond the trigger.
                for _ in 0..5 {
                    if !machine.step(&c) {
                        break;
                    }
                }
                assert!(machine.in_episode(), "still mid-episode");
                snapped = Some(serde::to_bytes(&machine));
            }
        }
        let bytes = snapped.expect("the trace must enter an episode");
        let resumed_machine: crate::icfp::IcfpMachine =
            serde::from_bytes(&bytes).expect("decode mid-episode snapshot");
        let mut m2 = resumed_machine;
        while m2.step(&c) {}
        let resumed = m2.finish(&c);
        assert_eq!(resumed.stats, reference.stats);
        assert_eq!(resumed.final_regs, reference.final_regs);
        assert_eq!(resumed.final_mem, reference.final_mem);
    }

    #[test]
    fn step_block_matches_per_step_stepping_for_every_model() {
        // Feed deliberately tiny (7-inst) slices so batched runs cross slice
        // boundaries mid-episode; results must be bit-identical to the
        // per-step reference for all models (whole-trace models ignore the
        // slice and finish on the first call).
        let t = missy_trace();
        for m in CoreModel::ALL {
            let cfg = m.default_config();
            let reference = run_model(m, &cfg, &t);
            let c = cur(&t);
            let s = c.arena_slice().expect("arena-backed cursor");
            let mut e = m.engine(&cfg);
            loop {
                let i = e.processed();
                let end = (i + 7).min(s.len());
                let alive = if i >= s.len() {
                    e.step_block(&c, &[], i, Cycle::MAX)
                } else {
                    e.step_block(&c, &s[i..end], i, Cycle::MAX)
                };
                if !alive {
                    break;
                }
            }
            let r = e.drain(&c);
            assert_eq!(r.stats, reference.stats, "{m} stats diverged");
            assert_eq!(
                r.state_digest(),
                reference.state_digest(),
                "{m} digest diverged"
            );
        }
    }

    #[test]
    fn step_block_honours_the_cycle_budget() {
        let t = missy_trace();
        let cfg = CoreModel::Icfp.default_config();
        let c = cur(&t);
        let s = c.arena_slice().expect("arena-backed cursor");
        let mut e = CoreModel::Icfp.engine(&cfg);
        let alive = e.step_block(&c, s, 0, 50);
        assert!(alive, "a 50-cycle budget cannot finish this trace");
        assert!(e.cycle() >= 50, "budget reached");
        assert!(e.processed() < s.len(), "run must be mid-trace");
        // Lifting the budget finishes the run.
        while e.step_block(&c, &s[e.processed().min(s.len())..], e.processed(), Cycle::MAX) {}
        let r = e.drain(&c);
        assert_eq!(r.stats.instructions, t.len() as u64);
    }

    #[test]
    fn save_after_drain_and_model_mismatch_are_errors() {
        let t = trace();
        let cfg = CoreModel::Icfp.default_config();
        let mut e = CoreModel::Icfp.engine(&cfg);
        let snap = e.save().expect("fresh engine saves");
        let _ = e.drain(&cur(&t));
        assert!(e.save().is_err(), "drained engine must not save");

        let mut other = CoreModel::InOrder.engine(&CoreModel::InOrder.default_config());
        let err = other.restore(&snap).unwrap_err();
        assert!(err.contains("icfp"), "{err}");
    }

    #[test]
    fn corrupt_snapshot_bytes_are_rejected() {
        let cfg = CoreModel::Icfp.default_config();
        let e = CoreModel::Icfp.engine(&cfg);
        let mut snap = e.save().unwrap();
        snap.bytes.truncate(snap.bytes.len() / 2);
        let mut e2 = CoreModel::Icfp.engine(&cfg);
        assert!(e2.restore(&snap).is_err());
    }

    #[test]
    fn model_parsing_round_trips_and_lists_names() {
        for m in CoreModel::ALL {
            assert_eq!(CoreModel::parse(m.name()), Some(m));
        }
        assert_eq!(CoreModel::parse("bogus"), None);
        let names = CoreModel::valid_names();
        for m in CoreModel::ALL {
            assert!(names.contains(m.name()), "{names}");
        }
    }
}
