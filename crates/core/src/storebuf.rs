//! Store-forwarding structures: the address-hash-chained store buffer (the
//! paper's design, Section 3.2), its idealised and limited alternatives
//! (Figure 8), the Runahead cache used by Runahead/Multipass, and SLTP's
//! store redo log.
//!
//! ## Address-hash chaining
//!
//! Stores are named by *store sequence numbers* (SSNs).  The store buffer is
//! an indexed (non-associative) array; a small address-indexed *chain table*
//! maps a hash of the address to the SSN of the youngest store with that
//! hash, and every buffer entry carries an `SSNlink` pointing to the next
//! youngest store with the same hash.  A load forwards by walking the chain
//! rooted at its address's chain-table entry until it finds an address match,
//! reaches a store older than `SSNcomplete` (already drained to the cache —
//! a chain-terminating "null pointer"), or runs off the chain.  The first
//! probe is free (performed in parallel with the data-cache access); each
//! additional walk step is an *excess hop* that adds latency.

use crate::config::StoreBufferKind;
use icfp_isa::{Addr, InstSeq, Value};
use icfp_pipeline::PoisonMask;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A store sequence number (SSN): a monotonically increasing dynamic store
/// name.  SSNs start at 1 so that 0 can mean "no store".
pub type Ssn = u64;

/// One buffered store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreEntry {
    /// The store's SSN.
    pub ssn: Ssn,
    /// Dynamic sequence number of the store instruction in the trace.
    pub seq: InstSeq,
    /// Store address.
    pub addr: Addr,
    /// Store data (meaningful only when `poison` is clean).
    pub value: Value,
    /// Poison state of the store's *data* operand.
    pub poison: PoisonMask,
    /// SSN of the next-youngest store with the same address hash (0 = none).
    pub ssn_link: Ssn,
}

/// Result of a forwarding probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardResult {
    /// The matching store, if any (youngest older-than-the-load store to the
    /// same address still in the buffer).
    pub store: Option<StoreEntry>,
    /// Excess chain hops taken beyond the free first probe.
    pub excess_hops: u64,
    /// For [`StoreBufferKind::IndexedLimited`]: the probe hit the chain table
    /// but the indexed store's address did not match, so the pipeline must
    /// stall until that store drains.
    pub must_stall: bool,
}

/// Error returned when the buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreBufferFull;

impl std::fmt::Display for StoreBufferFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store buffer is full")
    }
}

impl std::error::Error for StoreBufferFull {}

/// The advance store buffer.  One implementation serves the three
/// organisations compared in Figure 8 (chained, idealised fully-associative,
/// indexed with limited forwarding); the organisation only changes how
/// forwarding probes behave, not what is buffered.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainedStoreBuffer {
    kind: StoreBufferKind,
    capacity: usize,
    /// Entries ordered by SSN (front = oldest still-buffered store).
    entries: VecDeque<StoreEntry>,
    /// Chain table: address hash → youngest SSN with that hash (0 = none).
    chain_table: Vec<Ssn>,
    /// SSN that will be assigned to the next store (SSNtail + 1).
    next_ssn: Ssn,
    /// Youngest SSN whose store has drained to the data cache (SSNcomplete).
    ssn_complete: Ssn,
    /// Total excess hops taken by forwarding probes.
    total_excess_hops: u64,
    /// Number of forwarding probes.
    probes: u64,
}

impl ChainedStoreBuffer {
    /// Creates a store buffer of the given organisation.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `chain_table_entries` is zero.
    pub fn new(kind: StoreBufferKind, capacity: usize, chain_table_entries: usize) -> Self {
        assert!(capacity > 0, "store buffer capacity must be positive");
        assert!(chain_table_entries > 0, "chain table must have entries");
        ChainedStoreBuffer {
            kind,
            capacity,
            entries: VecDeque::with_capacity(capacity),
            chain_table: vec![0; chain_table_entries],
            next_ssn: 1,
            ssn_complete: 0,
            total_excess_hops: 0,
            probes: 0,
        }
    }

    /// The buffer organisation.
    pub fn kind(&self) -> StoreBufferKind {
        self.kind
    }

    /// Number of stores currently buffered (allocated and not yet drained).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the buffer cannot accept another store.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The SSN of the youngest allocated store (`SSNtail`); 0 if none ever.
    pub fn ssn_tail(&self) -> Ssn {
        self.next_ssn - 1
    }

    /// The SSN of the youngest store already written to the cache
    /// (`SSNcomplete`).
    pub fn ssn_complete(&self) -> Ssn {
        self.ssn_complete
    }

    /// Total excess hops accumulated by chained forwarding.
    pub fn total_excess_hops(&self) -> u64 {
        self.total_excess_hops
    }

    /// Average excess hops per probe.
    pub fn hops_per_probe(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.total_excess_hops as f64 / self.probes as f64
        }
    }

    fn hash(&self, addr: Addr) -> usize {
        ((addr >> 3) as usize) % self.chain_table.len()
    }

    /// Allocates a store, chaining it into its address-hash chain.  The data
    /// may be poisoned (unknown); the *address* must be known — stores with
    /// poisoned addresses cannot be chained and must stall the pipeline
    /// (Section 3.2), which the core models handle before calling this.
    ///
    /// # Errors
    ///
    /// Returns [`StoreBufferFull`] if the buffer has no free entry.
    pub fn push(
        &mut self,
        seq: InstSeq,
        addr: Addr,
        value: Value,
        poison: PoisonMask,
    ) -> Result<Ssn, StoreBufferFull> {
        if self.is_full() {
            return Err(StoreBufferFull);
        }
        let ssn = self.next_ssn;
        self.next_ssn += 1;
        let h = self.hash(addr);
        let link = self.chain_table[h];
        self.chain_table[h] = ssn;
        self.entries.push_back(StoreEntry {
            ssn,
            seq,
            addr,
            value,
            poison,
            ssn_link: link,
        });
        Ok(ssn)
    }

    fn entry_by_ssn(&self, ssn: Ssn) -> Option<&StoreEntry> {
        if ssn == 0 || ssn <= self.ssn_complete {
            return None;
        }
        let front_ssn = self.entries.front()?.ssn;
        if ssn < front_ssn {
            return None;
        }
        let idx = (ssn - front_ssn) as usize;
        self.entries.get(idx)
    }

    /// Forwarding probe for a load to `addr` whose *store colour* is
    /// `color` — the SSN of the youngest store older than the load in program
    /// order.  Stores younger than the colour are skipped (they are younger
    /// than the load; rallying loads simply walk past them, Section 3.2).
    pub fn forward(&mut self, addr: Addr, color: Ssn) -> ForwardResult {
        self.probes += 1;
        match self.kind {
            StoreBufferKind::FullyAssociative => {
                let store = self
                    .entries
                    .iter()
                    .rev()
                    .find(|e| e.ssn <= color && e.addr == addr)
                    .copied();
                ForwardResult {
                    store,
                    excess_hops: 0,
                    must_stall: false,
                }
            }
            StoreBufferKind::IndexedLimited => {
                // Only the chain-table root is examined.  If it points at an
                // in-buffer store with a different address, forwarding cannot
                // be ruled out and the pipeline must stall.
                let root = self.chain_table[self.hash(addr)];
                match self.entry_by_ssn(root) {
                    None => ForwardResult {
                        store: None,
                        excess_hops: 0,
                        must_stall: false,
                    },
                    Some(e) if e.addr == addr && e.ssn <= color => ForwardResult {
                        store: Some(*e),
                        excess_hops: 0,
                        must_stall: false,
                    },
                    Some(_) => ForwardResult {
                        store: None,
                        excess_hops: 0,
                        must_stall: true,
                    },
                }
            }
            StoreBufferKind::Chained => {
                let mut hops = 0u64;
                let mut first_probe = true;
                let mut ssn = self.chain_table[self.hash(addr)];
                let mut found = None;
                while let Some(e) = self.entry_by_ssn(ssn) {
                    if !first_probe {
                        hops += 1;
                    }
                    first_probe = false;
                    if e.ssn <= color && e.addr == addr {
                        found = Some(*e);
                        break;
                    }
                    ssn = e.ssn_link;
                }
                self.total_excess_hops += hops;
                ForwardResult {
                    store: found,
                    excess_hops: hops,
                    must_stall: false,
                }
            }
        }
    }

    /// Updates the data of the store with dynamic sequence number `seq`
    /// (a rallying slice store whose value has just been computed), clearing
    /// its poison.  Returns true if the store was found.
    pub fn resolve_value(&mut self, seq: InstSeq, value: Value) -> bool {
        for e in self.entries.iter_mut() {
            if e.seq == seq {
                e.value = value;
                e.poison = PoisonMask::CLEAN;
                return true;
            }
        }
        false
    }

    /// Re-poisons the store with dynamic sequence number `seq` (its data
    /// turned out to depend on a still-pending miss during a rally).
    pub fn repoison(&mut self, seq: InstSeq, poison: PoisonMask) -> bool {
        for e in self.entries.iter_mut() {
            if e.seq == seq {
                e.poison = poison;
                return true;
            }
        }
        false
    }

    /// Drains (in program order) every store whose dynamic sequence number is
    /// `< completed_seq` and whose data is not poisoned, stopping at the first
    /// store that cannot drain.  Returns the drained `(addr, value)` pairs so
    /// the caller can write them to the data cache / architectural memory.
    ///
    /// Allocates a fresh `Vec` per call; the simulation hot path uses
    /// [`ChainedStoreBuffer::drain_completed_into`] with a reused scratch
    /// buffer instead.
    pub fn drain_completed(&mut self, completed_seq: InstSeq) -> Vec<(Addr, Value)> {
        let mut drained = Vec::new();
        self.drain_completed_into(completed_seq, &mut drained);
        drained
    }

    /// Zero-allocation form of [`ChainedStoreBuffer::drain_completed`]:
    /// appends the drained `(addr, value)` pairs to `out` (which the caller
    /// clears), reusing its capacity across cycles.
    pub fn drain_completed_into(&mut self, completed_seq: InstSeq, out: &mut Vec<(Addr, Value)>) {
        while let Some(front) = self.entries.front() {
            if front.seq < completed_seq && front.poison.is_clean() {
                let e = self.entries.pop_front().expect("front exists");
                self.ssn_complete = e.ssn;
                // Clean up chain-table roots that point at drained stores.
                let h = self.hash(e.addr);
                if self.chain_table[h] == e.ssn {
                    self.chain_table[h] = 0;
                }
                out.push((e.addr, e.value));
            } else {
                break;
            }
        }
    }

    /// Drains everything unconditionally (end of an episode where all stores
    /// are known complete).  Poisoned stores are dropped — callers only do
    /// this after a squash, when those stores are architecturally dead.
    ///
    /// Allocating wrapper over [`ChainedStoreBuffer::drain_all_into`].
    pub fn drain_all(&mut self) -> Vec<(Addr, Value)> {
        let mut drained = Vec::new();
        self.drain_all_into(&mut drained);
        drained
    }

    /// Zero-allocation form of [`ChainedStoreBuffer::drain_all`]: appends to
    /// `out` (which the caller clears), reusing its capacity.
    pub fn drain_all_into(&mut self, out: &mut Vec<(Addr, Value)>) {
        while let Some(e) = self.entries.pop_front() {
            self.ssn_complete = e.ssn;
            if e.poison.is_clean() {
                out.push((e.addr, e.value));
            }
        }
        for slot in &mut self.chain_table {
            *slot = 0;
        }
    }

    /// Iterates over the buffered stores, oldest first.  Double-ended so
    /// consumers can scan youngest-first for forwarding.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &StoreEntry> {
        self.entries.iter()
    }
}

/// The Runahead cache (R$): a small direct-mapped, best-effort structure that
/// advance stores write and advance loads read during Runahead/Multipass
/// episodes.  It is *not* architectural — evictions silently lose data, which
/// is acceptable because Runahead discards all advance results anyway.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunaheadCache {
    entries: Vec<Option<(Addr, Value, PoisonMask)>>,
}

impl RunaheadCache {
    /// Creates a runahead cache with `entries` direct-mapped word entries.
    pub fn new(entries: usize) -> Self {
        RunaheadCache {
            entries: vec![None; entries.max(1)],
        }
    }

    fn index(&self, addr: Addr) -> usize {
        ((addr >> 3) as usize) % self.entries.len()
    }

    /// Records an advance store.
    pub fn write(&mut self, addr: Addr, value: Value, poison: PoisonMask) {
        let i = self.index(addr);
        self.entries[i] = Some((addr & !7, value, poison));
    }

    /// Best-effort forwarding for an advance load.
    pub fn read(&self, addr: Addr) -> Option<(Value, PoisonMask)> {
        let i = self.index(addr);
        match self.entries[i] {
            Some((a, v, p)) if a == (addr & !7) => Some((v, p)),
            _ => None,
        }
    }

    /// Clears the cache (end of a runahead episode).
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }
}

/// SLTP's store redo log (SRL): a simple FIFO of advance stores that must be
/// drained to the data cache, in program order, before tail execution can
/// resume after a rally (Section 4 / Gandhi et al.).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreRedoLog {
    entries: VecDeque<(InstSeq, Addr, Value, PoisonMask)>,
    capacity: usize,
}

impl StoreRedoLog {
    /// Creates an SRL with the given capacity.
    pub fn new(capacity: usize) -> Self {
        StoreRedoLog {
            entries: VecDeque::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Number of logged stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the log is full (forces SLTP to stall its advance mode).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends a store.
    ///
    /// # Errors
    ///
    /// Returns [`StoreBufferFull`] if the log is full.
    pub fn push(
        &mut self,
        seq: InstSeq,
        addr: Addr,
        value: Value,
        poison: PoisonMask,
    ) -> Result<(), StoreBufferFull> {
        if self.is_full() {
            return Err(StoreBufferFull);
        }
        self.entries.push_back((seq, addr, value, poison));
        Ok(())
    }

    /// Resolves the value of a poisoned store during slice re-execution.
    pub fn resolve_value(&mut self, seq: InstSeq, value: Value) -> bool {
        for e in self.entries.iter_mut() {
            if e.0 == seq {
                e.2 = value;
                e.3 = PoisonMask::CLEAN;
                return true;
            }
        }
        false
    }

    /// Drains the whole log in program order, returning the `(seq, addr,
    /// value)` triples.  Entries still poisoned at drain time are returned
    /// with their stale value and must have been resolved by the caller
    /// beforehand (SLTP interleaves SRL drain with slice re-execution).
    pub fn drain(&mut self) -> Vec<(InstSeq, Addr, Value)> {
        self.entries.drain(..).map(|(s, a, v, _)| (s, a, v)).collect()
    }

    /// Iterates over logged stores, oldest first.  Double-ended so consumers
    /// can scan youngest-first for forwarding.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &(InstSeq, Addr, Value, PoisonMask)> {
        self.entries.iter()
    }
}

/// Idealised fully-associative store buffer (Figure 8 comparison point).
pub type AssocStoreBuffer = ChainedStoreBuffer;

/// Indexed store buffer with limited forwarding (Figure 8 comparison point).
pub type LimitedStoreBuffer = ChainedStoreBuffer;

#[cfg(test)]
mod tests {
    use super::*;

    fn chained(cap: usize, ct: usize) -> ChainedStoreBuffer {
        ChainedStoreBuffer::new(StoreBufferKind::Chained, cap, ct)
    }

    #[test]
    fn push_forward_basic_match() {
        let mut sb = chained(8, 64);
        sb.push(0, 0x40, 111, PoisonMask::CLEAN).unwrap();
        sb.push(1, 0x48, 222, PoisonMask::CLEAN).unwrap();
        let f = sb.forward(0x40, sb.ssn_tail());
        assert_eq!(f.store.unwrap().value, 111);
        assert!(!f.must_stall);
        let miss = sb.forward(0x80, sb.ssn_tail());
        assert!(miss.store.is_none());
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut sb = chained(8, 64);
        sb.push(0, 0x40, 1, PoisonMask::CLEAN).unwrap();
        sb.push(1, 0x40, 2, PoisonMask::CLEAN).unwrap();
        sb.push(2, 0x40, 3, PoisonMask::CLEAN).unwrap();
        let f = sb.forward(0x40, sb.ssn_tail());
        assert_eq!(f.store.unwrap().value, 3);
    }

    #[test]
    fn store_colour_hides_younger_stores() {
        // Rallying loads follow the chain past stores younger than themselves.
        let mut sb = chained(8, 64);
        let s1 = sb.push(0, 0x40, 1, PoisonMask::CLEAN).unwrap();
        let _s2 = sb.push(5, 0x40, 2, PoisonMask::CLEAN).unwrap();
        let f = sb.forward(0x40, s1); // load older than the second store
        assert_eq!(f.store.unwrap().value, 1);
        assert_eq!(f.excess_hops, 1, "walking past the younger store costs a hop");
    }

    #[test]
    fn hash_collisions_cost_hops_but_still_forward() {
        // Chain table with a single entry: everything collides.
        let mut sb = chained(8, 1);
        sb.push(0, 0x40, 1, PoisonMask::CLEAN).unwrap();
        sb.push(1, 0x80, 2, PoisonMask::CLEAN).unwrap();
        sb.push(2, 0xC0, 3, PoisonMask::CLEAN).unwrap();
        let f = sb.forward(0x40, sb.ssn_tail());
        assert_eq!(f.store.unwrap().value, 1);
        assert_eq!(f.excess_hops, 2);
        assert!(sb.hops_per_probe() > 0.0);
    }

    #[test]
    fn poisoned_store_forwards_its_poison() {
        let mut sb = chained(8, 64);
        sb.push(0, 0x40, 0, PoisonMask::bit(2)).unwrap();
        let f = sb.forward(0x40, sb.ssn_tail());
        assert!(f.store.unwrap().poison.is_poisoned());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut sb = chained(2, 16);
        sb.push(0, 0x0, 0, PoisonMask::CLEAN).unwrap();
        sb.push(1, 0x8, 0, PoisonMask::CLEAN).unwrap();
        assert!(sb.is_full());
        assert_eq!(sb.push(2, 0x10, 0, PoisonMask::CLEAN), Err(StoreBufferFull));
    }

    #[test]
    fn drain_respects_program_order_and_poison() {
        let mut sb = chained(8, 64);
        sb.push(0, 0x40, 1, PoisonMask::CLEAN).unwrap();
        sb.push(1, 0x48, 2, PoisonMask::bit(0)).unwrap();
        sb.push(2, 0x50, 3, PoisonMask::CLEAN).unwrap();
        // Only the first store can drain: the second is poisoned and blocks
        // the third (program order).
        let drained = sb.drain_completed(10);
        assert_eq!(drained, vec![(0x40, 1)]);
        assert_eq!(sb.len(), 2);
        // Resolve the poisoned store; now both drain.
        assert!(sb.resolve_value(1, 22));
        let drained = sb.drain_completed(10);
        assert_eq!(drained, vec![(0x48, 22), (0x50, 3)]);
        assert!(sb.is_empty());
    }

    #[test]
    fn drain_stops_at_incomplete_seq() {
        let mut sb = chained(8, 64);
        sb.push(5, 0x40, 1, PoisonMask::CLEAN).unwrap();
        sb.push(9, 0x48, 2, PoisonMask::CLEAN).unwrap();
        let drained = sb.drain_completed(9);
        assert_eq!(drained.len(), 1);
        assert_eq!(sb.len(), 1);
    }

    #[test]
    fn drain_into_is_equivalent_to_allocating_drain() {
        // Two identical buffers, one drained through the allocating API and
        // one through the scratch-buffer API: outputs and end states agree.
        let fill = |sb: &mut ChainedStoreBuffer| {
            for k in 0..12u64 {
                let poison = if k % 5 == 3 {
                    PoisonMask::bit(0)
                } else {
                    PoisonMask::CLEAN
                };
                sb.push(k, 0x40 + (k % 6) * 8, k * 10, poison).unwrap();
            }
        };
        let mut a = chained(16, 64);
        let mut b = chained(16, 64);
        fill(&mut a);
        fill(&mut b);
        let mut scratch = Vec::new();
        b.drain_completed_into(8, &mut scratch);
        assert_eq!(a.drain_completed(8), scratch);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.ssn_tail(), b.ssn_tail());
        scratch.clear();
        b.drain_all_into(&mut scratch);
        assert_eq!(a.drain_all(), scratch);
        assert!(a.is_empty() && b.is_empty());
        // Both paths must also leave forwarding in the same (empty) state.
        assert!(a.forward(0x40, a.ssn_tail()).store.is_none());
        assert!(b.forward(0x40, b.ssn_tail()).store.is_none());
    }

    #[test]
    fn drain_scratch_capacity_is_reused_across_cycles() {
        // Steady-state guarantee for the simulation hot loop: after a warm-up
        // round, repeated push/drain cycles through the same scratch buffer
        // never grow it again — no per-cycle heap allocation.
        let mut sb = chained(32, 64);
        let mut scratch: Vec<(u64, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut round = |sb: &mut ChainedStoreBuffer, scratch: &mut Vec<(u64, u64)>| {
            for _ in 0..24u64 {
                sb.push(seq, 0x40 + (seq % 16) * 8, seq, PoisonMask::CLEAN)
                    .unwrap();
                seq += 1;
            }
            scratch.clear();
            sb.drain_completed_into(seq, scratch);
            assert_eq!(scratch.len(), 24);
        };
        round(&mut sb, &mut scratch);
        let warmed = scratch.capacity();
        for _ in 0..100 {
            round(&mut sb, &mut scratch);
            assert_eq!(
                scratch.capacity(),
                warmed,
                "drain scratch must not reallocate in steady state"
            );
        }
    }

    #[test]
    fn drained_stores_terminate_chains() {
        let mut sb = chained(8, 64);
        sb.push(0, 0x40, 1, PoisonMask::CLEAN).unwrap();
        sb.drain_completed(1);
        let f = sb.forward(0x40, sb.ssn_tail());
        assert!(f.store.is_none(), "drained store must act as a null pointer");
    }

    #[test]
    fn fully_associative_never_hops() {
        let mut sb = ChainedStoreBuffer::new(StoreBufferKind::FullyAssociative, 8, 1);
        sb.push(0, 0x40, 1, PoisonMask::CLEAN).unwrap();
        sb.push(1, 0x80, 2, PoisonMask::CLEAN).unwrap();
        sb.push(2, 0xC0, 3, PoisonMask::CLEAN).unwrap();
        let f = sb.forward(0x40, sb.ssn_tail());
        assert_eq!(f.store.unwrap().value, 1);
        assert_eq!(f.excess_hops, 0);
    }

    #[test]
    fn limited_forwarding_stalls_on_root_mismatch() {
        let mut sb = ChainedStoreBuffer::new(StoreBufferKind::IndexedLimited, 8, 1);
        sb.push(0, 0x40, 1, PoisonMask::CLEAN).unwrap();
        sb.push(1, 0x80, 2, PoisonMask::CLEAN).unwrap();
        // Root of the single chain-table entry is the store to 0x80; a load to
        // 0x40 sees a mismatching root and must stall.
        let f = sb.forward(0x40, sb.ssn_tail());
        assert!(f.must_stall);
        assert!(f.store.is_none());
        // A load to the root's own address forwards fine.
        let ok = sb.forward(0x80, sb.ssn_tail());
        assert_eq!(ok.store.unwrap().value, 2);
        assert!(!ok.must_stall);
    }

    #[test]
    fn repoison_and_drain_all() {
        let mut sb = chained(8, 64);
        sb.push(0, 0x40, 1, PoisonMask::CLEAN).unwrap();
        sb.push(1, 0x48, 2, PoisonMask::CLEAN).unwrap();
        assert!(sb.repoison(1, PoisonMask::bit(1)));
        let drained = sb.drain_all();
        assert_eq!(drained, vec![(0x40, 1)], "poisoned store dropped on squash drain");
        assert!(sb.is_empty());
        assert_eq!(sb.forward(0x40, sb.ssn_tail()).store, None);
    }

    #[test]
    fn runahead_cache_best_effort() {
        let mut rc = RunaheadCache::new(4);
        rc.write(0x40, 7, PoisonMask::CLEAN);
        assert_eq!(rc.read(0x40), Some((7, PoisonMask::CLEAN)));
        assert_eq!(rc.read(0x48), None);
        // A colliding write silently evicts.
        rc.write(0x40 + 4 * 8, 9, PoisonMask::CLEAN);
        assert_eq!(rc.read(0x40), None);
        rc.clear();
        assert_eq!(rc.read(0x40 + 4 * 8), None);
    }

    #[test]
    fn runahead_cache_poison_propagates() {
        let mut rc = RunaheadCache::new(16);
        rc.write(0x100, 0, PoisonMask::bit(0));
        let (_, p) = rc.read(0x100).unwrap();
        assert!(p.is_poisoned());
    }

    #[test]
    fn srl_fifo_order_and_capacity() {
        let mut srl = StoreRedoLog::new(2);
        srl.push(0, 0x40, 1, PoisonMask::CLEAN).unwrap();
        srl.push(1, 0x48, 2, PoisonMask::CLEAN).unwrap();
        assert!(srl.is_full());
        assert!(srl.push(2, 0x50, 3, PoisonMask::CLEAN).is_err());
        let drained = srl.drain();
        assert_eq!(drained, vec![(0, 0x40, 1), (1, 0x48, 2)]);
        assert!(srl.is_empty());
    }

    #[test]
    fn srl_resolve_value() {
        let mut srl = StoreRedoLog::new(4);
        srl.push(3, 0x40, 0, PoisonMask::bit(0)).unwrap();
        assert!(srl.resolve_value(3, 99));
        assert!(!srl.resolve_value(4, 1));
        let drained = srl.drain();
        assert_eq!(drained[0].2, 99);
    }
}
