//! Pipeline-level configuration shared by all core models.

use serde::{Deserialize, Serialize};

/// Front-end / issue configuration of the simulated 2-way in-order pipeline
/// (paper Table 1: "10 stages: 3 I$, 1 decode, 1 reg-read, 1 ALU, 3 D$,
/// 1 reg-write.  2-way superscalar, 2 integer, 1 fp/load/store/branch").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Fetch/issue width (instructions per cycle).
    pub width: usize,
    /// Number of integer issue ports.
    pub int_ports: usize,
    /// Number of shared fp/load/store/branch issue ports.
    pub mem_fp_br_ports: usize,
    /// Cycles from a resolved mis-predicted branch to the first correct-path
    /// instruction issuing (front-end refill: 3 I$ + decode + reg-read).
    pub branch_redirect_penalty: u64,
    /// Number of front-end stages before execute; used as the restart penalty
    /// when an advance mode ends and fetch resumes from a checkpoint.
    pub frontend_depth: u64,
    /// Capacity of the baseline associative store buffer (Table 1:
    /// "32-entry associative store buffer").
    pub baseline_store_buffer: usize,
}

impl PipelineConfig {
    /// The paper's Table 1 pipeline configuration.
    pub fn paper_default() -> Self {
        PipelineConfig {
            width: 2,
            int_ports: 2,
            mem_fp_br_ports: 1,
            branch_redirect_penalty: 6,
            frontend_depth: 5,
            baseline_store_buffer: 32,
        }
    }

    /// A single-issue configuration used by some unit tests to make hand
    /// calculations trivial.
    pub fn scalar_for_tests() -> Self {
        PipelineConfig {
            width: 1,
            int_ports: 1,
            mem_fp_br_ports: 1,
            branch_redirect_penalty: 6,
            frontend_depth: 5,
            baseline_store_buffer: 32,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_two_way() {
        let c = PipelineConfig::paper_default();
        assert_eq!(c.width, 2);
        assert_eq!(c.int_ports, 2);
        assert_eq!(c.mem_fp_br_ports, 1);
        assert!(c.branch_redirect_penalty >= c.frontend_depth);
    }

    #[test]
    fn scalar_config_is_single_issue() {
        assert_eq!(PipelineConfig::scalar_for_tests().width, 1);
    }
}
