//! Issue-slot and port scheduling for the 2-way in-order pipeline.
//!
//! In-order issue means issue cycles are non-decreasing in program order, so
//! only a small window of per-cycle counters needs to be retained.  The
//! schedule enforces:
//!
//! * total issue width per cycle (2),
//! * integer-port occupancy (2 integer ALU/multiply slots),
//! * the shared fp/load/store/branch port (1 slot).
//!
//! Storage is a fixed ring of per-cycle slot counters sliding forward with
//! the requests (every caller asks for a cycle at or after the last one
//! granted, see [`IssueSchedule::issue`]), so allocation is O(1) per
//! instruction — this sits on the per-instruction hot path of every core
//! model and used to be a `BTreeMap` probe per issued instruction.

use icfp_isa::{Cycle, OpClass};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct SlotUse {
    total: u8,
    int: u8,
    mem_fp_br: u8,
}

/// Number of per-cycle counters retained.  Only cycles at or after the last
/// granted cycle can be probed again (issue is in order), so the window just
/// has to cover one grant's worth of forward probing — the ring slides as the
/// probe advances, and 64 cycles of lookbehind is far more than the zero the
/// contract requires.
const WINDOW: usize = 64;

/// Tracks issue-slot usage per cycle and finds the earliest legal issue cycle
/// for each instruction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IssueSchedule {
    width: u8,
    int_ports: u8,
    mem_fp_br_ports: u8,
    /// Per-cycle counters for cycles `[base, base + WINDOW)`; slot
    /// `cycle % WINDOW`.  Cycles before `base` are frozen: in-order issue
    /// guarantees they are never probed again.
    ring: Vec<SlotUse>,
    base: Cycle,
}

impl IssueSchedule {
    /// Creates a schedule with the given width and port counts.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(width: usize, int_ports: usize, mem_fp_br_ports: usize) -> Self {
        assert!(width > 0 && int_ports > 0 && mem_fp_br_ports > 0);
        IssueSchedule {
            width: width as u8,
            int_ports: int_ports as u8,
            mem_fp_br_ports: mem_fp_br_ports as u8,
            ring: vec![SlotUse::default(); WINDOW],
            base: 0,
        }
    }

    /// Creates the paper's 2-wide / 2-int / 1-mem-fp-br schedule.
    pub fn paper_default() -> Self {
        Self::new(2, 2, 1)
    }

    #[inline]
    fn slot(&self, cycle: Cycle) -> &SlotUse {
        &self.ring[(cycle % WINDOW as u64) as usize]
    }

    #[inline]
    fn has_room(&self, cycle: Cycle, class: OpClass) -> bool {
        let u = self.slot(cycle);
        if u.total >= self.width {
            return false;
        }
        if class.uses_int_port() {
            u.int < self.int_ports
        } else {
            u.mem_fp_br < self.mem_fp_br_ports
        }
    }

    /// Slides the window forward so `cycle` is inside it, clearing the
    /// counters of the cycles that enter the window.
    #[inline]
    fn cover(&mut self, cycle: Cycle) {
        let end = self.base + WINDOW as u64;
        if cycle < end {
            return;
        }
        if cycle - end >= WINDOW as u64 {
            // Far jump: every retained counter falls out of the window.
            self.ring.iter_mut().for_each(|u| *u = SlotUse::default());
            self.base = cycle - (WINDOW as u64 - 1);
        } else {
            // Slide incrementally, vacating the slots that wrap around.
            for c in end..=cycle {
                self.ring[(c % WINDOW as u64) as usize] = SlotUse::default();
            }
            self.base = cycle - (WINDOW as u64 - 1);
        }
    }

    /// Reserves an issue slot for an instruction of class `class` at the
    /// earliest cycle `>= earliest` with room, and returns that cycle.
    ///
    /// In-order contract: `earliest` must be at or after the previously
    /// granted cycle (every core routes requests through a monotonic issue
    /// frontier).  Requests below the retained window are clamped to it.
    pub fn issue(&mut self, earliest: Cycle, class: OpClass) -> Cycle {
        let mut cycle = earliest.max(self.base);
        self.cover(cycle);
        while !self.has_room(cycle, class) {
            cycle += 1;
            self.cover(cycle);
        }
        let u = &mut self.ring[(cycle % WINDOW as u64) as usize];
        u.total += 1;
        if class.uses_int_port() {
            u.int += 1;
        } else {
            u.mem_fp_br += 1;
        }
        cycle
    }

    /// Number of instructions issued at `cycle`, if it is still inside the
    /// retained window (cycles that slid out report zero).
    pub fn issued_at(&self, cycle: Cycle) -> usize {
        if cycle >= self.base && cycle < self.base + WINDOW as u64 {
            self.slot(cycle).total as usize
        } else {
            0
        }
    }

    /// Resets the schedule (between runs).
    pub fn reset(&mut self) {
        self.ring.iter_mut().for_each(|u| *u = SlotUse::default());
        self.base = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_wide_issue_packs_two_per_cycle() {
        let mut s = IssueSchedule::paper_default();
        assert_eq!(s.issue(0, OpClass::IntAlu), 0);
        assert_eq!(s.issue(0, OpClass::IntAlu), 0);
        // Third integer op in the same cycle must slip.
        assert_eq!(s.issue(0, OpClass::IntAlu), 1);
    }

    #[test]
    fn single_mem_port_serializes_loads() {
        let mut s = IssueSchedule::paper_default();
        assert_eq!(s.issue(0, OpClass::Load), 0);
        assert_eq!(s.issue(0, OpClass::Load), 1);
        assert_eq!(s.issue(0, OpClass::Store), 2);
        assert_eq!(s.issue(0, OpClass::Branch), 3);
    }

    #[test]
    fn int_and_mem_share_total_width() {
        let mut s = IssueSchedule::paper_default();
        assert_eq!(s.issue(0, OpClass::IntAlu), 0);
        assert_eq!(s.issue(0, OpClass::Load), 0);
        // Width 2 exhausted even though an int port remains.
        assert_eq!(s.issue(0, OpClass::IntAlu), 1);
    }

    #[test]
    fn earliest_constraint_is_respected() {
        let mut s = IssueSchedule::paper_default();
        assert_eq!(s.issue(10, OpClass::IntAlu), 10);
        assert_eq!(s.issued_at(10), 1);
        assert_eq!(s.issued_at(9), 0);
    }

    #[test]
    fn scalar_schedule_is_one_per_cycle() {
        let mut s = IssueSchedule::new(1, 1, 1);
        assert_eq!(s.issue(0, OpClass::IntAlu), 0);
        assert_eq!(s.issue(0, OpClass::Load), 1);
        assert_eq!(s.issue(0, OpClass::IntAlu), 2);
    }

    #[test]
    fn pruning_does_not_lose_future_slots() {
        let mut s = IssueSchedule::paper_default();
        for i in 0..10_000u64 {
            s.issue(i, OpClass::IntAlu);
        }
        // Still works after the window has slid many times over.
        let c = s.issue(10_000, OpClass::IntAlu);
        assert!(c >= 10_000);
    }

    #[test]
    fn far_jumps_land_in_a_clean_window() {
        let mut s = IssueSchedule::paper_default();
        assert_eq!(s.issue(0, OpClass::IntAlu), 0);
        // Jump far past the window (several multiples of it): the target
        // cycle's counters must be vacated, not stale from a previous lap.
        assert_eq!(s.issue(1_000_003, OpClass::IntAlu), 1_000_003);
        assert_eq!(s.issue(1_000_003, OpClass::IntAlu), 1_000_003);
        assert_eq!(s.issue(1_000_003, OpClass::IntAlu), 1_000_004);
    }

    #[test]
    fn monotonic_dense_stream_matches_width() {
        // 2-wide: 1000 int ops from a monotonic frontier occupy exactly 500
        // cycles regardless of where the window slides.
        let mut s = IssueSchedule::paper_default();
        let mut frontier = 0;
        for _ in 0..1000 {
            frontier = s.issue(frontier, OpClass::IntAlu);
        }
        assert_eq!(frontier, 499);
    }

    #[test]
    fn reset_clears_usage() {
        let mut s = IssueSchedule::paper_default();
        s.issue(0, OpClass::IntAlu);
        s.reset();
        assert_eq!(s.issued_at(0), 0);
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        let _ = IssueSchedule::new(0, 1, 1);
    }
}
