//! Issue-slot and port scheduling for the 2-way in-order pipeline.
//!
//! In-order issue means issue cycles are non-decreasing in program order, so
//! only a small window of per-cycle counters needs to be retained.  The
//! schedule enforces:
//!
//! * total issue width per cycle (2),
//! * integer-port occupancy (2 integer ALU/multiply slots),
//! * the shared fp/load/store/branch port (1 slot).

use icfp_isa::{Cycle, OpClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct SlotUse {
    total: u8,
    int: u8,
    mem_fp_br: u8,
}

/// Tracks issue-slot usage per cycle and finds the earliest legal issue cycle
/// for each instruction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IssueSchedule {
    width: u8,
    int_ports: u8,
    mem_fp_br_ports: u8,
    used: BTreeMap<Cycle, SlotUse>,
    /// Cycles strictly before this have been pruned and can no longer accept
    /// instructions (in-order issue guarantees they never will be asked to).
    horizon: Cycle,
}

impl IssueSchedule {
    /// Creates a schedule with the given width and port counts.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(width: usize, int_ports: usize, mem_fp_br_ports: usize) -> Self {
        assert!(width > 0 && int_ports > 0 && mem_fp_br_ports > 0);
        IssueSchedule {
            width: width as u8,
            int_ports: int_ports as u8,
            mem_fp_br_ports: mem_fp_br_ports as u8,
            used: BTreeMap::new(),
            horizon: 0,
        }
    }

    /// Creates the paper's 2-wide / 2-int / 1-mem-fp-br schedule.
    pub fn paper_default() -> Self {
        Self::new(2, 2, 1)
    }

    fn has_room(&self, cycle: Cycle, class: OpClass) -> bool {
        let u = self.used.get(&cycle).copied().unwrap_or_default();
        if u.total >= self.width {
            return false;
        }
        if class.uses_int_port() {
            u.int < self.int_ports
        } else {
            u.mem_fp_br < self.mem_fp_br_ports
        }
    }

    /// Reserves an issue slot for an instruction of class `class` at the
    /// earliest cycle `>= earliest` with room, and returns that cycle.
    pub fn issue(&mut self, earliest: Cycle, class: OpClass) -> Cycle {
        let mut cycle = earliest.max(self.horizon);
        while !self.has_room(cycle, class) {
            cycle += 1;
        }
        let u = self.used.entry(cycle).or_default();
        u.total += 1;
        if class.uses_int_port() {
            u.int += 1;
        } else {
            u.mem_fp_br += 1;
        }
        // Prune old cycles occasionally to bound memory.
        if self.used.len() > 4096 {
            let keep_from = cycle.saturating_sub(64);
            self.used = self.used.split_off(&keep_from);
            self.horizon = self.horizon.max(keep_from);
        }
        cycle
    }

    /// Number of instructions issued at `cycle` so far.
    pub fn issued_at(&self, cycle: Cycle) -> usize {
        self.used.get(&cycle).map(|u| u.total as usize).unwrap_or(0)
    }

    /// Resets the schedule (between runs).
    pub fn reset(&mut self) {
        self.used.clear();
        self.horizon = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_wide_issue_packs_two_per_cycle() {
        let mut s = IssueSchedule::paper_default();
        assert_eq!(s.issue(0, OpClass::IntAlu), 0);
        assert_eq!(s.issue(0, OpClass::IntAlu), 0);
        // Third integer op in the same cycle must slip.
        assert_eq!(s.issue(0, OpClass::IntAlu), 1);
    }

    #[test]
    fn single_mem_port_serializes_loads() {
        let mut s = IssueSchedule::paper_default();
        assert_eq!(s.issue(0, OpClass::Load), 0);
        assert_eq!(s.issue(0, OpClass::Load), 1);
        assert_eq!(s.issue(0, OpClass::Store), 2);
        assert_eq!(s.issue(0, OpClass::Branch), 3);
    }

    #[test]
    fn int_and_mem_share_total_width() {
        let mut s = IssueSchedule::paper_default();
        assert_eq!(s.issue(0, OpClass::IntAlu), 0);
        assert_eq!(s.issue(0, OpClass::Load), 0);
        // Width 2 exhausted even though an int port remains.
        assert_eq!(s.issue(0, OpClass::IntAlu), 1);
    }

    #[test]
    fn earliest_constraint_is_respected() {
        let mut s = IssueSchedule::paper_default();
        assert_eq!(s.issue(10, OpClass::IntAlu), 10);
        assert_eq!(s.issued_at(10), 1);
        assert_eq!(s.issued_at(9), 0);
    }

    #[test]
    fn scalar_schedule_is_one_per_cycle() {
        let mut s = IssueSchedule::new(1, 1, 1);
        assert_eq!(s.issue(0, OpClass::IntAlu), 0);
        assert_eq!(s.issue(0, OpClass::Load), 1);
        assert_eq!(s.issue(0, OpClass::IntAlu), 2);
    }

    #[test]
    fn pruning_does_not_lose_future_slots() {
        let mut s = IssueSchedule::paper_default();
        for i in 0..10_000u64 {
            s.issue(i, OpClass::IntAlu);
        }
        // Still works after pruning.
        let c = s.issue(10_000, OpClass::IntAlu);
        assert!(c >= 10_000);
    }

    #[test]
    fn reset_clears_usage() {
        let mut s = IssueSchedule::paper_default();
        s.issue(0, OpClass::IntAlu);
        s.reset();
        assert_eq!(s.issued_at(0), 0);
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        let _ = IssueSchedule::new(0, 1, 1);
    }
}
