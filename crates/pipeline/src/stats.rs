//! Per-run statistics reported by every core model.

use icfp_isa::Value;
use serde::{Deserialize, Serialize};

/// Counters accumulated over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total cycles to retire the trace.
    pub cycles: u64,
    /// Architectural (committed) instructions.
    pub instructions: u64,
    /// Dynamic instructions processed during advance modes (committed or not).
    pub advance_instructions: u64,
    /// Instructions re-executed during rallies (iCFP/SLTP) or re-processed
    /// after a Runahead/Multipass squash.
    pub rally_instructions: u64,
    /// Number of advance episodes entered (checkpoints created).
    pub advance_episodes: u64,
    /// Number of rally passes performed.
    pub rally_passes: u64,
    /// Instructions diverted into a slice buffer.
    pub sliced_instructions: u64,
    /// Times the design fell back to "simple runahead" (resource exhaustion or
    /// a poisoned store address).
    pub simple_runahead_entries: u64,
    /// Branch mis-predictions paid.
    pub branch_mispredicts: u64,
    /// Loads that forwarded from a store buffer.
    pub store_forwards: u64,
    /// Excess store-buffer hops taken by chained forwarding (beyond the first
    /// free probe; paper Section 3.2 reports hops per load).
    pub chain_hops: u64,
    /// Loads issued to the memory hierarchy (demand, from this core).
    pub demand_loads: u64,
    /// Squashes caused by external-store signature hits (multiprocessor
    /// safety, paper Section 3.3).
    pub signature_squashes: u64,
    /// Cycles spent stalled because a structural resource (slice buffer,
    /// store buffer, MSHRs) was full.
    pub resource_stall_cycles: u64,
    /// Peak slice-buffer occupancy over the run (iCFP/SLTP; 0 otherwise).
    pub slice_peak: u64,
    /// Demand loads issued to the memory hierarchy (copied from `MemStats`).
    pub mem_loads: u64,
    /// Demand stores issued to the memory hierarchy (copied from `MemStats`).
    pub mem_stores: u64,
    /// L1 data-cache misses (copied from `MemStats` at the end of the run).
    pub l1d_misses: u64,
    /// L2 misses (copied from `MemStats` at the end of the run).
    pub l2_misses: u64,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Rally instructions per 1000 committed instructions (paper Table 2,
    /// "Rally/KI").
    pub fn rally_per_ki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.rally_instructions as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L1 data-cache misses per 1000 committed instructions.
    pub fn l1d_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l1d_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L2 misses per 1000 committed instructions.
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Excess store-buffer hops per demand load (paper Section 5.2).
    pub fn hops_per_load(&self) -> f64 {
        if self.demand_loads == 0 {
            0.0
        } else {
            self.chain_hops as f64 / self.demand_loads as f64
        }
    }
}

/// The result of simulating one trace on one core model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Core model name (e.g. `"in-order"`, `"icfp"`).
    pub core: String,
    /// Workload / trace name.
    pub workload: String,
    /// Timing and event counters.
    pub stats: RunStats,
    /// Final architectural register values (flat register-index order), used
    /// to check timing models against the golden functional model.
    pub final_regs: Vec<Value>,
    /// Final architectural memory image as sorted `(word address, value)`
    /// pairs, for the same purpose.
    pub final_mem: Vec<(u64, Value)>,
}

impl RunResult {
    /// Speedup of this run over a baseline run of the same workload
    /// (baseline cycles / this run's cycles).
    ///
    /// # Panics
    ///
    /// Panics if the two results are for different workloads.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        assert_eq!(
            self.workload, baseline.workload,
            "speedup comparison across different workloads"
        );
        if self.stats.cycles == 0 {
            return 0.0;
        }
        baseline.stats.cycles as f64 / self.stats.cycles as f64
    }

    /// Percent speedup over a baseline (the unit of Figures 5–8).
    pub fn percent_speedup_over(&self, baseline: &RunResult) -> f64 {
        (self.speedup_over(baseline) - 1.0) * 100.0
    }

    /// True if the final architectural state (registers + memory) matches
    /// another run's — the cross-model correctness check.
    pub fn state_matches(&self, other: &RunResult) -> bool {
        self.final_regs == other.final_regs && self.final_mem == other.final_mem
    }

    /// FNV-1a digest of the final architectural state (registers + memory),
    /// for cheap determinism / cross-model equivalence checks.
    pub fn state_digest(&self) -> u64 {
        let mut h = icfp_isa::Fnv1a::new();
        for &v in &self.final_regs {
            h.write_u64(v);
        }
        for &(a, v) in &self.final_mem {
            h.write_u64(a);
            h.write_u64(v);
        }
        h.finish()
    }
}

/// Geometric mean of a slice of speedups (the paper reports geometric means
/// over SPECfp, SPECint and all of SPEC2000).
///
/// Returns 1.0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(cycles: u64, instructions: u64) -> RunResult {
        RunResult {
            core: "x".into(),
            workload: "w".into(),
            stats: RunStats {
                cycles,
                instructions,
                ..RunStats::default()
            },
            final_regs: vec![],
            final_mem: vec![],
        }
    }

    #[test]
    fn ipc_and_rally_per_ki() {
        let mut s = RunStats {
            cycles: 200,
            instructions: 100,
            rally_instructions: 50,
            ..RunStats::default()
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.rally_per_ki() - 500.0).abs() < 1e-12);
        s.demand_loads = 10;
        s.chain_hops = 5;
        assert!((s.hops_per_load() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = RunStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.rally_per_ki(), 0.0);
        assert_eq!(s.hops_per_load(), 0.0);
    }

    #[test]
    fn speedup_over_baseline() {
        let base = result(200, 100);
        let fast = result(100, 100);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((fast.percent_speedup_over(&base) - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different workloads")]
    fn speedup_across_workloads_panics() {
        let mut a = result(10, 10);
        a.workload = "other".into();
        let b = result(10, 10);
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn state_matches_compares_regs_and_mem() {
        let mut a = result(1, 1);
        let mut b = result(2, 1);
        a.final_regs = vec![1, 2, 3];
        b.final_regs = vec![1, 2, 3];
        a.final_mem = vec![(8, 9)];
        b.final_mem = vec![(8, 9)];
        assert!(a.state_matches(&b));
        b.final_mem = vec![(8, 10)];
        assert!(!a.state_matches(&b));
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }
}
