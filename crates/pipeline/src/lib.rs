//! # icfp-pipeline — shared in-order pipeline substrate
//!
//! Everything the five core models (`icfp-core`) have in common lives here:
//!
//! * [`PoisonMask`] / [`PoisonAllocator`] / [`PoisonVec`] — the per-register /
//!   per-entry poison *bitvectors* of paper Section 3.4 (including the
//!   degenerate 1-bit case used by the baseline mechanisms) and the packed
//!   word-level poison plane bulk operations run on;
//! * [`TimedRegFile`] — a register file whose entries carry a value, a
//!   ready-cycle (scoreboard), a poison mask and a *last-writer sequence
//!   number* (the enhanced dependence-tracking scheme of Section 3.1), plus a
//!   single shadow-bitcell style checkpoint;
//! * [`IssueSchedule`] — 2-way superscalar issue-slot and port accounting
//!   (2 integer ports, 1 shared fp/load/store/branch port, Table 1);
//! * [`FetchEngine`] — fetch-bandwidth and branch-redirect modelling on top of
//!   the `icfp-bpred` predictors;
//! * [`RunStats`] / [`RunResult`] — the statistics every core reports.
//!
//! The pipeline model is *issue-time analytic*: instructions are processed in
//! program order and each is assigned an issue cycle that respects fetch
//! bandwidth, in-order issue, issue width, port conflicts, operand readiness
//! and memory timing.  For in-order machines (which never reorder issue) this
//! is cycle-accurate up to the fidelity of the latency model, and it keeps the
//! advance/rally mechanisms — the object of study — easy to express.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod frontend;
pub mod issue;
pub mod poison;
pub mod regfile;
pub mod stats;

pub use config::PipelineConfig;
pub use frontend::FetchEngine;
pub use issue::IssueSchedule;
pub use poison::{lane_range_mask, PoisonAllocator, PoisonMask, PoisonVec, POISON_LANES_PER_WORD};
pub use regfile::{Checkpoint, RegEntry, TimedRegFile};
pub use stats::{RunResult, RunStats};
