//! Checkpointed register files with poison and last-writer tracking.
//!
//! The iCFP paper's enhanced register dependence tracking (Section 3.1)
//! associates with each architectural register not only a poison bit (as
//! Runahead does) but also a *last-writer sequence number*: the distance from
//! the checkpoint of the most recent instruction to write the register.  At
//! writeback every advance instruction — poisoned or not — stamps its
//! destination with its own sequence number; during rallies a slice
//! instruction updates the main register file only if the register's
//! last-writer stamp equals its own sequence number, which prevents
//! write-after-write violations without renaming.
//!
//! Poison is stored as a packed [`PoisonVec`] *plane* (four registers per
//! `u64` word) rather than per-entry bits, so whole-file operations —
//! "any register poisoned?", "clear this returning miss's bits everywhere",
//! episode-end scrubbing — are word operations over `NUM_ARCH_REGS / 4`
//! words instead of per-register loops.

use crate::poison::{PoisonMask, PoisonVec};
use icfp_isa::{Cycle, InstSeq, Reg, Value, NUM_ARCH_REGS};
use serde::{Deserialize, Serialize};

/// One architectural register's simulator state (value, scoreboard and
/// last-writer stamp; the poison plane lives in [`TimedRegFile`] as a packed
/// [`PoisonVec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegEntry {
    /// Architectural value.
    pub value: Value,
    /// Cycle at which the value becomes available to dependents (scoreboard).
    pub ready_at: Cycle,
    /// Sequence number (distance from the checkpoint) of the last writer, or
    /// `None` if the register has not been written since the checkpoint.
    pub last_writer: Option<InstSeq>,
}

impl RegEntry {
    fn new(value: Value) -> Self {
        RegEntry {
            value,
            ready_at: 0,
            last_writer: None,
        }
    }
}

/// A register-file checkpoint (shadow-bitcell model: one snapshot supporting
/// create and restore, as both Runahead and iCFP require).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    values: Vec<Value>,
    /// Cycle at which the checkpoint was created.
    pub created_at: Cycle,
    /// Dynamic sequence number of the instruction at which it was created.
    pub at_seq: InstSeq,
}

/// A register file with values, readiness, a packed poison plane and
/// last-writer tracking, plus one checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedRegFile {
    regs: Vec<RegEntry>,
    poison: PoisonVec,
    checkpoint: Option<Checkpoint>,
}

impl Default for TimedRegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl TimedRegFile {
    /// Creates a register file with all registers holding deterministic
    /// initial values (matching [`icfp_isa::ArchState::new`]) and ready at
    /// cycle 0.
    pub fn new() -> Self {
        TimedRegFile {
            regs: (0..NUM_ARCH_REGS as u64)
                .map(|i| RegEntry::new(icfp_isa::exec::background_value(i.wrapping_mul(0x1001))))
                .collect(),
            poison: PoisonVec::new(NUM_ARCH_REGS),
            checkpoint: None,
        }
    }

    /// Creates a register file whose values are copied from an architectural
    /// snapshot (flat register index order).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not contain exactly one value per register.
    pub fn from_values(values: &[Value]) -> Self {
        assert_eq!(values.len(), NUM_ARCH_REGS, "snapshot must cover all registers");
        TimedRegFile {
            regs: values.iter().map(|&v| RegEntry::new(v)).collect(),
            poison: PoisonVec::new(NUM_ARCH_REGS),
            checkpoint: None,
        }
    }

    /// Read access to a register entry.
    pub fn entry(&self, r: Reg) -> &RegEntry {
        &self.regs[r.index()]
    }

    /// Mutable access to a register entry.
    pub fn entry_mut(&mut self, r: Reg) -> &mut RegEntry {
        &mut self.regs[r.index()]
    }

    /// The architectural value of `r`.
    pub fn value(&self, r: Reg) -> Value {
        self.regs[r.index()].value
    }

    /// The cycle at which `r`'s value is available.
    pub fn ready_at(&self, r: Reg) -> Cycle {
        self.regs[r.index()].ready_at
    }

    /// The poison mask of `r`.
    #[inline]
    pub fn poison(&self, r: Reg) -> PoisonMask {
        self.poison.get(r.index())
    }

    /// The last-writer stamp of `r`.
    pub fn last_writer(&self, r: Reg) -> Option<InstSeq> {
        self.regs[r.index()].last_writer
    }

    /// True if any register is poisoned.  One compare per packed word.
    pub fn any_poisoned(&self) -> bool {
        self.poison.any_poisoned()
    }

    /// Union of every register's poison mask (word-level OR reduce).
    pub fn poison_union(&self) -> PoisonMask {
        self.poison.union_all()
    }

    /// Read access to the packed poison plane.
    pub fn poison_plane(&self) -> &PoisonVec {
        &self.poison
    }

    /// Writes `r` as a normal (non-poisoned) result available at `ready_at`,
    /// stamping the last-writer sequence number.
    pub fn write(&mut self, r: Reg, value: Value, ready_at: Cycle, seq: InstSeq) {
        self.regs[r.index()] = RegEntry {
            value,
            ready_at,
            last_writer: Some(seq),
        };
        self.poison.clear_lane(r.index());
    }

    /// Poisons `r` with `mask`, stamping the last-writer sequence number.  The
    /// old value is retained (it is architecturally stale but harmless: any
    /// reader sees the poison).
    pub fn poison_write(&mut self, r: Reg, mask: PoisonMask, seq: InstSeq) {
        let e = &mut self.regs[r.index()];
        e.last_writer = Some(seq);
        e.ready_at = 0;
        self.poison.set(r.index(), mask);
    }

    /// Gated rally update (paper Section 3.1): writes `r` only if its
    /// last-writer stamp equals `seq`.  Returns true if the write was
    /// performed (and the register un-poisoned).
    pub fn rally_write(&mut self, r: Reg, value: Value, ready_at: Cycle, seq: InstSeq) -> bool {
        let e = &mut self.regs[r.index()];
        if e.last_writer == Some(seq) {
            e.value = value;
            e.ready_at = ready_at;
            self.poison.clear_lane(r.index());
            true
        } else {
            false
        }
    }

    /// Removes the given poison bits from every register (used when a miss
    /// returns under single-bit schemes that clear optimistically).  One AND
    /// per packed word.
    pub fn clear_poison_bits(&mut self, bits: PoisonMask) {
        self.poison.clear_bits(bits);
    }

    /// Clears all poison and last-writer state (end of an advance episode).
    pub fn clear_speculative_state(&mut self) {
        self.poison.clear_all();
        for e in &mut self.regs {
            e.last_writer = None;
        }
    }

    /// Creates the checkpoint (there is only one, as in the paper's
    /// shadow-bitcell design).  Overwrites any previous checkpoint.
    pub fn checkpoint(&mut self, now: Cycle, at_seq: InstSeq) {
        self.checkpoint = Some(Checkpoint {
            values: self.regs.iter().map(|e| e.value).collect(),
            created_at: now,
            at_seq,
        });
    }

    /// True if a checkpoint exists.
    pub fn has_checkpoint(&self) -> bool {
        self.checkpoint.is_some()
    }

    /// The current checkpoint, if any.
    pub fn checkpoint_info(&self) -> Option<&Checkpoint> {
        self.checkpoint.as_ref()
    }

    /// Restores register values from the checkpoint, clearing poison,
    /// last-writer and readiness state.  The checkpoint is consumed.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint exists.
    pub fn restore(&mut self, now: Cycle) {
        let ck = self
            .checkpoint
            .take()
            .expect("restore called without a checkpoint");
        for (e, v) in self.regs.iter_mut().zip(ck.values.iter()) {
            *e = RegEntry {
                value: *v,
                ready_at: now,
                last_writer: None,
            };
        }
        self.poison.clear_all();
    }

    /// Discards the checkpoint without restoring (successful completion of an
    /// advance/rally episode).
    pub fn release_checkpoint(&mut self) {
        self.checkpoint = None;
    }

    /// Snapshot of all architectural values in flat register-index order.
    pub fn values_snapshot(&self) -> Vec<Value> {
        self.regs.iter().map(|e| e.value).collect()
    }

    /// Number of currently poisoned registers (word-level count).
    pub fn poisoned_count(&self) -> usize {
        self.poison.count_poisoned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_values_match_arch_state() {
        let rf = TimedRegFile::new();
        let arch = icfp_isa::ArchState::new();
        for r in Reg::all() {
            assert_eq!(rf.value(r), arch.reg(r));
        }
    }

    #[test]
    fn write_updates_value_readiness_and_stamp() {
        let mut rf = TimedRegFile::new();
        rf.write(Reg::int(5), 99, 42, 7);
        assert_eq!(rf.value(Reg::int(5)), 99);
        assert_eq!(rf.ready_at(Reg::int(5)), 42);
        assert!(rf.poison(Reg::int(5)).is_clean());
        assert_eq!(rf.last_writer(Reg::int(5)), Some(7));
    }

    #[test]
    fn poison_write_marks_and_stamps() {
        let mut rf = TimedRegFile::new();
        rf.poison_write(Reg::int(4), PoisonMask::bit(2), 8);
        assert!(rf.poison(Reg::int(4)).is_poisoned());
        assert!(rf.any_poisoned());
        assert_eq!(rf.poisoned_count(), 1);
        assert_eq!(rf.last_writer(Reg::int(4)), Some(8));
        assert_eq!(rf.poison_union(), PoisonMask::bit(2));
    }

    #[test]
    fn rally_write_is_gated_by_last_writer() {
        // This is the working example of paper Figure 3: rally instructions 0
        // and 2 must not write r3/r4 because younger instructions 6 and 8 have
        // overwritten them; rally instruction 8 must write r4.
        let mut rf = TimedRegFile::new();
        rf.poison_write(Reg::int(4), PoisonMask::bit(0), 8); // r4 last written by seq 8
        rf.write(Reg::int(3), 3, 0, 6); // r3 last written by seq 6
        assert!(!rf.rally_write(Reg::int(3), 9, 10, 0), "older writer must be suppressed");
        assert_eq!(rf.value(Reg::int(3)), 3);
        assert!(rf.rally_write(Reg::int(4), 12, 10, 8), "matching writer must update");
        assert_eq!(rf.value(Reg::int(4)), 12);
        assert!(rf.poison(Reg::int(4)).is_clean());
    }

    #[test]
    fn checkpoint_restore_round_trips_values() {
        let mut rf = TimedRegFile::new();
        rf.write(Reg::int(1), 111, 5, 0);
        rf.checkpoint(10, 0);
        rf.write(Reg::int(1), 222, 20, 1);
        rf.poison_write(Reg::int(2), PoisonMask::bit(0), 2);
        rf.restore(100);
        assert_eq!(rf.value(Reg::int(1)), 111);
        assert!(!rf.any_poisoned());
        assert_eq!(rf.ready_at(Reg::int(1)), 100);
        assert!(!rf.has_checkpoint());
    }

    #[test]
    #[should_panic(expected = "without a checkpoint")]
    fn restore_without_checkpoint_panics() {
        let mut rf = TimedRegFile::new();
        rf.restore(0);
    }

    #[test]
    fn release_checkpoint_keeps_current_state() {
        let mut rf = TimedRegFile::new();
        rf.checkpoint(0, 0);
        rf.write(Reg::int(1), 5, 1, 1);
        rf.release_checkpoint();
        assert_eq!(rf.value(Reg::int(1)), 5);
        assert!(!rf.has_checkpoint());
    }

    #[test]
    fn clear_poison_bits_only_clears_matching() {
        let mut rf = TimedRegFile::new();
        rf.poison_write(Reg::int(1), PoisonMask::bit(0), 1);
        rf.poison_write(Reg::int(2), PoisonMask::bit(1), 2);
        rf.poison_write(Reg::int(3), PoisonMask::bit(0) | PoisonMask::bit(1), 3);
        rf.clear_poison_bits(PoisonMask::bit(0));
        assert!(rf.poison(Reg::int(1)).is_clean());
        assert!(rf.poison(Reg::int(2)).is_poisoned());
        assert_eq!(rf.poison(Reg::int(3)), PoisonMask::bit(1));
    }

    #[test]
    fn from_values_snapshot_round_trip() {
        let mut rf = TimedRegFile::new();
        rf.write(Reg::int(7), 1234, 0, 0);
        let snap = rf.values_snapshot();
        let rf2 = TimedRegFile::from_values(&snap);
        assert_eq!(rf2.value(Reg::int(7)), 1234);
    }

    #[test]
    fn clear_speculative_state_resets_poison_and_stamps() {
        let mut rf = TimedRegFile::new();
        rf.poison_write(Reg::int(1), PoisonMask::bit(3), 5);
        rf.clear_speculative_state();
        assert!(!rf.any_poisoned());
        assert_eq!(rf.last_writer(Reg::int(1)), None);
    }

    #[test]
    fn word_ops_agree_with_per_register_loop() {
        // Poison a scattered set of registers and check the word-level
        // aggregate queries against a naive re-derivation.
        let mut rf = TimedRegFile::new();
        let bits = [0u8, 3, 5, 7, 9, 11];
        for (k, &b) in bits.iter().enumerate() {
            rf.poison_write(Reg::int(1 + 5 * k), PoisonMask::bit(b), k as InstSeq);
        }
        let naive_union = Reg::all()
            .map(|r| rf.poison(r))
            .fold(PoisonMask::CLEAN, PoisonMask::union);
        assert_eq!(rf.poison_union(), naive_union);
        let naive_count = Reg::all().filter(|&r| rf.poison(r).is_poisoned()).count();
        assert_eq!(rf.poisoned_count(), naive_count);
        rf.clear_poison_bits(PoisonMask::bit(3) | PoisonMask::bit(5));
        for r in Reg::all() {
            assert!(!rf.poison(r).intersects(PoisonMask::bit(3) | PoisonMask::bit(5)));
        }
        assert!(rf.any_poisoned());
    }
}
