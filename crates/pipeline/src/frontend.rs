//! Fetch-bandwidth and branch-redirect modelling.
//!
//! The fetch engine dispenses fetch slots in program order at the configured
//! width and folds in the front-end pipeline depth (an instruction fetched in
//! cycle `F` cannot issue before `F + frontend_depth`).  Mis-predicted
//! branches redirect the front end: the next correct-path instruction becomes
//! available only `branch_redirect_penalty` cycles after the branch resolves.
//! Advance-mode restarts (Runahead squashes, iCFP simple-runahead exits) use
//! the same mechanism via [`FetchEngine::redirect`].

use crate::config::PipelineConfig;
use icfp_bpred::{BpredStats, BranchPredictor, PredictorConfig};
use icfp_isa::{Cycle, DynInst};
use serde::{Deserialize, Serialize};

/// Statistics kept by the fetch engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchStats {
    /// Fetch slots handed out.
    pub fetched: u64,
    /// Redirects applied (branch mis-predictions and mode restarts).
    pub redirects: u64,
}

/// The front end: fetch bandwidth, front-end depth, branch prediction and
/// redirect handling.
#[derive(Debug, Serialize, Deserialize)]
pub struct FetchEngine {
    width: usize,
    frontend_depth: u64,
    redirect_penalty: u64,
    predictor: BranchPredictor,
    /// Cycle whose fetch slots are currently being handed out.
    current_cycle: Cycle,
    /// Slots already handed out in `current_cycle`.
    used: usize,
    stats: FetchStats,
}

impl FetchEngine {
    /// Creates a fetch engine for the given pipeline and predictor
    /// configurations.
    pub fn new(pipeline: &PipelineConfig, predictor: PredictorConfig) -> Self {
        FetchEngine {
            width: pipeline.width,
            frontend_depth: pipeline.frontend_depth,
            redirect_penalty: pipeline.branch_redirect_penalty,
            predictor: BranchPredictor::new(predictor),
            current_cycle: 0,
            used: 0,
            stats: FetchStats::default(),
        }
    }

    /// Fetch statistics.
    pub fn stats(&self) -> &FetchStats {
        &self.stats
    }

    /// Branch-prediction statistics.
    pub fn bpred_stats(&self) -> &BpredStats {
        self.predictor.stats()
    }

    /// Hands out the next fetch slot in program order and returns the earliest
    /// cycle at which that instruction can issue (fetch cycle plus front-end
    /// depth).
    pub fn next_issue_ready(&mut self) -> Cycle {
        if self.used >= self.width {
            self.current_cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.stats.fetched += 1;
        self.current_cycle + self.frontend_depth
    }

    /// Applies a front-end redirect: no further instruction can issue before
    /// `resolve_cycle + branch_redirect_penalty`.
    pub fn redirect(&mut self, resolve_cycle: Cycle) {
        self.stats.redirects += 1;
        let resume_fetch = resolve_cycle + self.redirect_penalty - self.frontend_depth.min(self.redirect_penalty);
        if resume_fetch > self.current_cycle {
            self.current_cycle = resume_fetch;
            self.used = 0;
        }
    }

    /// Stalls the front end so that no instruction issues before `cycle`
    /// (used when a mode transition freezes fetch without a mis-prediction).
    pub fn stall_until(&mut self, cycle: Cycle) {
        let fetch_cycle = cycle.saturating_sub(self.frontend_depth);
        if fetch_cycle > self.current_cycle {
            self.current_cycle = fetch_cycle;
            self.used = 0;
        }
    }

    /// Resolves a branch against the predictor, returning `true` if it was
    /// mis-predicted.  Non-branches return `false` without touching predictor
    /// state.
    pub fn resolve_branch(&mut self, inst: &DynInst) -> bool {
        match inst.branch {
            Some(info) => self.predictor.update(inst.pc, info.taken, info.target),
            None => false,
        }
    }

    /// The redirect penalty configured for this front end.
    pub fn redirect_penalty(&self) -> u64 {
        self.redirect_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfp_isa::Reg;

    fn engine() -> FetchEngine {
        FetchEngine::new(&PipelineConfig::paper_default(), PredictorConfig::paper_default())
    }

    #[test]
    fn fetch_width_paces_issue_readiness() {
        let mut f = engine();
        let d = PipelineConfig::paper_default().frontend_depth;
        assert_eq!(f.next_issue_ready(), d);
        assert_eq!(f.next_issue_ready(), d);
        assert_eq!(f.next_issue_ready(), d + 1);
        assert_eq!(f.next_issue_ready(), d + 1);
        assert_eq!(f.next_issue_ready(), d + 2);
        assert_eq!(f.stats().fetched, 5);
    }

    #[test]
    fn redirect_delays_subsequent_fetches() {
        let mut f = engine();
        let _ = f.next_issue_ready();
        f.redirect(100);
        let next = f.next_issue_ready();
        assert_eq!(
            next,
            100 + PipelineConfig::paper_default().branch_redirect_penalty
        );
        assert_eq!(f.stats().redirects, 1);
    }

    #[test]
    fn redirect_in_the_past_is_ignored() {
        let mut f = engine();
        for _ in 0..100 {
            f.next_issue_ready();
        }
        let before = f.next_issue_ready();
        f.redirect(0);
        let after = f.next_issue_ready();
        assert!(after >= before);
    }

    #[test]
    fn stall_until_freezes_issue_readiness() {
        let mut f = engine();
        f.stall_until(500);
        assert!(f.next_issue_ready() >= 500);
    }

    #[test]
    fn branch_resolution_uses_predictor() {
        let mut f = engine();
        let br = DynInst::branch(Reg::int(1), true, 0x2000, 1.0).with_pc(0x100);
        // Train.
        for _ in 0..50 {
            f.resolve_branch(&br);
        }
        assert!(!f.resolve_branch(&br), "trained branch should predict correctly");
        let non_branch = DynInst::nop();
        assert!(!f.resolve_branch(&non_branch));
        assert!(f.bpred_stats().predictions > 0);
    }
}
